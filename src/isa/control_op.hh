/**
 * @file
 * The per-parcel control operation and synchronization field.
 *
 * Figure 8 of the paper: each FU's control-path fields hold two branch
 * targets T1/T2 and a condition-selection criteria field; there is no
 * PC incrementer. The defined control operations (section 2.2):
 *
 *   Target 1 / Target 2              unconditional branch
 *   Branch on (CCk == TRUE)          one condition code
 *   Branch on (SSk == DONE)          one sync signal
 *   Branch on ALL(SS == DONE)        barrier condition
 *   Branch on ANY(SS == DONE)        any-sync condition
 *
 * Section 3.3 notes the barrier "can be generalized to include
 * synchronizations between only some of the program threads"; the
 * ALL/ANY conditions therefore carry an FU mask (all-ones by default).
 *
 * A Halt kind is added so programs can terminate an FU; the paper's
 * examples simply run off the listing ("Continue."), which a simulator
 * must make explicit.
 */

#ifndef XIMD_ISA_CONTROL_OP_HH
#define XIMD_ISA_CONTROL_OP_HH

#include <string>

#include "support/types.hh"

namespace ximd {

/** Condition-selection criteria for the branch-target multiplexer. */
enum class CondKind : std::uint8_t {
    Always,     ///< Unconditional branch to t1.
    CcTrue,     ///< t1 when CC[index] == TRUE else t2.
    SyncDone,   ///< t1 when SS[index] == DONE else t2.
    AllSync,    ///< t1 when all masked SS == DONE else t2.
    AnySync,    ///< t1 when any masked SS == DONE else t2.
    Halt,       ///< Stop this functional unit.
};

/** Per-parcel synchronization signal value (section 2.2). */
enum class SyncVal : std::uint8_t { Busy, Done };

/** One control operation: condition + two explicit branch targets. */
struct ControlOp
{
    CondKind kind = CondKind::Always;
    std::uint8_t index = 0;   ///< CC or SS index (CcTrue / SyncDone).
    std::uint32_t mask = ~0u; ///< FU mask for AllSync / AnySync.
    InstAddr t1 = 0;          ///< Taken / unconditional target.
    InstAddr t2 = 0;          ///< Fall-back target.

    /** Unconditional branch ("-> t"). */
    static ControlOp jump(InstAddr t);

    /** Branch on condition code: if CC[cc] then t1 else t2. */
    static ControlOp onCc(unsigned cc, InstAddr t1, InstAddr t2);

    /** Branch on sync signal: if SS[fu] == DONE then t1 else t2. */
    static ControlOp onSync(unsigned fu, InstAddr t1, InstAddr t2);

    /** Barrier: if all masked SS == DONE then t1 else t2. */
    static ControlOp onAllSync(InstAddr t1, InstAddr t2,
                               std::uint32_t mask = ~0u);

    /** Any-sync: if any masked SS == DONE then t1 else t2. */
    static ControlOp onAnySync(InstAddr t1, InstAddr t2,
                               std::uint32_t mask = ~0u);

    /** Stop the executing FU. */
    static ControlOp halt();

    bool isConditional() const
    {
        return kind != CondKind::Always && kind != CondKind::Halt;
    }
    bool isHalt() const { return kind == CondKind::Halt; }

    bool operator==(const ControlOp &other) const;

    /**
     * Paper-style rendering: "-> 05:", "if cc2 08:|02:",
     * "if all 11:|10:", "halt".
     */
    std::string toString() const;
};

/** Render a sync value as the paper does: "BUSY" / "DONE". */
std::string syncValName(SyncVal v);

} // namespace ximd

#endif // XIMD_ISA_CONTROL_OP_HH
