#include "isa/data_op.hh"

#include <sstream>

#include "support/logging.hh"

namespace ximd {

DataOp
DataOp::make(Opcode op, Operand a, Operand b, RegId dest)
{
    DataOp d;
    d.op = op;
    d.a = a;
    d.b = b;
    d.dest = dest;
    d.validate();
    return d;
}

DataOp
DataOp::makeUnary(Opcode op, Operand a, RegId dest)
{
    DataOp d;
    d.op = op;
    d.a = a;
    d.dest = dest;
    d.validate();
    return d;
}

DataOp
DataOp::makeCompare(Opcode op, Operand a, Operand b)
{
    DataOp d;
    d.op = op;
    d.a = a;
    d.b = b;
    d.validate();
    return d;
}

DataOp
DataOp::makeLoad(Operand a, Operand b, RegId dest)
{
    DataOp d;
    d.op = Opcode::Load;
    d.a = a;
    d.b = b;
    d.dest = dest;
    d.validate();
    return d;
}

DataOp
DataOp::makeStore(Operand value, Operand addr)
{
    DataOp d;
    d.op = Opcode::Store;
    d.a = value;
    d.b = addr;
    d.validate();
    return d;
}

DataOp
DataOp::nop()
{
    return DataOp{};
}

void
DataOp::validate() const
{
    const OpInfo &info = opInfo(op);
    if (info.numSrcs >= 1 && a.isNone())
        fatal("operation '", info.name, "' is missing source operand a");
    if (info.numSrcs >= 2 && b.isNone())
        fatal("operation '", info.name, "' is missing source operand b");
    if (info.numSrcs < 2 && !b.isNone())
        fatal("operation '", info.name, "' takes no second source");
    if (info.numSrcs < 1 && !a.isNone())
        fatal("operation '", info.name, "' takes no source operands");
    if (info.hasDest && dest >= kNumRegisters)
        fatal("operation '", info.name, "' destination register r", dest,
              " out of range");
}

bool
DataOp::operator==(const DataOp &other) const
{
    if (op != other.op || a != other.a || b != other.b)
        return false;
    if (hasDest() && dest != other.dest)
        return false;
    return true;
}

std::string
DataOp::toString() const
{
    const OpInfo &info = opInfo(op);
    if (op == Opcode::Nop)
        return "nop";
    std::ostringstream os;
    os << info.name << " ";
    bool first = true;
    auto emit = [&](const std::string &s) {
        if (!first)
            os << ",";
        os << s;
        first = false;
    };
    if (info.numSrcs >= 1)
        emit(a.toString());
    if (info.numSrcs >= 2)
        emit(b.toString());
    if (info.hasDest)
        emit("r" + std::to_string(dest));
    return os.str();
}

} // namespace ximd
