#include "isa/operand.hh"

#include <sstream>

#include "support/logging.hh"

namespace ximd {

Operand
Operand::reg(RegId r)
{
    XIMD_ASSERT(r < kNumRegisters, "register index out of range: ", r);
    Operand o;
    o.kind_ = Kind::Reg;
    o.value_ = r;
    return o;
}

Operand
Operand::imm(Word raw)
{
    Operand o;
    o.kind_ = Kind::Imm;
    o.value_ = raw;
    return o;
}

Operand
Operand::immInt(SWord v)
{
    return imm(intToWord(v));
}

Operand
Operand::immFloat(float v)
{
    Operand o = imm(floatToWord(v));
    o.floatHint_ = true;
    return o;
}

Operand
Operand::none()
{
    return Operand{};
}

RegId
Operand::regId() const
{
    XIMD_ASSERT(isReg(), "regId() on non-register operand");
    return static_cast<RegId>(value_);
}

Word
Operand::immValue() const
{
    XIMD_ASSERT(isImm(), "immValue() on non-immediate operand");
    return value_;
}

bool
Operand::operator==(const Operand &other) const
{
    if (kind_ != other.kind_)
        return false;
    if (kind_ == Kind::None)
        return true;
    return value_ == other.value_;
}

std::string
Operand::toString() const
{
    switch (kind_) {
      case Kind::None:
        return "";
      case Kind::Reg:
        return "r" + std::to_string(value_);
      case Kind::Imm:
        break;
    }
    std::ostringstream os;
    if (floatHint_) {
        os << "#" << wordToFloat(value_);
        // Keep float literals distinguishable from ints on round-trip.
        if (os.str().find('.') == std::string::npos &&
            os.str().find('e') == std::string::npos &&
            os.str().find("inf") == std::string::npos &&
            os.str().find("nan") == std::string::npos) {
            os << ".0";
        }
    } else {
        os << "#" << wordToInt(value_);
    }
    return os.str();
}

} // namespace ximd
