/**
 * @file
 * Source operands of an XIMD-1 data operation.
 *
 * Per section 2.2, "the three operands may be registers or constants".
 * An operand is therefore either a global-register reference or an
 * immediate 32-bit word. Immediates written as float literals carry a
 * display hint so the disassembler can round-trip them.
 */

#ifndef XIMD_ISA_OPERAND_HH
#define XIMD_ISA_OPERAND_HH

#include <string>

#include "support/types.hh"

namespace ximd {

/** A register or immediate source operand. */
class Operand
{
  public:
    enum class Kind : std::uint8_t { None, Reg, Imm };

    /** Default: the absent operand (unary ops, nop). */
    Operand() = default;

    /** Make a register operand. */
    static Operand reg(RegId r);

    /** Make an immediate from a raw 32-bit pattern. */
    static Operand imm(Word raw);

    /** Make an integer immediate. */
    static Operand immInt(SWord v);

    /** Make a float immediate (sets the float display hint). */
    static Operand immFloat(float v);

    /** Make the explicit "no operand" value. */
    static Operand none();

    Kind kind() const { return kind_; }
    bool isReg() const { return kind_ == Kind::Reg; }
    bool isImm() const { return kind_ == Kind::Imm; }
    bool isNone() const { return kind_ == Kind::None; }

    /** Register index; only valid when isReg(). */
    RegId regId() const;

    /** Raw immediate bits; only valid when isImm(). */
    Word immValue() const;

    /** True when this immediate was written as a float literal. */
    bool isFloatHint() const { return floatHint_; }

    bool operator==(const Operand &other) const;
    bool operator!=(const Operand &other) const = default;

    /** Assembler rendering: "r12", "#-3", "#1.5", or "" for None. */
    std::string toString() const;

  private:
    Kind kind_ = Kind::None;
    Word value_ = 0;        // reg index or immediate bits
    bool floatHint_ = false;
};

} // namespace ximd

#endif // XIMD_ISA_OPERAND_HH
