#include "isa/program.hh"

#include "support/logging.hh"

namespace ximd {

Program::Program(FuId width)
    : width_(width)
{
    if (width == 0 || width > kMaxFus)
        fatal("program width ", width, " outside supported range 1..",
              kMaxFus);
}

InstAddr
Program::addRow(InstRow row)
{
    if (row.size() != width_)
        fatal("row has ", row.size(), " parcels; program width is ",
              width_);
    rows_.push_back(std::move(row));
    return static_cast<InstAddr>(rows_.size() - 1);
}

InstAddr
Program::addUniformRow(const Parcel &parcel)
{
    return addRow(InstRow(width_, parcel));
}

const InstRow &
Program::row(InstAddr addr) const
{
    if (addr >= rows_.size())
        fatal("instruction address ", addr, " out of range (program has ",
              rows_.size(), " rows)");
    return rows_[addr];
}

InstRow &
Program::row(InstAddr addr)
{
    return const_cast<InstRow &>(
        static_cast<const Program *>(this)->row(addr));
}

const Parcel &
Program::parcel(InstAddr addr, FuId fu) const
{
    if (fu >= width_)
        fatal("functional unit ", fu, " out of range (width ", width_,
              ")");
    return row(addr)[fu];
}

Parcel &
Program::parcel(InstAddr addr, FuId fu)
{
    return const_cast<Parcel &>(
        static_cast<const Program *>(this)->parcel(addr, fu));
}

void
Program::setLabel(const std::string &name, InstAddr addr)
{
    auto [it, inserted] = labels_.emplace(name, addr);
    if (!inserted && it->second != addr)
        fatal("label '", name, "' redefined (", it->second, " vs ", addr,
              ")");
    labelAt_.emplace(addr, name); // keep first
}

std::optional<InstAddr>
Program::label(const std::string &name) const
{
    auto it = labels_.find(name);
    if (it == labels_.end())
        return std::nullopt;
    return it->second;
}

std::optional<std::string>
Program::labelAt(InstAddr addr) const
{
    auto it = labelAt_.find(addr);
    if (it == labelAt_.end())
        return std::nullopt;
    return it->second;
}

void
Program::setSymbol(const std::string &name, Word value)
{
    symbols_[name] = value;
}

std::optional<Word>
Program::symbol(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        return std::nullopt;
    return it->second;
}

Word
Program::symbolOrDie(const std::string &name) const
{
    auto v = symbol(name);
    if (!v)
        fatal("undefined program symbol '", name, "'");
    return *v;
}

void
Program::nameRegister(const std::string &name, RegId r)
{
    if (r >= kNumRegisters)
        fatal("register r", r, " out of range");
    regByName_[name] = r;
    regNames_.emplace(r, name); // keep first
}

std::optional<RegId>
Program::regByName(const std::string &name) const
{
    auto it = regByName_.find(name);
    if (it == regByName_.end())
        return std::nullopt;
    return it->second;
}

std::optional<std::string>
Program::regName(RegId r) const
{
    auto it = regNames_.find(r);
    if (it == regNames_.end())
        return std::nullopt;
    return it->second;
}

void
Program::addMemInit(Addr addr, Word value)
{
    memInit_.emplace_back(addr, value);
}

void
Program::addRegInit(RegId r, Word value)
{
    if (r >= kNumRegisters)
        fatal("register r", r, " out of range in register initializer");
    regInit_.emplace_back(r, value);
}

void
Program::setRowLine(InstAddr addr, int line)
{
    if (addr >= rows_.size())
        fatal("row ", addr, " out of range in setRowLine");
    if (rowLines_.size() < rows_.size())
        rowLines_.resize(rows_.size(), 0);
    rowLines_[addr] = line;
}

int
Program::rowLine(InstAddr addr) const
{
    return addr < rowLines_.size() ? rowLines_[addr] : 0;
}

void
Program::validate() const
{
    const auto n = static_cast<InstAddr>(rows_.size());
    for (InstAddr a = 0; a < n; ++a) {
        const InstRow &r = rows_[a];
        if (r.size() != width_)
            fatal("row ", a, " has ", r.size(), " parcels; width is ",
                  width_);
        for (FuId fu = 0; fu < width_; ++fu) {
            const Parcel &p = r[fu];
            p.data.validate();
            const ControlOp &c = p.ctrl;
            if (c.isHalt())
                continue;
            if (c.t1 >= n)
                fatal("row ", a, " FU", fu, ": branch target 1 (", c.t1,
                      ") out of range");
            if (c.isConditional() && c.t2 >= n)
                fatal("row ", a, " FU", fu, ": branch target 2 (", c.t2,
                      ") out of range");
        }
    }
}

} // namespace ximd
