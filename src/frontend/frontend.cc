#include "frontend/frontend.hh"

#include "frontend/parser.hh"

namespace ximd::frontend {

sched::CompileResult<sched::IrProgram>
compileC(const std::string &source, const LowerOptions &opts)
{
    auto tokens = lex(source);
    if (!tokens)
        return tokens.error();
    auto ast = parse(tokens.value());
    if (!ast)
        return ast.error();
    return lower(ast.value(), opts);
}

} // namespace ximd::frontend
