/**
 * @file
 * Tokenizer for the C-like kernel language (xcc --input=c).
 *
 * The language is the minimal imperative subset the Livermore loops
 * need: int/float scalars and arrays, arithmetic expressions,
 * assignments, if/while/for. Tokens carry the 1-based source line so
 * parse and lowering diagnostics (and the IR's per-op line stamps)
 * point back into the .c file.
 */

#ifndef XIMD_FRONTEND_LEXER_HH
#define XIMD_FRONTEND_LEXER_HH

#include <string>
#include <vector>

#include "sched/diag.hh"
#include "support/types.hh"

namespace ximd::frontend {

enum class Tok : std::uint8_t
{
    Eof,
    Ident,
    IntLit,
    FloatLit,
    KwInt,
    KwFloat,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    Plus,     // +
    Minus,    // -
    Star,     // *
    Slash,    // /
    Percent,  // %
    Assign,   // =
    EqEq,     // ==
    NotEq,    // !=
    Lt,       // <
    Le,       // <=
    Gt,       // >
    Ge,       // >=
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
};

struct Token
{
    Tok kind = Tok::Eof;
    std::string text;   ///< Identifier spelling / literal spelling.
    SWord intVal = 0;   ///< IntLit value.
    float floatVal = 0; ///< FloatLit value.
    int line = 1;       ///< 1-based source line.
};

/** Spelling of @p t for diagnostics ("'=='", "identifier", ...). */
std::string tokName(Tok t);

/**
 * Tokenize @p source (pass "c-parse"). Recognizes //- and C-style
 * comments; rejects unknown characters and unterminated comments
 * with the offending line.
 */
sched::CompileResult<std::vector<Token>>
lex(const std::string &source);

} // namespace ximd::frontend

#endif // XIMD_FRONTEND_LEXER_HH
