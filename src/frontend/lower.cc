#include "frontend/lower.hh"

#include <map>

#include "support/logging.hh"

namespace ximd::frontend {

using namespace ximd::sched;

namespace {

/** Internal unwind carrying the structured error; never escapes
 *  lower(). */
struct Fail
{
    CompileError error;
};

/** A lowered value: where it lives plus its surface type. */
struct Val
{
    IrValue v;
    bool isFloat = false;
};

class Lowerer
{
  public:
    explicit Lowerer(const LowerOptions &opts)
        : nextData_(opts.dataBase)
    {
    }

    IrProgram
    run(const CProgram &prog)
    {
        b_.startBlock("entry");
        for (const StmtPtr &s : prog.stmts)
            lowerStmt(*s);
        b_.halt();
        return b_.finish();
    }

  private:
    struct Sym
    {
        bool isFloat = false;
        bool isArray = false;
        VregId vreg = kNoVreg; ///< Scalars.
        Addr base = 0;         ///< Arrays.
        int size = 0;
    };

    [[noreturn]] void
    fail(int line, std::string msg) const
    {
        CompileError e = compileError("c-lower", std::move(msg));
        e.line = line;
        throw Fail{std::move(e)};
    }

    const Sym &
    lookup(const std::string &name, int line) const
    {
        const auto it = syms_.find(name);
        if (it == syms_.end())
            fail(line, cat("unknown variable '", name, "'"));
        return it->second;
    }

    std::string
    newLabel()
    {
        return cat("L", ++nextLabel_);
    }

    /** Static type of @p e: float when any operand is float.
     *  Unknown names resolve to int here; lowerExpr reports them. */
    bool
    typeOf(const Expr &e) const
    {
        switch (e.kind) {
          case Expr::Kind::IntLit:
            return false;
          case Expr::Kind::FloatLit:
            return true;
          case Expr::Kind::Var:
          case Expr::Kind::Index: {
            const auto it = syms_.find(e.name);
            return it != syms_.end() && it->second.isFloat;
          }
          case Expr::Kind::Unary:
            return typeOf(*e.lhs);
          case Expr::Kind::Binary:
            return e.op != '%' &&
                   (typeOf(*e.lhs) || typeOf(*e.rhs));
        }
        return false;
    }

    /**
     * Convert @p x to float. Integer immediates fold bit-exactly
     * (the datapath's Itof is static_cast<float> of the signed
     * word); registers get an Itof op.
     */
    Val
    toFloat(Val x, int line)
    {
        if (x.isFloat)
            return x;
        if (x.v.isImm())
            return {IrValue::immFloat(
                        static_cast<float>(wordToInt(x.v.imm))),
                    true};
        b_.setLine(line);
        return {b_.emit(Opcode::Itof, x.v), true};
    }

    /** Convert @p x to int (always a Ftoi op: truncation must
     *  happen on the machine, not at compile time). */
    Val
    toInt(Val x, int line)
    {
        if (!x.isFloat)
            return x;
        b_.setLine(line);
        return {b_.emit(Opcode::Ftoi, x.v), false};
    }

    Val
    convertTo(Val x, bool wantFloat, int line)
    {
        return wantFloat ? toFloat(x, line) : toInt(x, line);
    }

    static Opcode
    binaryOpcode(char op, bool isFloat, int line,
                 const Lowerer &self)
    {
        if (isFloat) {
            switch (op) {
              case '+': return Opcode::Fadd;
              case '-': return Opcode::Fsub;
              case '*': return Opcode::Fmult;
              case '/': return Opcode::Fdiv;
              case '%':
                self.fail(line, "operator '%' requires integer "
                                "operands");
            }
        } else {
            switch (op) {
              case '+': return Opcode::Iadd;
              case '-': return Opcode::Isub;
              case '*': return Opcode::Imult;
              case '/': return Opcode::Idiv;
              case '%': return Opcode::Imod;
            }
        }
        self.fail(line, cat("unknown operator '", op, "'"));
    }

    static Opcode
    relOpcode(RelOp rel, bool isFloat)
    {
        switch (rel) {
          case RelOp::Eq: return isFloat ? Opcode::Feq : Opcode::Eq;
          case RelOp::Ne: return isFloat ? Opcode::Fne : Opcode::Ne;
          case RelOp::Lt: return isFloat ? Opcode::Flt : Opcode::Lt;
          case RelOp::Le: return isFloat ? Opcode::Fle : Opcode::Le;
          case RelOp::Gt: return isFloat ? Opcode::Fgt : Opcode::Gt;
          case RelOp::Ge: return isFloat ? Opcode::Fge : Opcode::Ge;
        }
        return Opcode::Eq;
    }

    /** Lower the index of `name[e]`; must be integer-typed. */
    Val
    lowerIndex(const Expr &e)
    {
        Val idx = lowerExpr(*e.lhs);
        if (idx.isFloat)
            fail(e.line, cat("array index into '", e.name,
                             "' must be an integer"));
        return idx;
    }

    /**
     * Lower @p e; when @p destHint names a vreg and the outermost
     * node produces an op, the op writes the hint directly (saves
     * the Mov an assignment would otherwise need).
     */
    Val
    lowerExpr(const Expr &e, VregId destHint = kNoVreg)
    {
        switch (e.kind) {
          case Expr::Kind::IntLit:
            return {IrValue::immInt(e.intVal), false};
          case Expr::Kind::FloatLit:
            return {IrValue::immFloat(e.floatVal), true};
          case Expr::Kind::Var: {
            const Sym &sym = lookup(e.name, e.line);
            if (sym.isArray)
                fail(e.line, cat("array '", e.name,
                                 "' used without an index"));
            return {IrValue::reg(sym.vreg), sym.isFloat};
          }
          case Expr::Kind::Index: {
            const Sym &sym = lookup(e.name, e.line);
            if (!sym.isArray)
                fail(e.line, cat("'", e.name,
                                 "' is not an array"));
            Val idx = lowerIndex(e);
            b_.setLine(e.line);
            if (destHint != kNoVreg) {
                b_.emitTo(destHint, Opcode::Load,
                          IrValue::immRaw(sym.base), idx.v);
                return {IrValue::reg(destHint), sym.isFloat};
            }
            return {b_.emitLoad(IrValue::immRaw(sym.base), idx.v),
                    sym.isFloat};
          }
          case Expr::Kind::Unary: {
            Val x = lowerExpr(*e.lhs);
            if (x.v.isImm()) {
                // Fold: matches the datapath's Ineg/Fneg exactly.
                if (x.isFloat)
                    return {IrValue::immFloat(
                                -wordToFloat(x.v.imm)),
                            true};
                return {IrValue::immInt(-wordToInt(x.v.imm)),
                        false};
            }
            b_.setLine(e.line);
            const Opcode op =
                x.isFloat ? Opcode::Fneg : Opcode::Ineg;
            if (destHint != kNoVreg) {
                b_.emitTo(destHint, op, x.v);
                return {IrValue::reg(destHint), x.isFloat};
            }
            return {b_.emit(op, x.v), x.isFloat};
          }
          case Expr::Kind::Binary: {
            Val a = lowerExpr(*e.lhs);
            Val b = lowerExpr(*e.rhs);
            if (e.op == '%' && (a.isFloat || b.isFloat))
                fail(e.line,
                     "operator '%' requires integer operands");
            const bool f = a.isFloat || b.isFloat;
            a = convertTo(a, f, e.line);
            b = convertTo(b, f, e.line);
            const Opcode op = binaryOpcode(e.op, f, e.line, *this);
            b_.setLine(e.line);
            if (destHint != kNoVreg) {
                b_.emitTo(destHint, op, a.v, b.v);
                return {IrValue::reg(destHint), f};
            }
            return {b_.emit(op, a.v, b.v), f};
          }
        }
        fail(e.line, "unhandled expression");
    }

    /** Lower a condition; returns the compare's op index. */
    int
    lowerCond(const Cond &c)
    {
        Val a = lowerExpr(*c.lhs);
        Val b = lowerExpr(*c.rhs);
        const bool f = a.isFloat || b.isFloat;
        a = convertTo(a, f, c.line);
        b = convertTo(b, f, c.line);
        b_.setLine(c.line);
        return b_.emitCompare(relOpcode(c.rel, f), a.v, b.v);
    }

    void
    lowerDecl(const Stmt &s)
    {
        if (syms_.count(s.name))
            fail(s.line, cat("redeclaration of '", s.name, "'"));
        Sym sym;
        sym.isFloat = s.isFloat;
        if (s.arraySize >= 0) {
            sym.isArray = true;
            sym.base = nextData_;
            sym.size = s.arraySize;
            nextData_ += static_cast<Addr>(s.arraySize);
            syms_.emplace(s.name, sym);
            return;
        }
        sym.vreg = b_.newVreg();
        syms_.emplace(s.name, sym);
        if (!s.init)
            return;
        Val v = convertTo(lowerExpr(*s.init), sym.isFloat, s.line);
        // A literal initializer outside all control flow runs
        // exactly once, before anything reads the vreg: express it
        // as a .vinit instead of a Mov.
        if (v.v.isImm() && controlDepth_ == 0) {
            b_.setInit(sym.vreg, v.v.imm);
            return;
        }
        b_.setLine(s.line);
        b_.emitTo(sym.vreg, Opcode::Mov, v.v);
    }

    void
    lowerAssign(const Stmt &s)
    {
        const Expr &target = *s.target;
        const Sym &sym = lookup(target.name, target.line);
        if (target.kind == Expr::Kind::Var) {
            if (sym.isArray)
                fail(target.line,
                     cat("array '", target.name,
                         "' needs an index to be assigned"));
            // When the value's type already matches, the outermost
            // op can write the target directly.
            const VregId hint =
                typeOf(*s.value) == sym.isFloat ? sym.vreg
                                                : kNoVreg;
            Val v = lowerExpr(*s.value, hint);
            if (v.v.isVreg() && v.v.vreg == sym.vreg)
                return; // Hint applied.
            if (v.isFloat != sym.isFloat &&
                (v.isFloat || !v.v.isImm())) {
                // Conversion op writes the target directly.
                b_.setLine(s.line);
                b_.emitTo(sym.vreg,
                          sym.isFloat ? Opcode::Itof : Opcode::Ftoi,
                          v.v);
                return;
            }
            v = convertTo(v, sym.isFloat, s.line);
            b_.setLine(s.line);
            b_.emitTo(sym.vreg, Opcode::Mov, v.v);
            return;
        }
        // target.kind == Index.
        if (!sym.isArray)
            fail(target.line,
                 cat("'", target.name, "' is not an array"));
        Val idx = lowerIndex(target);
        Val v = convertTo(lowerExpr(*s.value), sym.isFloat, s.line);
        IrValue addr;
        if (idx.v.isImm()) {
            addr = IrValue::immRaw(sym.base + idx.v.imm);
        } else {
            b_.setLine(target.line);
            addr = b_.emit(Opcode::Iadd, idx.v,
                           IrValue::immRaw(sym.base));
        }
        b_.setLine(s.line);
        b_.emitStore(v.v, addr);
    }

    void
    lowerIf(const Stmt &s)
    {
        const std::string thenL = newLabel();
        const std::string elseL = s.elseStmt ? newLabel() : "";
        const std::string endL = newLabel();
        const int cmp = lowerCond(*s.cond);
        b_.branch(cmp, thenL, s.elseStmt ? elseL : endL);
        b_.startBlock(thenL);
        ++controlDepth_;
        lowerStmt(*s.thenStmt);
        b_.jump(endL);
        if (s.elseStmt) {
            b_.startBlock(elseL);
            lowerStmt(*s.elseStmt);
            b_.jump(endL);
        }
        --controlDepth_;
        b_.startBlock(endL);
    }

    void
    lowerWhile(const Stmt &s)
    {
        const std::string headL = newLabel();
        const std::string bodyL = newLabel();
        const std::string endL = newLabel();
        b_.jump(headL);
        b_.startBlock(headL);
        const int cmp = lowerCond(*s.cond);
        b_.branch(cmp, bodyL, endL);
        b_.startBlock(bodyL);
        ++controlDepth_;
        lowerStmt(*s.thenStmt);
        --controlDepth_;
        b_.jump(headL);
        b_.startBlock(endL);
    }

    void
    lowerFor(const Stmt &s)
    {
        if (s.forInit)
            lowerAssign(*s.forInit);
        const std::string headL = newLabel();
        const std::string bodyL = newLabel();
        const std::string endL = newLabel();
        b_.jump(headL);
        b_.startBlock(headL);
        const int cmp = lowerCond(*s.cond);
        b_.branch(cmp, bodyL, endL);
        b_.startBlock(bodyL);
        ++controlDepth_;
        lowerStmt(*s.thenStmt);
        if (s.forStep)
            lowerAssign(*s.forStep);
        --controlDepth_;
        b_.jump(headL);
        b_.startBlock(endL);
    }

    void
    lowerStmt(const Stmt &s)
    {
        switch (s.kind) {
          case Stmt::Kind::Decl:   lowerDecl(s); return;
          case Stmt::Kind::Assign: lowerAssign(s); return;
          case Stmt::Kind::If:     lowerIf(s); return;
          case Stmt::Kind::While:  lowerWhile(s); return;
          case Stmt::Kind::For:    lowerFor(s); return;
          case Stmt::Kind::Block:
            for (const StmtPtr &child : s.body)
                lowerStmt(*child);
            return;
        }
        fail(s.line, "unhandled statement");
    }

    IrBuilder b_;
    std::map<std::string, Sym> syms_;
    Addr nextData_;
    int nextLabel_ = 0;
    int controlDepth_ = 0;
};

} // namespace

CompileResult<IrProgram>
lower(const CProgram &prog, const LowerOptions &opts)
{
    try {
        return Lowerer(opts).run(prog);
    } catch (Fail &f) {
        return std::move(f.error);
    }
}

} // namespace ximd::frontend
