/**
 * @file
 * Abstract syntax for the C-like kernel language.
 *
 * The shapes mirror the grammar in DESIGN.md §15: expressions over
 * int/float scalars and arrays, relational conditions (only legal in
 * if/while/for heads, exactly where the IR consumes condition codes),
 * and structured statements. Every node carries its 1-based source
 * line for diagnostics and per-op line stamping.
 */

#ifndef XIMD_FRONTEND_AST_HH
#define XIMD_FRONTEND_AST_HH

#include <memory>
#include <string>
#include <vector>

#include "support/types.hh"

namespace ximd::frontend {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr
{
    enum class Kind : std::uint8_t
    {
        IntLit,   ///< intVal
        FloatLit, ///< floatVal
        Var,      ///< name
        Index,    ///< name[lhs]
        Unary,    ///< op ('-') applied to lhs
        Binary,   ///< lhs op rhs, op in + - * / %
    };

    Kind kind = Kind::IntLit;
    int line = 1;
    SWord intVal = 0;
    float floatVal = 0;
    std::string name;
    char op = 0;
    ExprPtr lhs;
    ExprPtr rhs;
};

/** Relational operator in a condition. */
enum class RelOp : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/** A condition: `lhs rel rhs` (the only context producing a CC). */
struct Cond
{
    RelOp rel = RelOp::Eq;
    ExprPtr lhs;
    ExprPtr rhs;
    int line = 1;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt
{
    enum class Kind : std::uint8_t
    {
        Decl,   ///< int/float name [size]? (= init)? ;
        Assign, ///< target = value ;
        If,     ///< if (cond) then [else els]
        While,  ///< while (cond) bodyStmt
        For,    ///< for (init; cond; step) bodyStmt
        Block,  ///< { body... }
    };

    Kind kind = Kind::Block;
    int line = 1;

    // Decl.
    bool isFloat = false;
    std::string name;
    int arraySize = -1; ///< -1 = scalar.
    ExprPtr init;       ///< Optional scalar initializer.

    // Assign.
    ExprPtr target; ///< Var or Index expression.
    ExprPtr value;

    // If / While / For.
    std::unique_ptr<Cond> cond;
    StmtPtr thenStmt; ///< If-then, While/For body.
    StmtPtr elseStmt;
    StmtPtr forInit; ///< Assign or empty.
    StmtPtr forStep; ///< Assign or empty.

    // Block.
    std::vector<StmtPtr> body;
};

/** A parsed translation unit: top-level statements in order. */
struct CProgram
{
    std::vector<StmtPtr> stmts;
};

} // namespace ximd::frontend

#endif // XIMD_FRONTEND_AST_HH
