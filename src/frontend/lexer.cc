#include "frontend/lexer.hh"

#include <cctype>
#include <cstdlib>
#include <map>

#include "support/logging.hh"

namespace ximd::frontend {

using sched::compileError;
using sched::CompileResult;

std::string
tokName(Tok t)
{
    switch (t) {
      case Tok::Eof:      return "end of input";
      case Tok::Ident:    return "identifier";
      case Tok::IntLit:   return "integer literal";
      case Tok::FloatLit: return "float literal";
      case Tok::KwInt:    return "'int'";
      case Tok::KwFloat:  return "'float'";
      case Tok::KwIf:     return "'if'";
      case Tok::KwElse:   return "'else'";
      case Tok::KwWhile:  return "'while'";
      case Tok::KwFor:    return "'for'";
      case Tok::Plus:     return "'+'";
      case Tok::Minus:    return "'-'";
      case Tok::Star:     return "'*'";
      case Tok::Slash:    return "'/'";
      case Tok::Percent:  return "'%'";
      case Tok::Assign:   return "'='";
      case Tok::EqEq:     return "'=='";
      case Tok::NotEq:    return "'!='";
      case Tok::Lt:       return "'<'";
      case Tok::Le:       return "'<='";
      case Tok::Gt:       return "'>'";
      case Tok::Ge:       return "'>='";
      case Tok::LParen:   return "'('";
      case Tok::RParen:   return "')'";
      case Tok::LBrace:   return "'{'";
      case Tok::RBrace:   return "'}'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Semi:     return "';'";
    }
    return "?";
}

CompileResult<std::vector<Token>>
lex(const std::string &source)
{
    static const std::map<std::string, Tok> keywords = {
        {"int", Tok::KwInt},     {"float", Tok::KwFloat},
        {"if", Tok::KwIf},       {"else", Tok::KwElse},
        {"while", Tok::KwWhile}, {"for", Tok::KwFor},
    };

    auto err = [](std::string msg, int line) {
        sched::CompileError e =
            compileError("c-parse", std::move(msg));
        e.line = line;
        return CompileResult<std::vector<Token>>(std::move(e));
    };

    std::vector<Token> out;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = source.size();

    auto push = [&](Tok kind, std::string text = "") {
        Token t;
        t.kind = kind;
        t.text = std::move(text);
        t.line = line;
        out.push_back(std::move(t));
    };

    while (i < n) {
        const char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            const int open = line;
            i += 2;
            while (i + 1 < n &&
                   !(source[i] == '*' && source[i + 1] == '/')) {
                if (source[i] == '\n')
                    ++line;
                ++i;
            }
            if (i + 1 >= n)
                return err("unterminated /* comment", open);
            i += 2;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) ||
            c == '_') {
            std::size_t j = i;
            while (j < n &&
                   (std::isalnum(
                        static_cast<unsigned char>(source[j])) ||
                    source[j] == '_'))
                ++j;
            std::string word = source.substr(i, j - i);
            const auto kw = keywords.find(word);
            push(kw != keywords.end() ? kw->second : Tok::Ident,
                 std::move(word));
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            bool isFloat = false;
            while (j < n && std::isdigit(static_cast<unsigned char>(
                                source[j])))
                ++j;
            if (j < n && source[j] == '.') {
                isFloat = true;
                ++j;
                while (j < n &&
                       std::isdigit(
                           static_cast<unsigned char>(source[j])))
                    ++j;
            }
            std::string num = source.substr(i, j - i);
            Token t;
            t.line = line;
            t.text = num;
            if (isFloat) {
                t.kind = Tok::FloatLit;
                t.floatVal = std::strtof(num.c_str(), nullptr);
            } else {
                t.kind = Tok::IntLit;
                t.intVal = static_cast<SWord>(
                    std::strtol(num.c_str(), nullptr, 10));
            }
            out.push_back(std::move(t));
            i = j;
            continue;
        }

        auto two = [&](char next) {
            return i + 1 < n && source[i + 1] == next;
        };
        switch (c) {
          case '+': push(Tok::Plus); ++i; continue;
          case '-': push(Tok::Minus); ++i; continue;
          case '*': push(Tok::Star); ++i; continue;
          case '/': push(Tok::Slash); ++i; continue;
          case '%': push(Tok::Percent); ++i; continue;
          case '(': push(Tok::LParen); ++i; continue;
          case ')': push(Tok::RParen); ++i; continue;
          case '{': push(Tok::LBrace); ++i; continue;
          case '}': push(Tok::RBrace); ++i; continue;
          case '[': push(Tok::LBracket); ++i; continue;
          case ']': push(Tok::RBracket); ++i; continue;
          case ';': push(Tok::Semi); ++i; continue;
          case '=':
            if (two('=')) {
                push(Tok::EqEq);
                i += 2;
            } else {
                push(Tok::Assign);
                ++i;
            }
            continue;
          case '!':
            if (two('=')) {
                push(Tok::NotEq);
                i += 2;
                continue;
            }
            return err("stray '!' (only '!=' is supported)", line);
          case '<':
            if (two('=')) {
                push(Tok::Le);
                i += 2;
            } else {
                push(Tok::Lt);
                ++i;
            }
            continue;
          case '>':
            if (two('=')) {
                push(Tok::Ge);
                i += 2;
            } else {
                push(Tok::Gt);
                ++i;
            }
            continue;
          default:
            return err(cat("unexpected character '", c, "'"), line);
        }
    }
    push(Tok::Eof);
    return out;
}

} // namespace ximd::frontend
