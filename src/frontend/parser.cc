#include "frontend/parser.hh"

#include "support/logging.hh"

namespace ximd::frontend {

using sched::compileError;
using sched::CompileError;
using sched::CompileResult;

namespace {

/** Internal unwind carrying the structured error; never escapes
 *  parse(). */
struct Fail
{
    CompileError error;
};

class Parser
{
  public:
    explicit Parser(const std::vector<Token> &tokens)
        : toks_(tokens)
    {
    }

    CProgram
    run()
    {
        CProgram prog;
        while (peek().kind != Tok::Eof)
            prog.stmts.push_back(parseStmt());
        return prog;
    }

  private:
    const Token &peek(std::size_t ahead = 0) const
    {
        const std::size_t i = pos_ + ahead;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }

    const Token &take() { return toks_[pos_++]; }

    [[noreturn]] void
    fail(int line, std::string msg) const
    {
        CompileError e = compileError("c-parse", std::move(msg));
        e.line = line;
        throw Fail{std::move(e)};
    }

    const Token &
    expect(Tok kind, const char *where)
    {
        if (peek().kind != kind)
            fail(peek().line,
                 cat("expected ", tokName(kind), " ", where,
                     ", got ", tokName(peek().kind)));
        return take();
    }

    StmtPtr
    parseStmt()
    {
        switch (peek().kind) {
          case Tok::KwInt:
          case Tok::KwFloat:
            return parseDecl();
          case Tok::KwIf:
            return parseIf();
          case Tok::KwWhile:
            return parseWhile();
          case Tok::KwFor:
            return parseFor();
          case Tok::LBrace:
            return parseBlock();
          case Tok::Ident: {
            StmtPtr s = parseSimpleAssign();
            expect(Tok::Semi, "after assignment");
            return s;
          }
          default:
            fail(peek().line, cat("expected a statement, got ",
                                  tokName(peek().kind)));
        }
    }

    StmtPtr
    parseDecl()
    {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::Decl;
        s->line = peek().line;
        s->isFloat = take().kind == Tok::KwFloat;
        s->name = expect(Tok::Ident, "in declaration").text;
        if (peek().kind == Tok::LBracket) {
            take();
            const Token &size =
                expect(Tok::IntLit, "as array size");
            if (size.intVal <= 0)
                fail(size.line, cat("array '", s->name,
                                    "' needs a positive size"));
            s->arraySize = size.intVal;
            expect(Tok::RBracket, "after array size");
            if (peek().kind == Tok::Assign)
                fail(peek().line,
                     cat("array '", s->name,
                         "' cannot take an initializer"));
        } else if (peek().kind == Tok::Assign) {
            take();
            s->init = parseExpr();
        }
        expect(Tok::Semi, "after declaration");
        return s;
    }

    /** `ident ("[" expr "]")? "=" expr`, no trailing semicolon. */
    StmtPtr
    parseSimpleAssign()
    {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::Assign;
        s->line = peek().line;
        s->target = parsePrimary();
        if (s->target->kind != Expr::Kind::Var &&
            s->target->kind != Expr::Kind::Index)
            fail(s->line, "assignment target must be a variable "
                          "or array element");
        expect(Tok::Assign, "in assignment");
        s->value = parseExpr();
        return s;
    }

    StmtPtr
    parseIf()
    {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::If;
        s->line = take().line; // 'if'
        expect(Tok::LParen, "after 'if'");
        s->cond = parseCond();
        expect(Tok::RParen, "after condition");
        s->thenStmt = parseStmt();
        if (peek().kind == Tok::KwElse) {
            take();
            s->elseStmt = parseStmt();
        }
        return s;
    }

    StmtPtr
    parseWhile()
    {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::While;
        s->line = take().line; // 'while'
        expect(Tok::LParen, "after 'while'");
        s->cond = parseCond();
        expect(Tok::RParen, "after condition");
        s->thenStmt = parseStmt();
        return s;
    }

    StmtPtr
    parseFor()
    {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::For;
        s->line = take().line; // 'for'
        expect(Tok::LParen, "after 'for'");
        if (peek().kind != Tok::Semi)
            s->forInit = parseSimpleAssign();
        expect(Tok::Semi, "after for-initializer");
        s->cond = parseCond();
        expect(Tok::Semi, "after for-condition");
        if (peek().kind != Tok::RParen)
            s->forStep = parseSimpleAssign();
        expect(Tok::RParen, "after for-step");
        s->thenStmt = parseStmt();
        return s;
    }

    StmtPtr
    parseBlock()
    {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::Block;
        s->line = take().line; // '{'
        while (peek().kind != Tok::RBrace) {
            if (peek().kind == Tok::Eof)
                fail(peek().line, "unterminated '{' block");
            s->body.push_back(parseStmt());
        }
        take(); // '}'
        return s;
    }

    std::unique_ptr<Cond>
    parseCond()
    {
        auto c = std::make_unique<Cond>();
        c->lhs = parseExpr();
        c->line = peek().line;
        switch (peek().kind) {
          case Tok::EqEq:  c->rel = RelOp::Eq; break;
          case Tok::NotEq: c->rel = RelOp::Ne; break;
          case Tok::Lt:    c->rel = RelOp::Lt; break;
          case Tok::Le:    c->rel = RelOp::Le; break;
          case Tok::Gt:    c->rel = RelOp::Gt; break;
          case Tok::Ge:    c->rel = RelOp::Ge; break;
          default:
            fail(peek().line,
                 cat("expected a relational operator, got ",
                     tokName(peek().kind)));
        }
        take();
        c->rhs = parseExpr();
        return c;
    }

    ExprPtr
    parseExpr()
    {
        ExprPtr e = parseTerm();
        while (peek().kind == Tok::Plus ||
               peek().kind == Tok::Minus) {
            const char op = peek().kind == Tok::Plus ? '+' : '-';
            const int line = take().line;
            auto bin = std::make_unique<Expr>();
            bin->kind = Expr::Kind::Binary;
            bin->line = line;
            bin->op = op;
            bin->lhs = std::move(e);
            bin->rhs = parseTerm();
            e = std::move(bin);
        }
        return e;
    }

    ExprPtr
    parseTerm()
    {
        ExprPtr e = parseUnary();
        while (peek().kind == Tok::Star ||
               peek().kind == Tok::Slash ||
               peek().kind == Tok::Percent) {
            const char op = peek().kind == Tok::Star    ? '*'
                            : peek().kind == Tok::Slash ? '/'
                                                        : '%';
            const int line = take().line;
            auto bin = std::make_unique<Expr>();
            bin->kind = Expr::Kind::Binary;
            bin->line = line;
            bin->op = op;
            bin->lhs = std::move(e);
            bin->rhs = parseUnary();
            e = std::move(bin);
        }
        return e;
    }

    ExprPtr
    parseUnary()
    {
        if (peek().kind == Tok::Minus) {
            auto u = std::make_unique<Expr>();
            u->kind = Expr::Kind::Unary;
            u->line = take().line;
            u->op = '-';
            u->lhs = parseUnary();
            return u;
        }
        return parsePrimary();
    }

    ExprPtr
    parsePrimary()
    {
        auto e = std::make_unique<Expr>();
        e->line = peek().line;
        switch (peek().kind) {
          case Tok::IntLit:
            e->kind = Expr::Kind::IntLit;
            e->intVal = take().intVal;
            return e;
          case Tok::FloatLit:
            e->kind = Expr::Kind::FloatLit;
            e->floatVal = take().floatVal;
            return e;
          case Tok::LParen: {
            take();
            ExprPtr inner = parseExpr();
            expect(Tok::RParen, "to close '('");
            return inner;
          }
          case Tok::Ident:
            e->name = take().text;
            if (peek().kind == Tok::LBracket) {
                take();
                e->kind = Expr::Kind::Index;
                e->lhs = parseExpr();
                expect(Tok::RBracket, "after array index");
            } else {
                e->kind = Expr::Kind::Var;
            }
            return e;
          default:
            fail(peek().line, cat("expected an expression, got ",
                                  tokName(peek().kind)));
        }
    }

    const std::vector<Token> &toks_;
    std::size_t pos_ = 0;
};

} // namespace

CompileResult<CProgram>
parse(const std::vector<Token> &tokens)
{
    try {
        return Parser(tokens).run();
    } catch (Fail &f) {
        return std::move(f.error);
    }
}

} // namespace ximd::frontend
