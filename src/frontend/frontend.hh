/**
 * @file
 * Frontend facade: C-like kernel source -> sched IR.
 *
 * Chains the stages (lex -> parse -> lower) so drivers need one call.
 * The result is an ordinary IrProgram over unbounded virtual
 * registers; the pipeline's regalloc pass decides the physical
 * mapping (xcc --input=c [--spill]).
 */

#ifndef XIMD_FRONTEND_FRONTEND_HH
#define XIMD_FRONTEND_FRONTEND_HH

#include <string>

#include "frontend/lower.hh"
#include "sched/diag.hh"
#include "sched/ir.hh"

namespace ximd::frontend {

/** Compile C-like @p source to IR (passes "c-parse" / "c-lower"). */
sched::CompileResult<sched::IrProgram>
compileC(const std::string &source, const LowerOptions &opts = {});

} // namespace ximd::frontend

#endif // XIMD_FRONTEND_FRONTEND_HH
