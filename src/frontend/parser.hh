/**
 * @file
 * Recursive-descent parser for the C-like kernel language
 * (pass "c-parse").
 *
 * Grammar (DESIGN.md §15):
 *
 *   program  := stmt*
 *   stmt     := decl | assign | if | while | for | block
 *   decl     := ("int"|"float") ident ("[" intlit "]")?
 *               ("=" expr)? ";"
 *   assign   := ident ("[" expr "]")? "=" expr ";"
 *   if       := "if" "(" cond ")" stmt ("else" stmt)?
 *   while    := "while" "(" cond ")" stmt
 *   for      := "for" "(" simple? ";" cond ";" simple? ")" stmt
 *   cond     := expr relop expr
 *   expr     := term (("+"|"-") term)*
 *   term     := unary (("*"|"/"|"%") unary)*
 *   unary    := "-" unary | primary
 *   primary  := intlit | floatlit | ident ("[" expr "]")?
 *             | "(" expr ")"
 *
 * where `simple` is an assignment without the trailing semicolon.
 * Conditions appear only in if/while/for heads — the IR consumes
 * compare results exclusively through branch terminators, so the
 * language has no boolean-valued expressions.
 */

#ifndef XIMD_FRONTEND_PARSER_HH
#define XIMD_FRONTEND_PARSER_HH

#include "frontend/ast.hh"
#include "frontend/lexer.hh"
#include "sched/diag.hh"

namespace ximd::frontend {

/** Parse @p tokens into an AST (pass "c-parse"). */
sched::CompileResult<CProgram>
parse(const std::vector<Token> &tokens);

} // namespace ximd::frontend

#endif // XIMD_FRONTEND_PARSER_HH
