/**
 * @file
 * AST -> IR lowering (pass "c-lower").
 *
 * Maps the C-like surface onto the sched IR's model:
 *
 *   - int/float scalars become virtual registers (the allocator later
 *     decides which live in the physical window and which spill);
 *   - arrays become contiguous words in data memory starting at
 *     LowerOptions::dataBase, one word per element;
 *   - arithmetic picks the integer or float opcode by operand type,
 *     inserting Itof/Ftoi conversions (int literals fold to float
 *     immediates bit-exactly — the datapath's Itof is
 *     static_cast<float>, so folding and converting agree);
 *   - conditions lower to compare ops consumed by block terminators;
 *     if/while/for become the obvious CFG diamonds and loops;
 *   - top-level literal initializers outside all control flow become
 *     .vinit entries instead of Mov ops.
 *
 * Every emitted op is stamped with its source line, so allocator
 * pressure diagnostics point back into the .c file.
 */

#ifndef XIMD_FRONTEND_LOWER_HH
#define XIMD_FRONTEND_LOWER_HH

#include "frontend/ast.hh"
#include "sched/ir.hh"

namespace ximd::frontend {

struct LowerOptions
{
    /** First data-memory word used for arrays. */
    Addr dataBase = 1024;
};

/** Lower @p prog to IR (pass "c-lower"). */
sched::CompileResult<sched::IrProgram>
lower(const CProgram &prog, const LowerOptions &opts = {});

} // namespace ximd::frontend

#endif // XIMD_FRONTEND_LOWER_HH
