/**
 * @file
 * FIG10 — regenerate the paper's Figure 10: the MINMAX address trace
 * for IZ() = (5,3,4,7), and verify it against the published table.
 * The timing loops measure xsim's simulation throughput on the same
 * program.
 */

#include "bench_util.hh"

#include "core/ximd_machine.hh"
#include "workloads/kernels.hh"

namespace {

using namespace ximd;

const char *const kPaperTrace =
    "0 | 00 00 00 00 | XXXX | {0,1,2,3}\n"
    "1 | 01 01 01 01 | XXFX | {0,1,2,3}\n"
    "2 | 02 02 02 02 | TTFX | {0,1,2,3}\n"
    "3 | 03 03 04 04 | TTFX | {0,1}{2}{3}\n"
    "4 | 05 05 05 05 | TTFX | {0,1,2,3}\n"
    "5 | 02 02 02 02 | TFFX | {0,1,2,3}\n"
    "6 | 03 03 04 03 | TFFX | {0,1}{2}{3}\n"
    "7 | 05 05 05 05 | TFFX | {0,1,2,3}\n"
    "8 | 02 02 02 02 | FFFX | {0,1,2,3}\n"
    "9 | 03 03 03 03 | FFTX | {0,1}{2}{3}\n"
    "10 | 05 05 05 05 | FFTX | {0,1,2,3}\n"
    "11 | 08 08 08 08 | FTTX | {0,1,2,3}\n"
    "12 | 0a 0a 0a 09 | FTTX | {0,1}{2}{3}\n"
    "13 | 0a 0a 0a 0a | FTTX | {0,1,2,3}\n";

void
printTables()
{
    std::cout << "# FIG10: MINMAX address trace, IZ() = (5,3,4,7)\n";

    MachineConfig cfg;
    cfg.recordTrace = true;
    XimdMachine m(workloads::minmaxPaper(/*terminate=*/false), cfg);
    for (int i = 0; i < 14; ++i)
        m.step();

    std::cout << "\n" << m.trace().formatted() << "\n";
    std::cout << "results: min = "
              << wordToInt(m.readRegByName("min")) << ", max = "
              << wordToInt(m.readRegByName("max"))
              << " (paper: 3, 7)\n";

    const bool match = m.trace().compact() == kPaperTrace;
    std::cout << "golden comparison vs the published Figure 10: "
              << (match ? "EXACT MATCH (14/14 cycles)" : "MISMATCH")
              << "\n";
    if (!match)
        std::exit(1);
}

void
simulateMinmaxTrace(benchmark::State &state)
{
    MachineConfig cfg;
    cfg.recordTrace = state.range(0) != 0;
    Cycle cycles = 0;
    for (auto _ : state) {
        XimdMachine m(workloads::minmaxPaper(false), cfg);
        for (int i = 0; i < 14; ++i)
            m.step();
        cycles += m.cycle();
        benchmark::DoNotOptimize(m.readReg(0));
    }
    state.counters["machine_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(simulateMinmaxTrace)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("trace");

} // namespace

XIMD_BENCH_MAIN(printTables)
