/**
 * @file
 * FIG13 — the proposed compilation approach: threads compiled at
 * several widths into tiles, then packed into the instruction-memory
 * strip. The figure's objective is static code density; the paper
 * leaves the placement-algorithm choice open ("it is still unknown
 * which placement algorithm will work best"), so several are
 * compared. A laminar packing is additionally composed into a
 * runnable program to measure the execution-time side.
 */

#include "bench_util.hh"

#include "core/ximd_machine.hh"
#include "sched/compose.hh"
#include "support/random.hh"
#include "workloads/ir_threads.hh"

namespace {

using namespace ximd;
using namespace ximd::bench;
using namespace ximd::sched;

/** Mixed-shape thread: a reduction loop plus some straight-line ILP. */
IrProgram
makeThread(int t, Rng &rng)
{
    return workloads::mixedThread(t, rng);
}

void
printTables()
{
    constexpr FuId kWidth = 8;
    std::cout << "# FIG13: tile generation and packing (strip width "
              << unsigned(kWidth) << ")\n";

    section("static code size by strategy and thread-mix size");
    Table t({{"threads", 9},
             {"stacked", 9},
             {"first-fit", 11},
             {"skyline", 9},
             {"balanced", 10},
             {"exhaustive", 12},
             {"best/stacked", 14}});
    t.header();
    for (int count : {2, 4, 6}) {
        Rng rng(1000 + count);
        std::vector<IrProgram> threads;
        for (int i = 0; i < count; ++i)
            threads.push_back(makeThread(i, rng));
        auto tiles = generateTiles(threads, kWidth);

        const PackResult st = packStacked(tiles, kWidth);
        const PackResult ff = packFirstFit(tiles, kWidth);
        const PackResult sk = packSkyline(tiles, kWidth);
        const PackResult bg = packBalancedGroups(tiles, kWidth);
        const PackResult ex = packExhaustive(tiles, kWidth);
        for (const PackResult *r : {&st, &ff, &sk, &bg, &ex})
            orDie(validatePackingChecked(*r, tiles, kWidth));

        unsigned best = std::min(
            {ff.totalHeight, sk.totalHeight, bg.totalHeight,
             ex.totalHeight});
        t.row({num(count), num(st.totalHeight), num(ff.totalHeight),
               num(sk.totalHeight), num(bg.totalHeight),
               num(ex.totalHeight),
               fixed(double(best) / double(st.totalHeight), 2)});
    }
    std::cout << "shape: packing narrow tiles side by side cuts "
                 "static code size by\nroughly the thread count vs "
                 "full-width stacking; the exhaustive packer\nlower-"
                 "bounds the heuristics.\n";

    section("tile sets for the 4-thread mix (width x rows)");
    {
        Rng rng(1004);
        std::vector<IrProgram> threads;
        for (int i = 0; i < 4; ++i)
            threads.push_back(makeThread(i, rng));
        auto tiles = generateTiles(threads, kWidth);
        for (const TileSet &set : tiles) {
            std::cout << "  thread " << set.threadId << ":";
            for (const Tile &tl : set.impls)
                std::cout << "  " << unsigned(tl.width) << "x"
                          << tl.height;
            std::cout << "\n";
        }
    }

    section("execution time of composed packings (6 threads)");
    {
        Rng rng(1006);
        std::vector<IrProgram> threads;
        for (int i = 0; i < 6; ++i)
            threads.push_back(makeThread(i, rng));
        auto tiles = generateTiles(threads, kWidth);

        Table t2({{"packing", 22},
                  {"static rows", 13},
                  {"run cycles", 12},
                  {"mean streams", 14}});
        t2.header();
        for (auto pack : {packStacked, packBalancedGroups}) {
            const PackResult r = pack(tiles, kWidth);
            Composed comp =
                orDie(composeThreadsChecked(threads, r, kWidth));
            MachineConfig cfg;
            cfg.memWords = 8192;
            XimdMachine m(comp.program, cfg);
            const RunResult rr = m.run(1'000'000);
            if (!rr.ok()) {
                std::cerr << "composed run failed: "
                          << rr.faultMessage << "\n";
                std::exit(1);
            }
            t2.row({r.strategy, num(r.totalHeight), num(m.cycle()),
                    fixed(m.stats().meanStreams(), 2)});
        }
        std::cout << "shape: column-grouped packing trades a touch "
                     "of per-thread ILP for\nthread-level "
                     "concurrency and wins on makespan.\n";
    }
}

void
packingThroughput(benchmark::State &state)
{
    Rng rng(77);
    std::vector<IrProgram> threads;
    for (int i = 0; i < 5; ++i)
        threads.push_back(makeThread(i, rng));
    auto tiles = generateTiles(threads, 8);
    for (auto _ : state) {
        const PackResult r = state.range(0) == 0
                                 ? packSkyline(tiles, 8)
                                 : packExhaustive(tiles, 8);
        benchmark::DoNotOptimize(r.totalHeight);
    }
}
BENCHMARK(packingThroughput)->Arg(0)->Arg(1)->ArgName("exhaustive");

void
tileGeneration(benchmark::State &state)
{
    Rng rng(78);
    std::vector<IrProgram> threads;
    for (int i = 0; i < 5; ++i)
        threads.push_back(makeThread(i, rng));
    for (auto _ : state) {
        auto tiles = generateTiles(threads, 8);
        benchmark::DoNotOptimize(tiles.size());
    }
}
BENCHMARK(tileGeneration);

} // namespace

XIMD_BENCH_MAIN(printTables)
