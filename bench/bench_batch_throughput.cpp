/**
 * @file
 * BATCH — throughput of the SoA lockstep engine vs the scalar farm.
 *
 * Runs the same cohort of short same-program jobs (minmax over seed
 * variants, the setup-dominated regime batching exists for) through
 * the scalar farm (width 1) and through BatchRunner at lane widths
 * 64, 256 and 1024, and reports jobs/s plus aggregate simulated
 * machine-cycles/s. The scalar path pays per-job memory zeroing,
 * token preparation and final-state hashing; the engine amortizes
 * all three across its lanes (DESIGN.md section 13), so the target
 * is width 256 at >= 3x the width-1 jobs/s. Every row also checks
 * that the untimed report is byte-identical to the scalar one —
 * throughput that changed the answers would not count.
 */

#include "bench_util.hh"

#include "farm/batch_runner.hh"
#include "farm/farm.hh"
#include "farm/suite.hh"
#include "support/logging.hh"

namespace {

using namespace ximd;
using namespace ximd::bench;

constexpr std::size_t kJobs = 1024;

/** One program, many seeds: a single batch-eligible cohort. */
std::vector<farm::RunSpec>
throughputBatch()
{
    static farm::ProgramCache cache;
    std::vector<farm::RunSpec> specs;
    specs.reserve(kJobs);
    for (std::size_t i = 0; i < kJobs; ++i) {
        farm::WorkloadRequest req;
        req.workload = "minmax";
        req.n = 64;
        req.seed = 1 + i;
        auto spec = farm::makeWorkloadSpec(req, &cache);
        if (!spec.hasValue())
            fatal("bench_batch_throughput: ", spec.error().message);
        specs.push_back(std::move(spec).value());
    }
    return specs;
}

farm::BatchResult
runAtWidth(const std::vector<farm::RunSpec> &specs, unsigned width)
{
    return width <= 1 ? Farm::run(specs, 1)
                      : farm::BatchRunner::run(specs, 1, width);
}

std::uint64_t
totalCycles(const farm::BatchResult &batch)
{
    std::uint64_t cycles = 0;
    for (const farm::JobResult &j : batch.jobs)
        cycles += j.run.cycles;
    return cycles;
}

/** The untimed report with the self-describing backend labels
 *  blanked, so scalar and batched runs compare on architecture
 *  alone (the same normalization as ci.sh's batch-parity stage). */
std::string
normalizedReport(const farm::BatchResult &batch)
{
    std::string report = batch.json(false);
    for (const char *label :
         {"\"backend\": \"", "\"predecode\": \""}) {
        std::size_t at = 0;
        while ((at = report.find(label, at)) != std::string::npos) {
            const std::size_t open = at + std::string(label).size();
            const std::size_t close = report.find('"', open);
            report.replace(open, close - open, "-");
            at = open;
        }
    }
    return report;
}

void
printTables()
{
    std::cout << "# BATCH: SoA lockstep engine vs scalar farm ("
              << kJobs << " minmax/n=64 jobs, one shared program)\n";

    const std::vector<farm::RunSpec> specs = throughputBatch();

    section("jobs/s by lane width (width 1 = scalar farm)");
    Table t({{"width", 7},
             {"wall ms", 9},
             {"jobs/s", 10},
             {"speedup", 9},
             {"failed", 8},
             {"identical", 11}});
    t.header();

    std::string baselineReport;
    double baselineMs = 0;
    for (unsigned width : {1u, 64u, 256u, 1024u}) {
        const farm::BatchResult batch = runAtWidth(specs, width);
        const std::string report = normalizedReport(batch);
        if (width == 1) {
            baselineReport = report;
            baselineMs = batch.wallMillis;
        }
        const double ms = batch.wallMillis;
        t.row({num(width), fixed(ms, 0),
               fixed(ms > 0 ? double(kJobs) * 1000.0 / ms : 0.0, 0),
               ratio(ms > 0 ? baselineMs / ms : 1.0),
               num(batch.failures()),
               report == baselineReport ? "yes" : "NO"});
    }

    std::cout << "\n'identical' compares the full untimed report "
                 "byte-for-byte against the\nscalar run: a batched "
                 "job's results, stats and arch hash are a pure\n"
                 "function of its RunSpec, independent of lane "
                 "width.\n";
}

void
batchThroughput(benchmark::State &state)
{
    const unsigned width = static_cast<unsigned>(state.range(0));
    const std::vector<farm::RunSpec> specs = throughputBatch();
    std::uint64_t jobs = 0;
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        const farm::BatchResult batch = runAtWidth(specs, width);
        jobs += batch.jobs.size();
        cycles += totalCycles(batch);
        benchmark::DoNotOptimize(batch.jobs.data());
    }
    state.counters["jobs_per_s"] = benchmark::Counter(
        static_cast<double>(jobs), benchmark::Counter::kIsRate);
    state.counters["machine_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

BENCHMARK(batchThroughput)
    ->Name("batchThroughput")
    ->Arg(1)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

} // namespace

XIMD_BENCH_MAIN(printTables)
