/**
 * @file
 * LL12 — Livermore Loop 12 (section 3.1): X(k) = Y(k+1) - Y(k).
 *
 * "Software Pipelining can be used effectively to schedule multiple
 * iterations of this loop in parallel." Regenerates the cycles-vs-N
 * series for the naive schedule, the hand-pipelined II=1 kernel, and
 * the modulo-scheduler-generated kernel (they must agree), plus
 * MFLOPS at the prototype's 85 ns cycle time.
 */

#include "bench_util.hh"

#include "core/ximd_machine.hh"
#include "sched/modulo.hh"
#include "support/random.hh"
#include "workloads/kernels.hh"
#include "workloads/loop12.hh"
#include "workloads/reference.hh"

namespace {

using namespace ximd;
using namespace ximd::bench;

std::vector<float>
makeY(std::size_t m, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> y(m);
    for (auto &v : y)
        v = static_cast<float>(rng.range(-512, 512)) * 0.125f;
    return y;
}

/** Loop 12 through the modulo scheduler. */
Program
moduloLoop12(Word n, Addr y0, Addr x0)
{
    using namespace sched;
    PipelineLoop loop;
    loop.numLocals = 4;
    loop.tripCount = n;
    loop.body = {
        {Opcode::Load, PipeVal::immRaw(y0), PipeVal::induction(), 0},
        {Opcode::Load, PipeVal::immRaw(y0 + 1), PipeVal::induction(),
         1},
        {Opcode::Iadd, PipeVal::induction(), PipeVal::immRaw(x0), 3},
        {Opcode::Fsub, PipeVal::localVal(1), PipeVal::localVal(0), 2},
        {Opcode::Store, PipeVal::localVal(2), PipeVal::localVal(3),
         -1},
    };
    return orDie(pipelineLoopChecked(loop, 8));
}

Cycle
runAndVerify(Program prog, const std::vector<float> &y,
             bool pokeMemory)
{
    XimdMachine m(std::move(prog));
    const Word x0 = m.program().symbolOrDie("X0");
    if (pokeMemory) {
        const Word y0 = m.program().symbolOrDie("Y0");
        for (std::size_t k = 1; k <= y.size(); ++k)
            m.memory().poke(y0 + static_cast<Addr>(k),
                            floatToWord(y[k - 1]));
    }
    const RunResult r = m.run(10'000'000);
    if (!r.ok()) {
        std::cerr << "loop12 failed: " << r.faultMessage << "\n";
        std::exit(1);
    }
    const auto expect = workloads::referenceLoop12(y);
    for (std::size_t k = 0; k < expect.size(); ++k) {
        if (wordToFloat(m.peekMem(x0 + 1 + static_cast<Addr>(k))) !=
            expect[k]) {
            std::cerr << "loop12 X(" << k + 1 << ") mismatch\n";
            std::exit(1);
        }
    }
    return r.cycles;
}

void
printTables()
{
    std::cout << "# LL12: Livermore Loop 12, naive vs software-"
                 "pipelined (8 FUs)\n\n";
    std::cout << "All variants verified against the C++ reference.\n"
              << "MFLOPS at the prototype's 85 ns cycle "
                 "(section 4.3).\n\n";

    Table t({{"N", 8},
             {"naive", 9},
             {"hand II=1", 11},
             {"modulo II=1", 13},
             {"speedup", 9},
             {"MFLOPS", 9}});
    t.header();

    for (Word n : {8u, 32u, 128u, 512u, 2048u}) {
        const auto y = makeY(n + 1, n);
        const Cycle naive =
            runAndVerify(workloads::loop12Naive(y, 8), y, false);
        const Cycle hand =
            runAndVerify(workloads::loop12Pipelined(y), y, false);

        Program mod = moduloLoop12(n, 64, 4096);
        mod.setSymbol("X0", 4096);
        mod.setSymbol("Y0", 64);
        const Cycle modc = runAndVerify(std::move(mod), y, true);

        // One fsub per iteration.
        const double secs = static_cast<double>(hand) * 85e-9;
        const double mflops = static_cast<double>(n) / secs / 1e6;
        t.row({num(n), num(naive), num(hand), num(modc),
               ratio(double(naive) / double(hand)), fixed(mflops, 2)});
    }
    std::cout << "\nShape check: the pipelined kernel reaches one "
                 "iteration per cycle\n(N + 3 cycles total) — 3x over "
                 "the naive 3-cycle loop, independent of N.\nThe "
                 "hand schedule and the modulo scheduler agree "
                 "cycle-for-cycle.\n";
}

void
simulatePipelined(benchmark::State &state)
{
    const Word n = static_cast<Word>(state.range(0));
    const auto y = makeY(n + 1, 1);
    Program prog = workloads::loop12Pipelined(y);
    Cycle cycles = 0;
    for (auto _ : state) {
        XimdMachine m(prog);
        m.run();
        cycles += m.cycle();
    }
    state.counters["machine_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(simulatePipelined)->Arg(128)->Arg(2048)->ArgName("N");

} // namespace

XIMD_BENCH_MAIN(printTables)
