/**
 * @file
 * XFARM — thread scaling of the parallel batch-run engine.
 *
 * Runs a fixed batch of suite jobs at 1, 2, 4 and 8 workers and
 * reports wall time, speedup over the serial run, and a byte-level
 * determinism check of the untimed reports. On a single-core host the
 * speedup column is expected to hover around 1.0x — the table then
 * documents that the engine adds no parallel overhead rather than
 * demonstrating scaling; run on a multi-core host for the real curve.
 */

#include "bench_util.hh"

#include <thread>

#include "farm/farm.hh"
#include "farm/suite.hh"
#include "support/logging.hh"

namespace {

using namespace ximd;
using namespace ximd::bench;

/** A batch heavy enough to amortize thread startup: the built-in
 *  suite replicated over several seeds. */
std::vector<farm::RunSpec>
scalingBatch()
{
    std::vector<farm::RunSpec> specs;
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        farm::SuiteOptions opts;
        opts.n = 128;
        opts.seed = seed;
        for (farm::RunSpec &s : farm::builtinSuite(opts))
            specs.push_back(std::move(s));
    }
    return specs;
}

void
printTables()
{
    std::cout << "# XFARM: batch-engine thread scaling ("
              << std::thread::hardware_concurrency()
              << " hardware threads on this host)\n";

    const std::vector<farm::RunSpec> specs = scalingBatch();

    section(cat("scaling over ", specs.size(), " jobs"));
    Table t({{"workers", 9},
             {"wall ms", 9},
             {"speedup", 9},
             {"failed", 8},
             {"identical", 11}});
    t.header();

    std::string baselineReport;
    double baselineMs = 0;
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        const farm::BatchResult batch = Farm::run(specs, workers);
        const std::string report = batch.json(false);
        if (workers == 1) {
            baselineReport = report;
            baselineMs = static_cast<double>(batch.wallMillis);
        }
        const double ms = static_cast<double>(batch.wallMillis);
        t.row({num(workers), fixed(ms, 0),
               ratio(ms > 0 ? baselineMs / ms : 1.0),
               num(batch.failures()),
               report == baselineReport ? "yes" : "NO"});
    }

    std::cout << "\n'identical' compares the full untimed report "
                 "byte-for-byte against\nthe serial run: every job's "
                 "statistics are a pure function of its\nRunSpec, "
                 "independent of worker count and scheduling.\n";
}

void
farmSuite(benchmark::State &state)
{
    const unsigned workers = static_cast<unsigned>(state.range(0));
    const std::vector<farm::RunSpec> specs = scalingBatch();
    std::uint64_t jobs = 0;
    for (auto _ : state) {
        const farm::BatchResult batch = Farm::run(specs, workers);
        benchmark::DoNotOptimize(batch.failures());
        jobs += batch.jobs.size();
    }
    state.counters["jobs_per_s"] = benchmark::Counter(
        static_cast<double>(jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(farmSuite)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

XIMD_BENCH_MAIN(printTables)
