/**
 * @file
 * EXACT_SCHED — host-side cost and payoff of the exact scheduler tier
 * (sched/exact.hh). The reproduction tables sweep the seeded random-
 * loop corpus (workloads/randprog.hh) at several widths and report the
 * optimality-gap histogram — how often and by how much the greedy
 * list scheduler leaves rows on the table — together with solve-time
 * and search-node statistics. The timing loops price one exact solve
 * against one heuristic solve and pin the cost of the budget-exhausted
 * fallback path.
 */

#include "bench_util.hh"

#include <algorithm>
#include <map>

#include "sched/exact.hh"
#include "sched/list_scheduler.hh"
#include "workloads/randprog.hh"

namespace {

using namespace ximd;
using namespace ximd::bench;
using namespace ximd::sched;

IrProgram
corpusLoop(std::uint64_t seed)
{
    workloads::RandLoopOptions lo;
    lo.seed = seed;
    lo.bodyOps = 2 + static_cast<unsigned>(seed % 14);
    lo.tripCount = 4;
    return workloads::randomLoopIr(lo);
}

void
printTables()
{
    std::cout << "# EXACT_SCHED: exact modulo scheduler vs the "
                 "heuristic tier\n";

    constexpr std::uint64_t kSeeds = 100;
    for (FuId width : {FuId(1), FuId(2), FuId(4)}) {
        section("random-loop corpus, " + num(kSeeds) +
                " seeds, width " + num(width));
        std::map<unsigned, unsigned> gapHist; // heuristic gap -> count
        unsigned proven = 0, timeouts = 0;
        std::uint64_t nodes = 0, maxNodes = 0;
        double solveMs = 0;
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
            const IrProgram ir = corpusLoop(seed);
            ExactLoopStat st;
            orDie(exactScheduleBlockChecked(ir.blocks[0], width, 1,
                                            {}, &st));
            ++gapHist[st.heuristicGap()];
            proven += st.proven;
            timeouts += st.timedOut;
            nodes += st.nodes;
            maxNodes = std::max(maxNodes, st.nodes);
            solveMs += st.solveMs;
        }
        Table t({{"heuristic gap", 14}, {"loops", 7}});
        t.header();
        for (const auto &[gap, count] : gapHist)
            t.row({num(gap) + " rows", num(count)});
        std::cout << "proven minimal: " << proven << "/" << kSeeds
                  << ", timeouts: " << timeouts
                  << ", search nodes: " << nodes
                  << " total (max " << maxNodes
                  << "), solve time: " << fixed(solveMs, 2)
                  << " ms total\n";
    }
    std::cout << "\nshape: the heuristic is optimal on most loops; "
                 "where it is not, the gap\nis a row or two and the "
                 "proof costs well under a millisecond per block.\n";
}

void
exactSolve(benchmark::State &state)
{
    const IrProgram ir = corpusLoop(7);
    const FuId width = static_cast<FuId>(state.range(0));
    for (auto _ : state) {
        auto r = exactScheduleBlockChecked(ir.blocks[0], width, 1);
        benchmark::DoNotOptimize(r.hasValue());
    }
}
BENCHMARK(exactSolve)->Arg(1)->Arg(2)->Arg(4)->ArgName("width");

void
heuristicSolve(benchmark::State &state)
{
    const IrProgram ir = corpusLoop(7);
    const FuId width = static_cast<FuId>(state.range(0));
    for (auto _ : state) {
        auto r = scheduleBlockChecked(ir.blocks[0], width, 1);
        benchmark::DoNotOptimize(r.hasValue());
    }
}
BENCHMARK(heuristicSolve)->Arg(1)->Arg(2)->Arg(4)->ArgName("width");

void
exactFallback(benchmark::State &state)
{
    // Node cap 1: every iteration prices the search-exhausted path
    // (propagate, give up, fall back to the heuristic schedule).
    const IrProgram ir = corpusLoop(7);
    ExactOptions opts;
    opts.budgetMs = 0;
    opts.maxNodes = 1;
    for (auto _ : state) {
        auto r = exactScheduleBlockChecked(ir.blocks[0], 1, 1, opts);
        benchmark::DoNotOptimize(r.hasValue());
    }
}
BENCHMARK(exactFallback);

} // namespace

XIMD_BENCH_MAIN(printTables)
