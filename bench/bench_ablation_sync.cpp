/**
 * @file
 * ABL — ablation of a design choice DESIGN.md calls out: the timing
 * of synchronization-signal distribution.
 *
 * The paper's hardware (Figure 8) feeds each parcel's SS field
 * combinationally into every FU's branch PAL, so a barrier releases
 * in the very cycle its last member arrives. The ablation registers
 * the SS bus instead (one-cycle-old values), a cheaper-wire design a
 * real implementation might prefer; every barrier join then costs one
 * extra cycle. This quantifies that cost across barrier-intensive
 * workloads.
 */

#include "bench_util.hh"

#include "asm/assembler.hh"
#include "core/ximd_machine.hh"
#include "support/random.hh"
#include "workloads/bitcount.hh"
#include "workloads/minmax.hh"

namespace {

using namespace ximd;
using namespace ximd::bench;
using namespace ximd::workloads;

Cycle
runWith(const Program &prog, bool registeredSync)
{
    MachineConfig cfg;
    cfg.registeredSync = registeredSync;
    XimdMachine m(prog, cfg);
    const RunResult r = m.run(10'000'000);
    if (!r.ok()) {
        std::cerr << "ablation run failed: " << r.faultMessage << "\n";
        std::exit(1);
    }
    return r.cycles;
}

void
printTables()
{
    std::cout << "# ABL: combinational vs registered sync-signal "
                 "distribution\n";

    section("cycle cost of registering the SS bus");
    Table t({{"workload", 26},
             {"barriers", 10},
             {"comb.", 9},
             {"regist.", 9},
             {"overhead", 10}});
    t.header();

    Rng rng(31);
    {
        std::vector<Word> data(64);
        for (auto &v : data)
            v = static_cast<Word>(rng.next64() & 0xFFFFF);
        Program p = bitcountXimd(data);
        const Cycle comb = runWith(p, false);
        const Cycle reg = runWith(p, true);
        t.row({"bitcount N=64", num(data.size() / 4), num(comb),
               num(reg),
               "+" + num(reg - comb) + " cyc"});
    }
    {
        std::vector<Word> data(256);
        for (auto &v : data)
            v = static_cast<Word>(rng.next64() & 0xFFFFF);
        Program p = bitcountXimd(data);
        const Cycle comb = runWith(p, false);
        const Cycle reg = runWith(p, true);
        t.row({"bitcount N=256", num(data.size() / 4), num(comb),
               num(reg), "+" + num(reg - comb) + " cyc"});
    }
    {
        // minmax uses implicit (equal-path) joins: no SS involved,
        // the ablation must cost nothing.
        std::vector<SWord> data(256);
        for (auto &v : data)
            v = static_cast<SWord>(rng.range(0, 1000));
        Program p = minmaxXimd(data);
        const Cycle comb = runWith(p, false);
        const Cycle reg = runWith(p, true);
        t.row({"minmax N=256 (no SS use)", "0", num(comb), num(reg),
               "+" + num(reg - comb) + " cyc"});
    }
    std::cout << "\nshape: exactly one extra cycle per barrier join "
                 "(the bitcount outer\nloop joins once per group of "
                 "four); equal-path fork/join code is\nunaffected. "
                 "The paper's combinational distribution (Figure 8) "
                 "is the\nright call when barriers are frequent.\n";
}

void
registeredSyncOverhead(benchmark::State &state)
{
    Rng rng(4);
    std::vector<Word> data(128);
    for (auto &v : data)
        v = static_cast<Word>(rng.next64() & 0xFFFFF);
    Program p = bitcountXimd(data);
    const bool reg = state.range(0) != 0;
    for (auto _ : state) {
        MachineConfig cfg;
        cfg.registeredSync = reg;
        XimdMachine m(p, cfg);
        m.run();
        benchmark::DoNotOptimize(m.cycle());
    }
}
BENCHMARK(registeredSyncOverhead)->Arg(0)->Arg(1)->ArgName("registered");

/**
 * Watchdog scenario: a wedged cross-stream synchronization (the
 * shipped deadlock.ximd pattern) burning a large cycle budget in pure
 * busy-waiting. With fast-forward the core proves the spin is a
 * fixpoint and consumes the budget in O(1); without it, every cycle
 * is stepped. The cycles-per-second counter is the headline number.
 */
void
busyWaitWatchdog(benchmark::State &state)
{
    const Program p = assembleString(
        ".fus 2\n"
        ".reg a 0\n"
        ".reg b 1\n"
        "start: -> spin ; iadd #1,#0,a || -> spin ; iadd #2,#0,b\n"
        "spin:  if ss1 out spin ; nop  || if ss0 out spin ; nop\n"
        "out:   halt ; store a,#32     || halt ; store b,#33\n");
    const bool fastForward = state.range(0) != 0;
    constexpr Cycle kBudget = 2'000'000;
    Cycle cycles = 0;
    for (auto _ : state) {
        MachineConfig cfg;
        cfg.fastForward = fastForward;
        XimdMachine m(p, cfg);
        const RunResult r = m.run(kBudget);
        benchmark::DoNotOptimize(r.cycles);
        cycles += r.cycles;
    }
    state.counters["machine_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(busyWaitWatchdog)->Arg(0)->Arg(1)->ArgName("fastforward");

} // namespace

XIMD_BENCH_MAIN(printTables)
