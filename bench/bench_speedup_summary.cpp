/**
 * @file
 * XSIM — the cross-workload summary behind section 4.1's statement:
 * "Preliminary results show a significant performance increase on
 * many programs."
 *
 * For every workload with a meaningful VLIW baseline, run both
 * machines on identical inputs and report the cycle-count speedup.
 * VLIW-mode codes (tproc, loop12) are expected at 1.00x — XIMD
 * matches a VLIW on single-stream code; control-parallel codes win.
 */

#include "bench_util.hh"

#include "core/vliw_machine.hh"
#include "core/ximd_machine.hh"
#include "support/random.hh"
#include "workloads/bitcount.hh"
#include "workloads/kernels.hh"
#include "workloads/loop12.hh"
#include "workloads/minmax.hh"
#include "workloads/reference.hh"

namespace {

using namespace ximd;
using namespace ximd::bench;
using namespace ximd::workloads;

void
printTables()
{
    std::cout << "# XSIM: XIMD vs VLIW cycle counts across the "
                 "suite (section 4.1)\n";

    section("speedup summary");
    Table t({{"workload", 30},
             {"XIMD", 9},
             {"VLIW", 9},
             {"speedup", 9},
             {"mechanism", 30}});
    t.header();

    Rng rng(123);

    { // tproc: single stream, expect parity.
        XimdMachine x(tprocPaper(3, -4, 7, 11));
        VliwMachine v(tprocPaper(3, -4, 7, 11));
        x.run();
        v.run();
        t.row({"tproc (Example 1)", num(x.cycle()), num(v.cycle()),
               ratio(double(v.cycle()) / double(x.cycle())),
               "VLIW-mode (single stream)"});
    }
    { // loop12 pipelined: single stream, expect parity.
        std::vector<float> y(257);
        for (auto &vv : y)
            vv = static_cast<float>(rng.range(-50, 50));
        XimdMachine x(loop12Pipelined(y));
        VliwMachine v(loop12Pipelined(y));
        x.run();
        v.run();
        t.row({"loop12 pipelined", num(x.cycle()), num(v.cycle()),
               ratio(double(v.cycle()) / double(x.cycle())),
               "VLIW-mode (single stream)"});
    }
    { // minmax: 2 parallel branches.
        std::vector<SWord> data(1024);
        for (auto &vv : data)
            vv = static_cast<SWord>(rng.range(0, 100000));
        XimdMachine x(minmaxXimd(data));
        VliwMachine v(minmaxVliw(data));
        x.run();
        v.run();
        t.row({"minmax (Example 2)", num(x.cycle()), num(v.cycle()),
               ratio(double(v.cycle()) / double(x.cycle())),
               "fork/join, implicit barrier"});
    }
    { // multi-search: 6 parallel branches.
        std::vector<SWord> data(512);
        for (auto &vv : data)
            vv = static_cast<SWord>(rng.range(0, 100000));
        XimdMachine x(multiSearchXimd(6, data));
        VliwMachine v(multiSearchVliw(6, data));
        x.run();
        v.run();
        t.row({"multi-search S=6", num(x.cycle()), num(v.cycle()),
               ratio(double(v.cycle()) / double(x.cycle())),
               "6 concurrent branch streams"});
    }
    { // bitcount vs serial VLIW.
        std::vector<Word> data(256);
        for (auto &vv : data)
            vv = static_cast<Word>(rng.next64() & 0xFFFFF);
        XimdMachine x(bitcountXimd(data));
        VliwMachine vs(bitcountVliwSerial(data));
        VliwMachine vl(bitcountVliwLockstep(data));
        x.run();
        vs.run();
        vl.run();
        t.row({"bitcount vs VLIW-serial", num(x.cycle()),
               num(vs.cycle()),
               ratio(double(vs.cycle()) / double(x.cycle())),
               "4 streams + explicit barrier"});
        t.row({"bitcount vs VLIW-lockstep", num(x.cycle()),
               num(vl.cycle()),
               ratio(double(vl.cycle()) / double(x.cycle())),
               "data-dependent trip counts"});
    }

    std::cout << "\nshape (the paper's qualitative claim): parity on "
                 "single-stream codes,\n'significant performance "
                 "increase' (1.3x - 4x here) wherever run-time\n"
                 "control flow lets the XIMD split into multiple "
                 "streams.\n";
}

void
endToEndSuite(benchmark::State &state)
{
    Rng rng(5);
    std::vector<SWord> data(256);
    for (auto &v : data)
        v = static_cast<SWord>(rng.range(0, 1000));
    Program minmax = minmaxXimd(data);
    std::vector<Word> bits(64);
    for (auto &v : bits)
        v = static_cast<Word>(rng.next64() & 0xFFFFF);
    Program bc = bitcountXimd(bits);
    Cycle cycles = 0;
    for (auto _ : state) {
        XimdMachine m1(minmax);
        m1.run();
        XimdMachine m2(bc);
        m2.run();
        benchmark::DoNotOptimize(m1.cycle() + m2.cycle());
        cycles += m1.cycle() + m2.cycle();
    }
    state.counters["machine_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(endToEndSuite);

} // namespace

XIMD_BENCH_MAIN(printTables)
