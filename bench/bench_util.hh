/**
 * @file
 * Shared helpers for the benchmark binaries: table printing and the
 * common main() shape (print the reproduction tables, then run the
 * google-benchmark timing loops).
 */

#ifndef XIMD_BENCH_BENCH_UTIL_HH
#define XIMD_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sched/diag.hh"
#include "support/str.hh"

namespace ximd::bench {

/**
 * Unwrap a sched CompileResult at the application layer: print the
 * structured error and exit non-zero. The benches use this with the
 * *Checked compiler entry points; the throwing wrappers they used to
 * call are deprecated (DESIGN.md section 8).
 */
template <typename T>
T
orDie(sched::CompileResult<T> r)
{
    if (!r) {
        std::cerr << r.error().format() << "\n";
        std::exit(1);
    }
    return std::move(r).value();
}

/** Fixed-width table writer. */
class Table
{
  public:
    explicit Table(std::vector<std::pair<std::string, int>> cols)
        : cols_(std::move(cols))
    {
    }

    void
    header() const
    {
        for (const auto &[name, width] : cols_)
            std::cout << padLeft(name, static_cast<std::size_t>(width));
        std::cout << "\n";
    }

    void
    row(const std::vector<std::string> &cells) const
    {
        for (std::size_t i = 0; i < cells.size() && i < cols_.size();
             ++i)
            std::cout << padLeft(
                cells[i], static_cast<std::size_t>(cols_[i].second));
        std::cout << "\n";
    }

  private:
    std::vector<std::pair<std::string, int>> cols_;
};

inline std::string
num(std::uint64_t v)
{
    return std::to_string(v);
}

inline std::string
ratio(double v)
{
    return fixed(v, 2) + "x";
}

inline void
section(const std::string &title)
{
    std::cout << "\n## " << title << "\n\n";
}

} // namespace ximd::bench

/** Standard bench main: tables first, then timing loops. */
#define XIMD_BENCH_MAIN(printTables)                                  \
    int main(int argc, char **argv)                                   \
    {                                                                 \
        printTables();                                                \
        ::benchmark::Initialize(&argc, argv);                         \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))     \
            return 1;                                                 \
        ::benchmark::RunSpecifiedBenchmarks();                        \
        ::benchmark::Shutdown();                                      \
        return 0;                                                     \
    }

#endif // XIMD_BENCH_BENCH_UTIL_HH
