/**
 * @file
 * Shared helpers for the benchmark binaries: table printing and the
 * common main() shape (print the reproduction tables, then run the
 * google-benchmark timing loops).
 */

#ifndef XIMD_BENCH_BENCH_UTIL_HH
#define XIMD_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "support/str.hh"

namespace ximd::bench {

/** Fixed-width table writer. */
class Table
{
  public:
    explicit Table(std::vector<std::pair<std::string, int>> cols)
        : cols_(std::move(cols))
    {
    }

    void
    header() const
    {
        for (const auto &[name, width] : cols_)
            std::cout << padLeft(name, static_cast<std::size_t>(width));
        std::cout << "\n";
    }

    void
    row(const std::vector<std::string> &cells) const
    {
        for (std::size_t i = 0; i < cells.size() && i < cols_.size();
             ++i)
            std::cout << padLeft(
                cells[i], static_cast<std::size_t>(cols_[i].second));
        std::cout << "\n";
    }

  private:
    std::vector<std::pair<std::string, int>> cols_;
};

inline std::string
num(std::uint64_t v)
{
    return std::to_string(v);
}

inline std::string
ratio(double v)
{
    return fixed(v, 2) + "x";
}

inline void
section(const std::string &title)
{
    std::cout << "\n## " << title << "\n\n";
}

} // namespace ximd::bench

/** Standard bench main: tables first, then timing loops. */
#define XIMD_BENCH_MAIN(printTables)                                  \
    int main(int argc, char **argv)                                   \
    {                                                                 \
        printTables();                                                \
        ::benchmark::Initialize(&argc, argv);                         \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))     \
            return 1;                                                 \
        ::benchmark::RunSpecifiedBenchmarks();                        \
        ::benchmark::Shutdown();                                      \
        return 0;                                                     \
    }

#endif // XIMD_BENCH_BENCH_UTIL_HH
