/**
 * @file
 * PROTO — section 4.3's prototype performance claims: "An initial
 * performance analysis predicts a cycle time of 85ns. This will
 * result in peak performance in excess of 90 MIPS/90 MFLOPS."
 *
 * Peak: 8 universal FUs x 1 op/cycle at 85 ns = 94.1 M ops/s. The
 * tables report the peak and the *achieved* MIPS/MFLOPS of the
 * workload suite at that cycle time, plus the host-side simulation
 * speed of xsim itself.
 */

#include "bench_util.hh"

#include "core/vliw_machine.hh"
#include "core/ximd_machine.hh"
#include "sched/codegen.hh"
#include "support/random.hh"
#include "workloads/bitcount.hh"
#include "workloads/kernels.hh"
#include "workloads/loop12.hh"
#include "workloads/minmax.hh"

namespace {

using namespace ximd;
using namespace ximd::bench;
using namespace ximd::workloads;

constexpr double kCycleNs = 85.0;

/**
 * Synthetic peak-FP kernel: U unrolled rows of 8 independent fadds,
 * then one loop-control row that still carries 6 fadds. Achieves
 * (8U + 6) flops per (U + 1) cycles — asymptotically the full 8
 * flops/cycle the prototype's MFLOPS claim assumes.
 */
Program
peakFlopKernel(unsigned unroll, Word iters)
{
    Program p(8);
    // r0..r7: accumulators; r8: counter.
    for (unsigned u = 0; u < unroll; ++u) {
        InstRow row;
        for (FuId fu = 0; fu < 8; ++fu)
            row.push_back(Parcel(
                ControlOp::jump(u + 1),
                DataOp::make(Opcode::Fadd, Operand::reg(fu),
                             Operand::immFloat(1.0f),
                             static_cast<RegId>(fu))));
        p.addRow(std::move(row));
    }
    // Loop-control row: counter decrement + exit compare + 6 fadds.
    InstRow latch;
    latch.push_back(Parcel(ControlOp::onCc(1, unroll + 1, 0),
                           DataOp::make(Opcode::Isub, Operand::reg(8),
                                        Operand::immInt(1), 8)));
    latch.push_back(Parcel(ControlOp::onCc(1, unroll + 1, 0),
                           DataOp::makeCompare(Opcode::Le,
                                               Operand::reg(8),
                                               Operand::immInt(2))));
    for (FuId fu = 2; fu < 8; ++fu)
        latch.push_back(Parcel(
            ControlOp::onCc(1, unroll + 1, 0),
            DataOp::make(Opcode::Fadd, Operand::reg(fu),
                         Operand::immFloat(1.0f),
                         static_cast<RegId>(fu))));
    p.addRow(std::move(latch));
    p.addUniformRow(Parcel(ControlOp::halt(), DataOp::nop()));
    p.addRegInit(8, iters);
    p.validate();
    return p;
}

void
printTables()
{
    std::cout << "# PROTO: prototype performance at the 85 ns cycle "
                 "(section 4.3)\n";

    const double peak = 8.0 / (kCycleNs * 1e-9) / 1e6;
    std::cout << "\npeak (8 universal FUs, 1 op/cycle each): "
              << fixed(peak, 1)
              << " MIPS and up to the same MFLOPS\n"
              << "paper claim: \"in excess of 90 MIPS/90 MFLOPS\" — "
              << (peak > 90.0 ? "reproduced" : "NOT reproduced")
              << "\n";

    section("achieved rates on the workload suite (8-FU machine)");
    Table t({{"workload", 26},
             {"cycles", 9},
             {"util", 8},
             {"MIPS", 8},
             {"MFLOPS", 9}});
    t.header();

    auto report = [&](const char *name, auto &machine) {
        machine.run();
        const RunStats &s = machine.stats();
        t.row({name, num(machine.cycle()),
               fixed(s.utilization() * 100, 1) + "%",
               fixed(s.mips(kCycleNs), 1),
               fixed(s.mflops(kCycleNs), 1)});
    };

    Rng rng(5);
    {
        XimdMachine m(peakFlopKernel(15, 64));
        report("peak-FP kernel (8 fadd/cyc)", m);
    }
    {
        std::vector<float> y(513);
        for (auto &v : y)
            v = static_cast<float>(rng.range(-100, 100));
        XimdMachine m(loop12Pipelined(y));
        report("loop12 pipelined (II=1)", m);
    }
    {
        std::vector<float> y(513);
        for (auto &v : y)
            v = static_cast<float>(rng.range(-100, 100));
        XimdMachine m(loop12Naive(y, 8));
        report("loop12 naive", m);
    }
    {
        std::vector<SWord> data(512);
        for (auto &v : data)
            v = static_cast<SWord>(rng.range(0, 10000));
        XimdMachine m(minmaxXimd(data));
        report("minmax (4 of 8 FUs)", m);
    }
    {
        std::vector<Word> data(256);
        for (auto &v : data)
            v = static_cast<Word>(rng.next64() & 0xFFFFF);
        XimdMachine m(bitcountXimd(data));
        report("bitcount (4 streams)", m);
    }
    {
        XimdMachine m(tprocPaper(1, 2, 3, 4));
        report("tproc (scalar)", m);
    }
    std::cout << "\nshape: the pipelined vector loop approaches the "
                 "issue-limited rate;\nscalar and control-bound codes "
                 "sit well below peak, as on any VLIW.\n";

    section("research model vs prototype 3-stage datapath pipeline");
    // Section 4.3 lists a "3-stage Data Path Pipeline (Operand Fetch
    // - Execute - Write Back)" as a prototype deviation taken "to
    // decrease cycle time". Compile the same dataflow for both
    // latencies and compare cycle counts: the pipeline costs cycles
    // on dependence-bound code, which the shorter cycle time must buy
    // back.
    {
        using namespace sched;
        IrBuilder b;
        const VregId i = b.newVreg();
        const VregId sum = b.newVreg();
        b.setInit(i, 0);
        b.setInit(sum, 0);
        b.startBlock("loop");
        b.emitTo(i, Opcode::Iadd, IrValue::reg(i), IrValue::immInt(1));
        const IrValue v =
            b.emitLoad(IrValue::immInt(600), IrValue::reg(i));
        const IrValue s =
            b.emit(Opcode::Imult, v, IrValue::immInt(3));
        b.emitTo(sum, Opcode::Iadd, IrValue::reg(sum), s);
        const int cmp = b.emitCompare(Opcode::Eq, IrValue::reg(i),
                                      IrValue::immInt(64));
        b.branch(cmp, "end", "loop");
        b.startBlock("end");
        b.emitStore(IrValue::reg(sum), IrValue::immInt(599));
        b.halt();
        IrProgram ir = b.finish();

        Table t2({{"datapath", 26},
                  {"rows", 7},
                  {"cycles", 9},
                  {"result", 9}});
        t2.header();
        Word results[2];
        int idx = 0;
        for (unsigned latency : {1u, 3u}) {
            auto code = orDie(sched::generateCodeChecked(
                ir, {.width = 8, .rawLatency = latency}));
            MachineConfig cfg;
            cfg.resultLatency = latency;
            XimdMachine m(code.program, cfg);
            for (Word k = 1; k <= 64; ++k)
                m.memory().poke(600 + k, k);
            m.run();
            results[idx++] = m.peekMem(599);
            t2.row({latency == 1 ? "research (1-cycle)"
                                 : "prototype (3-stage pipe)",
                    num(code.program.size()), num(m.cycle()),
                    num(m.peekMem(599))});
        }
        if (results[0] != results[1]) {
            std::cerr << "pipeline ablation mismatch\n";
            std::exit(1);
        }
        std::cout << "shape: identical results; the 3-stage pipeline "
                     "stretches this\ndependence-bound loop ~3x in "
                     "cycles — the compiler visibility the paper\n"
                     "counts on (\"the compiler can accurately "
                     "predict ... the timing of\neach instruction\") "
                     "extends cleanly to the pipelined prototype.\n";
    }
}

/** Host-side simulator speed: simulated machine-cycles per second. */
void
hostSimulationSpeed(benchmark::State &state)
{
    Rng rng(9);
    std::vector<float> y(static_cast<std::size_t>(state.range(0)) + 1);
    for (auto &v : y)
        v = static_cast<float>(rng.range(-100, 100));
    Program prog = loop12Pipelined(y);
    Cycle cycles = 0;
    for (auto _ : state) {
        XimdMachine m(prog);
        m.run();
        cycles += m.cycle();
    }
    state.counters["machine_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
    state.counters["sim_slowdown_vs_85ns"] = benchmark::Counter(
        static_cast<double>(cycles) * kCycleNs * 1e-9,
        benchmark::Counter::kIsRate |
            benchmark::Counter::kInvert);
}
BENCHMARK(hostSimulationSpeed)->Arg(1024)->Arg(16384)->ArgName("N");

void
hostVliwSimulationSpeed(benchmark::State &state)
{
    Rng rng(10);
    std::vector<float> y(4097);
    for (auto &v : y)
        v = static_cast<float>(rng.range(-100, 100));
    Program prog = loop12Pipelined(y);
    Cycle cycles = 0;
    for (auto _ : state) {
        VliwMachine m(prog);
        m.run();
        cycles += m.cycle();
    }
    state.counters["machine_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(hostVliwSimulationSpeed);

} // namespace

XIMD_BENCH_MAIN(printTables)
