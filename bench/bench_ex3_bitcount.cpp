/**
 * @file
 * EX3 + FIG11 — Example 3 (BITCOUNT1): explicit barrier
 * synchronization of four data-dependent inner loops.
 *
 * Series: cycles vs bit density and N, XIMD (4 streams + ALL-sync
 * barrier) against a serial VLIW (one element at a time, cost ~ sum
 * of loop lengths) and a lockstep VLIW (four elements bit-by-bit,
 * cost ~ max loop length but with an OR-reduction tax per bit).
 */

#include "bench_util.hh"

#include "core/vliw_machine.hh"
#include "core/ximd_machine.hh"
#include "support/random.hh"
#include "workloads/bitcount.hh"
#include "workloads/reference.hh"

namespace {

using namespace ximd;
using namespace ximd::bench;
using namespace ximd::workloads;

std::vector<Word>
makeData(std::size_t n, double density, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Word> data(n);
    for (auto &v : data) {
        v = 0;
        for (int bit = 0; bit < 24; ++bit)
            if (rng.chance(density))
                v |= 1u << bit;
    }
    return data;
}

template <typename M>
void
verify(M &m, const std::vector<Word> &data)
{
    const Word b0 = m.program().symbolOrDie("B0");
    const auto expect = referenceBitcountCumulative(data);
    for (std::size_t i = 0; i <= data.size(); ++i) {
        if (m.peekMem(b0 + static_cast<Addr>(i)) != expect[i]) {
            std::cerr << "bitcount mismatch at B[" << i << "]\n";
            std::exit(1);
        }
    }
}

void
printTables()
{
    std::cout << "# EX3/FIG11: BITCOUNT1 — barrier-synchronized "
                 "streams vs VLIW\n";

    section("density sweep (N = 64)");
    Table t({{"density", 9},
             {"XIMD", 8},
             {"VLIW-serial", 13},
             {"VLIW-lockstep", 15},
             {"vs serial", 11},
             {"vs lockstep", 13},
             {"busy-wait", 11}});
    t.header();
    for (double density : {0.1, 0.3, 0.5, 0.8}) {
        const auto data = makeData(64, density, 11);
        XimdMachine x(bitcountXimd(data));
        VliwMachine s(bitcountVliwSerial(data));
        VliwMachine l(bitcountVliwLockstep(data));
        x.run();
        s.run();
        l.run();
        verify(x, data);
        verify(s, data);
        verify(l, data);
        t.row({fixed(density, 1), num(x.cycle()), num(s.cycle()),
               num(l.cycle()),
               ratio(double(s.cycle()) / double(x.cycle())),
               ratio(double(l.cycle()) / double(x.cycle())),
               num(x.stats().busyWaitCycles())});
    }

    section("size sweep (density 0.5)");
    Table t2({{"N", 7},
              {"XIMD", 8},
              {"VLIW-serial", 13},
              {"VLIW-lockstep", 15},
              {"vs serial", 11},
              {"vs lockstep", 13}});
    t2.header();
    for (std::size_t n : {16u, 64u, 256u, 1024u}) {
        const auto data = makeData(n, 0.5, n);
        XimdMachine x(bitcountXimd(data));
        VliwMachine s(bitcountVliwSerial(data));
        VliwMachine l(bitcountVliwLockstep(data));
        x.run();
        s.run();
        l.run();
        verify(x, data);
        t2.row({num(n), num(x.cycle()), num(s.cycle()), num(l.cycle()),
                ratio(double(s.cycle()) / double(x.cycle())),
                ratio(double(l.cycle()) / double(x.cycle()))});
    }

    section("skew sensitivity (N = 64: one heavy element per group)");
    Table t3({{"pattern", 22},
              {"XIMD", 8},
              {"VLIW-serial", 13},
              {"vs serial", 11}});
    t3.header();
    for (const auto &[name, heavyBits, lightBits] :
         {std::tuple{"uniform light (4b)", 4, 4},
          std::tuple{"1 heavy (24b) + 3x4b", 24, 4},
          std::tuple{"uniform heavy (24b)", 24, 24}}) {
        Rng rng(3);
        std::vector<Word> data(64);
        for (std::size_t i = 0; i < data.size(); ++i) {
            const int bits = (i % 4 == 0) ? heavyBits : lightBits;
            Word v = 0;
            for (int b = 0; b < bits; ++b)
                v |= 1u << rng.range(0, 23);
            data[i] = v;
        }
        XimdMachine x(bitcountXimd(data));
        VliwMachine s(bitcountVliwSerial(data));
        x.run();
        s.run();
        verify(x, data);
        t3.row({name, num(x.cycle()), num(s.cycle()),
                ratio(double(s.cycle()) / double(x.cycle()))});
    }
    std::cout << "shape: the XIMD group costs the *longest* inner "
                 "loop (threads wait at\nthe barrier), the serial "
                 "VLIW costs the *sum*; the gap narrows when one\n"
                 "element per group dominates.\n";

    section("FIG11 control structure (N = 16, density 0.5)");
    {
        const auto data = makeData(16, 0.5, 5);
        XimdMachine x(bitcountXimd(data));
        x.run();
        std::cout << "partition histogram (streams -> cycles):\n";
        for (const auto &[streams, cycles] :
             x.stats().partitionHistogram())
            std::cout << "  " << streams << " -> " << cycles << "\n";
        std::cout << "mean streams: "
                  << fixed(x.stats().meanStreams(), 2)
                  << "  (Figure 11: fork into 4 threads at the first "
                     "data-dependent branch,\n   join at the 4-way "
                     "barrier)\n";
    }
}

void
simulateBitcount(benchmark::State &state, Backend backend)
{
    const auto data = makeData(static_cast<std::size_t>(state.range(0)),
                               0.5, 1);
    const auto prog = PreparedProgram::make(bitcountXimd(data));
    const MachineConfig cfg = MachineConfig{}.withBackend(backend);
    Cycle cycles = 0;
    for (auto _ : state) {
        XimdMachine m(prog, cfg);
        m.run();
        cycles += m.cycle();
    }
    state.counters["machine_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(simulateBitcount, interp, Backend::Interp)
    ->Arg(64)->Arg(1024)->ArgName("N");
BENCHMARK_CAPTURE(simulateBitcount, threaded, Backend::Threaded)
    ->Arg(64)->Arg(1024)->ArgName("N");

} // namespace

XIMD_BENCH_MAIN(printTables)
