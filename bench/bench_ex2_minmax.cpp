/**
 * @file
 * EX2 — Example 2 (MINMAX) and its generalization.
 *
 * "Each iteration of this loop contains two critical conditional
 * branches which can be performed in parallel. A VLIW processor can
 * generally only perform one control operation at a time. XIMD can
 * perform both control operations in parallel."
 *
 * Series 1: MINMAX cycles/element, XIMD vs VLIW, over N.
 * Series 2: S simultaneous data-dependent searches — the XIMD
 * iteration cost stays flat while the VLIW cost grows ~2 cycles per
 * extra branch.
 */

#include "bench_util.hh"

#include "core/vliw_machine.hh"
#include "core/ximd_machine.hh"
#include "support/random.hh"
#include "workloads/minmax.hh"
#include "workloads/reference.hh"

namespace {

using namespace ximd;
using namespace ximd::bench;
using namespace ximd::workloads;

std::vector<SWord>
makeData(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<SWord> data(n);
    for (auto &v : data)
        v = static_cast<SWord>(rng.range(0, 100000));
    return data;
}

void
printTables()
{
    std::cout << "# EX2: parallel conditional updates — XIMD vs "
                 "VLIW\n";

    section("MINMAX (two data-dependent branches per element)");
    Table t({{"N", 8},
             {"XIMD cyc", 10},
             {"VLIW cyc", 10},
             {"XIMD c/el", 11},
             {"VLIW c/el", 11},
             {"speedup", 9}});
    t.header();
    for (std::size_t n : {16u, 64u, 256u, 1024u, 4096u}) {
        const auto data = makeData(n, n);
        const auto [lo, hi] = referenceMinmax(data);

        XimdMachine x(minmaxXimd(data));
        VliwMachine v(minmaxVliw(data));
        x.run();
        v.run();
        if (wordToInt(x.readRegByName("min")) != lo ||
            wordToInt(x.readRegByName("max")) != hi ||
            wordToInt(v.readRegByName("min")) != lo ||
            wordToInt(v.readRegByName("max")) != hi)
            std::exit(1);

        t.row({num(n), num(x.cycle()), num(v.cycle()),
               fixed(double(x.cycle()) / double(n), 2),
               fixed(double(v.cycle()) / double(n), 2),
               ratio(double(v.cycle()) / double(x.cycle()))});
    }
    std::cout << "shape: XIMD 3 cycles/element vs VLIW 5 — the two "
                 "update branches\nresolve in one XIMD cycle.\n";

    section("S concurrent searches (branches per element = S)");
    Table t2({{"S", 5},
              {"FUs", 6},
              {"XIMD cyc", 10},
              {"VLIW cyc", 10},
              {"XIMD c/el", 11},
              {"VLIW c/el", 11},
              {"speedup", 9}});
    t2.header();
    const auto data = makeData(512, 99);
    for (unsigned s = 1; s <= kMaxSearches; ++s) {
        XimdMachine x(multiSearchXimd(s, data));
        VliwMachine v(multiSearchVliw(s, data));
        x.run();
        v.run();
        const auto expect = referenceMultiSearch(s, data);
        for (unsigned i = 0; i < s; ++i) {
            const auto name = "c" + std::to_string(i);
            if (x.readRegByName(name) != expect[i] ||
                v.readRegByName(name) != expect[i])
                std::exit(1);
        }
        t2.row({num(s), num(s + 2), num(x.cycle()), num(v.cycle()),
                fixed(double(x.cycle()) / 512.0, 2),
                fixed(double(v.cycle()) / 512.0, 2),
                ratio(double(v.cycle()) / double(x.cycle()))});
    }
    std::cout << "shape: XIMD cost flat at 6 cycles/element for any "
                 "S; VLIW grows\n2S+4 — control parallelism scales "
                 "with the number of streams.\n";
}

void
simulateMinmax(benchmark::State &state, Backend backend)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto data = makeData(n, 7);
    const auto prog = PreparedProgram::make(minmaxXimd(data));
    const MachineConfig cfg = MachineConfig{}.withBackend(backend);
    Cycle cycles = 0;
    for (auto _ : state) {
        XimdMachine m(prog, cfg);
        m.run();
        cycles += m.cycle();
    }
    state.counters["machine_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(simulateMinmax, interp, Backend::Interp)
    ->Arg(256)->Arg(4096)->ArgName("N");
BENCHMARK_CAPTURE(simulateMinmax, threaded, Backend::Threaded)
    ->Arg(256)->Arg(4096)->ArgName("N");

} // namespace

XIMD_BENCH_MAIN(printTables)
