/**
 * @file
 * FRONTEND_COMPILE — host-side cost of the C frontend and the
 * register allocator over the Livermore kernels (examples/c/*.c).
 * Stages priced separately: lex+parse+lower (frontend proper),
 * direct allocation, spilling linear scan into a tight window, and
 * the full xcc --input=c path through scheduling and codegen. The
 * reproduction table reports each kernel's IR shape and how hard the
 * allocator has to work at paper-plausible window sizes.
 */

#include "bench_util.hh"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "frontend/frontend.hh"
#include "sched/pipeline.hh"
#include "sched/regalloc.hh"

#ifndef XIMD_SOURCE_DIR
#error "XIMD_SOURCE_DIR must point at the repo root"
#endif

namespace {

using namespace ximd;
using namespace ximd::bench;
using namespace ximd::sched;

const char *const kKernels[] = {"livermore1", "livermore2",
                                "livermore3", "livermore12"};

std::string
kernelSource(const std::string &name)
{
    const std::string path =
        std::string(XIMD_SOURCE_DIR) + "/examples/c/" + name + ".c";
    std::ifstream in(path);
    if (!in.good()) {
        std::cerr << "missing " << path << "\n";
        std::exit(1);
    }
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

IrProgram
lowerOrDie(const std::string &name)
{
    auto r = frontend::compileC(kernelSource(name));
    if (!r.hasValue()) {
        std::cerr << r.error().format() << "\n";
        std::exit(1);
    }
    return std::move(r).value();
}

void
printTables()
{
    std::cout << "# FRONTEND_COMPILE: C frontend + register "
                 "allocator over the Livermore kernels\n";

    section("IR shape and allocation pressure per kernel");
    Table t({{"kernel", 12},
             {"vregs", 7},
             {"blocks", 7},
             {"ops", 6},
             {"peak", 6},
             {"regs@direct", 12},
             {"spill@6", 9}});
    t.header();
    for (const char *name : kKernels) {
        IrProgram ir = lowerOrDie(name);
        std::size_t ops = 0;
        for (const auto &blk : ir.blocks)
            ops += blk.ops.size();
        const Liveness lv = computeLiveness(ir);

        IrProgram direct = ir;
        auto d = allocateRegisters(direct, {});
        IrProgram tight = ir;
        auto s = allocateRegisters(
            tight, {.window = {0, 6}, .spill = true});
        t.row({name, num(static_cast<std::uint64_t>(ir.numVregs)),
               num(ir.blocks.size()), num(ops),
               num(lv.peak.pressure),
               d.hasValue() ? num(d.value().regsUsed) : "-",
               s.hasValue() ? num(s.value().spilledVregs) : "-"});
    }
    std::cout << "shape: the kernels need ~a dozen registers direct; "
                 "a 6-register window\nforces a handful of spills, "
                 "all of which stay correct (test_regalloc).\n";
}

void
frontendLower(benchmark::State &state)
{
    const std::string src =
        kernelSource(kKernels[static_cast<std::size_t>(
            state.range(0))]);
    for (auto _ : state) {
        auto r = frontend::compileC(src);
        benchmark::DoNotOptimize(r.hasValue());
    }
}
BENCHMARK(frontendLower)->DenseRange(0, 3)->ArgName("kernel");

void
allocateDirect(benchmark::State &state)
{
    const IrProgram ir = lowerOrDie(
        kKernels[static_cast<std::size_t>(state.range(0))]);
    for (auto _ : state) {
        IrProgram copy = ir;
        auto r = allocateRegisters(copy, {});
        benchmark::DoNotOptimize(r.hasValue());
    }
}
BENCHMARK(allocateDirect)->DenseRange(0, 3)->ArgName("kernel");

void
allocateSpill(benchmark::State &state)
{
    const IrProgram ir = lowerOrDie(
        kKernels[static_cast<std::size_t>(state.range(0))]);
    for (auto _ : state) {
        IrProgram copy = ir;
        auto r = allocateRegisters(
            copy, {.window = {0, 6}, .spill = true});
        benchmark::DoNotOptimize(r.hasValue());
    }
}
BENCHMARK(allocateSpill)->DenseRange(0, 3)->ArgName("kernel");

void
fullCompile(benchmark::State &state)
{
    const std::string src =
        kernelSource(kKernels[static_cast<std::size_t>(
            state.range(0))]);
    PipelineOptions po;
    po.width = 4;
    for (auto _ : state) {
        auto ir = frontend::compileC(src);
        Compiler cc(po);
        auto r = cc.compile(std::move(ir).value());
        benchmark::DoNotOptimize(r.hasValue());
    }
}
BENCHMARK(fullCompile)->DenseRange(0, 3)->ArgName("kernel");

} // namespace

XIMD_BENCH_MAIN(printTables)
