/**
 * @file
 * FIG12 — multiple non-blocking synchronizations (section 3.4).
 *
 * Two processes exchange three values each through I/O ports with
 * compiler-invisible timing. Sweeps the arrival skew between the two
 * ports and reports, per synchronization style:
 *   total    — cycle every FU halted (bounded by the last arrival);
 *   P1 done  — cycle process 1's outputs (a,b,c -> OUTB) completed,
 *              the latency the non-blocking scheme optimizes;
 *   polls    — empty port reads (busy-poll overhead).
 */

#include "bench_util.hh"

#include "core/ximd_machine.hh"
#include "workloads/nonblocking.hh"

namespace {

using namespace ximd;
using namespace ximd::bench;
using namespace ximd::workloads;

struct Outcome
{
    Cycle total = 0;
    Cycle p1done = 0;
    std::uint64_t polls = 0;
};

Outcome
runVariant(Program prog, const std::vector<Cycle> &arrA,
           const std::vector<Cycle> &arrB)
{
    XimdMachine m(std::move(prog));
    ScriptedInputPort inA("INA"), inB("INB");
    OutputPort outA("OUTA"), outB("OUTB");
    for (unsigned i = 0; i < kNonblockingValues; ++i) {
        inA.schedule(arrA[i], 11 + i);
        inB.schedule(arrB[i], 21 + i);
    }
    const auto &p = m.program();
    m.attachDevice(p.symbolOrDie("INA"), p.symbolOrDie("INA"), &inA);
    m.attachDevice(p.symbolOrDie("INB"), p.symbolOrDie("INB"), &inB);
    m.attachDevice(p.symbolOrDie("OUTA"), p.symbolOrDie("OUTA"),
                   &outA);
    m.attachDevice(p.symbolOrDie("OUTB"), p.symbolOrDie("OUTB"),
                   &outB);
    const RunResult r = m.run(1'000'000);
    if (!r.ok() || outB.records().size() != 3 ||
        outA.records().size() != 3) {
        std::cerr << "fig12 variant failed\n";
        std::exit(1);
    }
    // Data integrity.
    for (unsigned i = 0; i < 3; ++i)
        if (outB.records()[i].value != 11 + i ||
            outA.records()[i].value != 21 + i)
            std::exit(1);
    return {r.cycles, outB.records().back().cycle,
            inA.emptyPolls() + inB.emptyPolls()};
}

void
printTables()
{
    std::cout << "# FIG12: two processes, multiple non-blocking "
                 "synchronizations\n\n"
              << "Process 1 reads a,b,c from INA; process 2 reads "
                 "x,y,z from INB;\neach writes the other's values "
                 "out. Sweep: process 2's port is\ndelayed by an "
                 "increasing skew.\n";

    section("skew sweep (INA at 0/6/12; INB delayed by skew)");
    Table t({{"skew", 7},
             {"sync total", 12},
             {"sync P1done", 13},
             {"barr total", 12},
             {"barr P1done", 13},
             {"mflag total", 13},
             {"mflag P1done", 14}});
    t.header();
    for (Cycle skew : {0u, 8u, 32u, 128u, 512u}) {
        const std::vector<Cycle> arrA = {0, 6, 12};
        const std::vector<Cycle> arrB = {skew, skew + 6, skew + 12};
        const Outcome nb =
            runVariant(nonblockingXimd(), arrA, arrB);
        const Outcome ls = runVariant(lockstepBarrier(), arrA, arrB);
        const Outcome mf = runVariant(memoryFlagXimd(), arrA, arrB);
        t.row({num(skew), num(nb.total), num(nb.p1done),
               num(ls.total), num(ls.p1done), num(mf.total),
               num(mf.p1done)});
    }
    std::cout << "\nshape: P1's output latency is flat for the "
                 "non-blocking scheme but\ntracks the skew under "
                 "lock-step barriers (P1 is blocked behind\nprocess "
                 "2's late values).\n";

    section("handoff mechanism cost (both ports immediate)");
    Table t2({{"style", 22}, {"total", 8}, {"empty polls", 13}});
    t2.header();
    const std::vector<Cycle> zero = {0, 0, 0};
    const Outcome nb = runVariant(nonblockingXimd(), zero, zero);
    const Outcome ls = runVariant(lockstepBarrier(), zero, zero);
    const Outcome mf = runVariant(memoryFlagXimd(), zero, zero);
    t2.row({"sync bits (paper)", num(nb.total), num(nb.polls)});
    t2.row({"lock-step barriers", num(ls.total), num(ls.polls)});
    t2.row({"memory flags", num(mf.total), num(mf.polls)});
    std::cout << "\nshape: sync-bit tests cost 1 cycle; memory-flag "
                 "polls cost a\n3-cycle load/compare/branch loop per "
                 "check (section 3.4: using SS\nbits 'will result in "
                 "increased performance').\n";
}

void
simulateNonblocking(benchmark::State &state)
{
    Cycle cycles = 0;
    for (auto _ : state) {
        const Outcome o = runVariant(nonblockingXimd(), {0, 6, 12},
                                     {32, 38, 44});
        cycles += o.total;
    }
    state.counters["machine_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(simulateNonblocking);

} // namespace

XIMD_BENCH_MAIN(printTables)
