/**
 * @file
 * EX1 — Example 1 (TPROC): a Percolation-Scheduling compiler's scalar
 * schedule executing VLIW-style. Regenerates the schedule table and
 * confirms the paper's point that VLIW-style code runs identically on
 * the XIMD ("This VLIW style program can then execute just as
 * efficiently on the XIMD as on a VLIW machine").
 */

#include "bench_util.hh"

#include "core/vliw_machine.hh"
#include "core/ximd_machine.hh"
#include "isa/disasm.hh"
#include "sched/codegen.hh"
#include "workloads/kernels.hh"
#include "workloads/reference.hh"

namespace {

using namespace ximd;
using namespace ximd::bench;

/** TPROC in compiler IR, for the our-compiler-vs-paper comparison. */
sched::IrProgram
tprocIr(SWord a, SWord b, SWord c, SWord d)
{
    using namespace sched;
    IrBuilder bl;
    auto A = IrValue::immInt(a), B = IrValue::immInt(b),
         C = IrValue::immInt(c), D = IrValue::immInt(d);
    bl.startBlock("entry");
    IrValue e = bl.emit(Opcode::Iadd, A, B);
    IrValue f = bl.emit(Opcode::Imult, C, A);
    f = bl.emit(Opcode::Iadd, f, e);
    IrValue g = bl.emit(Opcode::Iadd, C, B);
    g = bl.emit(Opcode::Isub, A, g);
    e = bl.emit(Opcode::Isub, D, e);
    IrValue r = bl.emit(Opcode::Iadd, A, B);
    r = bl.emit(Opcode::Iadd, r, C);
    r = bl.emit(Opcode::Iadd, r, D);
    r = bl.emit(Opcode::Iadd, r, e);
    IrValue fg = bl.emit(Opcode::Iadd, f, g);
    r = bl.emit(Opcode::Iadd, r, fg);
    bl.emitStore(r, IrValue::immInt(100));
    bl.halt();
    return bl.finish();
}

void
printTables()
{
    std::cout << "# EX1: TPROC (Example 1) — scalar code, "
                 "VLIW-style execution\n";

    const SWord a = 3, b = -4, c = 7, d = 11;
    Program prog = workloads::tprocPaper(a, b, c, d);
    std::cout << "\npaper schedule (4 FUs):\n"
              << formatProgram(prog) << "\n";

    XimdMachine x(workloads::tprocPaper(a, b, c, d));
    VliwMachine v(workloads::tprocPaper(a, b, c, d));
    x.run();
    v.run();

    Table t({{"machine", 10},
             {"cycles", 8},
             {"data ops", 10},
             {"util", 8},
             {"result", 9}});
    t.header();
    t.row({"XIMD", num(x.cycle()), num(x.stats().dataOps()),
           fixed(x.stats().utilization() * 100, 1) + "%",
           std::to_string(wordToInt(x.readRegByName("f")))});
    t.row({"VLIW", num(v.cycle()), num(v.stats().dataOps()),
           fixed(v.stats().utilization() * 100, 1) + "%",
           std::to_string(wordToInt(v.readRegByName("f")))});
    std::cout << "reference result: "
              << workloads::referenceTproc(a, b, c, d) << "\n";
    if (x.cycle() != v.cycle() ||
        wordToInt(x.readRegByName("f")) !=
            workloads::referenceTproc(a, b, c, d)) {
        std::cout << "MISMATCH\n";
        std::exit(1);
    }
    std::cout << "XIMD == VLIW cycle-for-cycle: OK\n";

    // How does our own list scheduler compare with the paper's
    // Percolation Scheduling result (5 rows on 4 FUs)?
    section("our list-scheduled compile of TPROC vs the paper");
    Table t2({{"width", 7}, {"rows", 7}, {"cycles", 9}});
    t2.header();
    for (FuId w : {1u, 2u, 4u, 8u}) {
        auto code = orDie(sched::generateCodeChecked(
            tprocIr(a, b, c, d), {.width = w}));
        XimdMachine m(code.program);
        m.run();
        if (static_cast<SWord>(wordToInt(m.peekMem(100))) !=
            workloads::referenceTproc(a, b, c, d))
            std::exit(1);
        t2.row({num(w), num(code.program.size()), num(m.cycle())});
    }
    std::cout << "(paper's Percolation Scheduling compiler: 5 rows "
                 "at width 4)\n";
}

void
simulateTproc(benchmark::State &state)
{
    Program prog = workloads::tprocPaper(1, 2, 3, 4);
    Cycle cycles = 0;
    for (auto _ : state) {
        XimdMachine m(prog);
        m.run();
        benchmark::DoNotOptimize(m.readReg(0));
        cycles += m.cycle();
    }
    state.counters["machine_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(simulateTproc);

void
compileTproc(benchmark::State &state)
{
    const auto ir = tprocIr(1, 2, 3, 4);
    for (auto _ : state) {
        auto code = orDie(sched::generateCodeChecked(
            ir, {.width = static_cast<FuId>(state.range(0))}));
        benchmark::DoNotOptimize(code.program.size());
    }
}
BENCHMARK(compileTproc)->Arg(2)->Arg(8)->ArgName("width");

} // namespace

XIMD_BENCH_MAIN(printTables)
