/**
 * @file
 * SCHED_COMPILE — host-side cost of the compiler itself, per pipeline
 * stage. The pass pipeline (sched/pipeline.hh) times every pass; this
 * bench is the regression currency for those numbers: list scheduling
 * and codegen for a single thread, modulo scheduling a counted loop,
 * and the full Figure-13 tile/pack/compose path, plus the textual-IR
 * round trip the xcc driver sits on.
 */

#include "bench_util.hh"

#include "sched/ir_print.hh"
#include "sched/pipeline.hh"
#include "workloads/ir_threads.hh"

namespace {

using namespace ximd;
using namespace ximd::bench;
using namespace ximd::sched;

IrProgram
reduceIr()
{
    Rng rng(101);
    return workloads::reductionThread(0, 8, 3, rng);
}

void
printTables()
{
    std::cout << "# SCHED_COMPILE: per-pass wall time of the "
                 "compiler pipeline\n";

    section("pass breakdown, 6-thread compose at width 8");
    PipelineOptions po;
    po.verify = true;
    Compiler cc(po);
    auto r = cc.compose(workloads::reductionThreadSet(6, 42),
                        "balanced-groups");
    if (!r.hasValue()) {
        std::cerr << r.error().format() << "\n";
        std::exit(1);
    }
    Table t({{"pass", 10}, {"wall ms", 10}, {"rows", 7}});
    t.header();
    for (const PassStat &s : cc.stats()) {
        const auto rows = s.counters.find("rows");
        t.row({s.pass, fixed(s.wallMs, 3),
               rows == s.counters.end()
                   ? "-"
                   : num(static_cast<std::uint64_t>(rows->second))});
    }
    std::cout << "shape: compose dominates; every stage is well under "
                 "a millisecond for\npaper-sized threads.\n";
}

void
compileBlockPath(benchmark::State &state)
{
    const IrProgram ir = reduceIr();
    PipelineOptions po;
    po.width = static_cast<FuId>(state.range(0));
    for (auto _ : state) {
        Compiler cc(po);
        auto r = cc.compile(ir);
        benchmark::DoNotOptimize(r.hasValue());
    }
}
BENCHMARK(compileBlockPath)->Arg(1)->Arg(4)->Arg(8)->ArgName("width");

void
compileModuloLoop(benchmark::State &state)
{
    const PipelineLoop loop = workloads::loop12Pipeline(100, 64, 512);
    for (auto _ : state) {
        Compiler cc;
        auto r = cc.compileLoop(loop);
        benchmark::DoNotOptimize(r.hasValue());
    }
}
BENCHMARK(compileModuloLoop);

void
compileComposePath(benchmark::State &state)
{
    const auto threads = workloads::reductionThreadSet(
        static_cast<int>(state.range(0)), 42);
    for (auto _ : state) {
        Compiler cc;
        auto r = cc.compose(threads, "balanced-groups");
        benchmark::DoNotOptimize(r.hasValue());
    }
}
BENCHMARK(compileComposePath)->Arg(2)->Arg(6)->ArgName("threads");

void
irTextRoundTrip(benchmark::State &state)
{
    const std::string text = printIr(reduceIr());
    for (auto _ : state) {
        auto p = parseIr(text);
        benchmark::DoNotOptimize(p.hasValue());
    }
}
BENCHMARK(irTextRoundTrip);

} // namespace

XIMD_BENCH_MAIN(printTables)
