/**
 * @file
 * Figure 12: two concurrent processes exchanging six values through
 * multiple non-blocking synchronizations on the sync-signal bus,
 * compared against a lock-step barrier version and a memory-flag
 * version — under several I/O arrival patterns.
 */

#include <iostream>

#include "core/machine.hh"
#include "support/str.hh"
#include "workloads/nonblocking.hh"

namespace {

using namespace ximd;
using namespace ximd::workloads;

struct VariantResult
{
    Cycle total;    ///< All FUs halted.
    Cycle outBDone; ///< P1's data fully written to OUTB.
};

VariantResult
runVariant(Program prog, const std::vector<Cycle> &arrA,
           const std::vector<Cycle> &arrB)
{
    Machine m(std::move(prog), MachineConfig::ximd());
    ScriptedInputPort inA("INA"), inB("INB");
    OutputPort outA("OUTA"), outB("OUTB");
    for (unsigned i = 0; i < kNonblockingValues; ++i) {
        inA.schedule(arrA[i], 11 + i); // a, b, c
        inB.schedule(arrB[i], 21 + i); // x, y, z
    }
    const auto &p = m.program();
    m.attachDevice(p.symbolOrDie("INA"), p.symbolOrDie("INA"), &inA);
    m.attachDevice(p.symbolOrDie("INB"), p.symbolOrDie("INB"), &inB);
    m.attachDevice(p.symbolOrDie("OUTA"), p.symbolOrDie("OUTA"),
                   &outA);
    m.attachDevice(p.symbolOrDie("OUTB"), p.symbolOrDie("OUTB"),
                   &outB);
    const RunResult r = m.run(1'000'000);
    if (!r.ok() || outA.records().size() != 3 ||
        outB.records().size() != 3) {
        std::cerr << "variant failed: " << r.faultMessage << "\n";
        std::exit(1);
    }
    return {r.cycles, outB.records().back().cycle};
}

} // namespace

int
main()
{
    struct Scenario
    {
        const char *name;
        std::vector<Cycle> arrA, arrB;
    };
    const Scenario scenarios[] = {
        {"immediate (all at cycle 0)", {0, 0, 0}, {0, 0, 0}},
        {"uniform spacing", {10, 20, 30}, {10, 20, 30}},
        {"B very late", {0, 5, 10}, {100, 105, 110}},
        {"interleaved skew", {5, 60, 65}, {50, 55, 120}},
    };

    std::cout << "Figure 12 workload. 'total' = every FU halted "
                 "(bounded by the last\nport arrival in every "
                 "variant); 'P1 out' = cycle the a,b,c data\n"
                 "finished appearing on OUTB — where non-blocking "
                 "synchronization shines\nwhen the other process is "
                 "slow.\n\n";
    std::cout << padRight("arrival pattern", 28);
    for (const char *col :
         {"sync total", "sync P1out", "barr total", "barr P1out",
          "mflg total", "mflg P1out"})
        std::cout << padLeft(col, 11);
    std::cout << "\n";

    for (const Scenario &s : scenarios) {
        const auto nb = runVariant(nonblockingXimd(), s.arrA, s.arrB);
        const auto ls = runVariant(lockstepBarrier(), s.arrA, s.arrB);
        const auto mf = runVariant(memoryFlagXimd(), s.arrA, s.arrB);
        std::cout << padRight(s.name, 28);
        for (Cycle c : {nb.total, nb.outBDone, ls.total, ls.outBDone,
                        mf.total, mf.outBDone})
            std::cout << padLeft(std::to_string(c), 11);
        std::cout << "\n";
    }

    std::cout << "\nSection 3.4's claims, visible above: (1) with "
                 "'B very late', the\nnon-blocking version drains "
                 "P1's outputs while process 2 is still\nwaiting for "
                 "x — the barrier version blocks them behind the "
                 "stage-0\nbarrier; (2) sync-bit tests (1 cycle) beat "
                 "memory flags (3-cycle\npoll loops) across the "
                 "board.\n";
    return 0;
}
