/**
 * @file
 * Example 3 (BITCOUNT1): four data-dependent inner loops running as
 * four concurrent instruction streams, joined by an explicit ALL-sync
 * barrier — against two VLIW executions of the same computation.
 */

#include <iostream>

#include "core/machine.hh"
#include "support/random.hh"
#include "support/str.hh"
#include "workloads/bitcount.hh"
#include "workloads/reference.hh"

int
main()
{
    using namespace ximd;
    using namespace ximd::workloads;

    // 32 elements with mixed bit densities so the four inner loops
    // have very different trip counts.
    Rng rng(7);
    std::vector<Word> data(32);
    for (std::size_t i = 0; i < data.size(); ++i) {
        const int bits = static_cast<int>(rng.range(0, 20));
        Word v = 0;
        for (int b = 0; b < bits; ++b)
            v |= 1u << rng.range(0, 19);
        data[i] = v;
    }

    Machine ximd(bitcountXimd(data), MachineConfig::ximd());
    Machine serial(bitcountVliwSerial(data), MachineConfig::vliw());
    Machine lockstep(bitcountVliwLockstep(data), MachineConfig::vliw());

    const RunResult rx = ximd.run();
    const RunResult rs = serial.run();
    const RunResult rl = lockstep.run();

    // Verify all three against the reference.
    const auto expect = referenceBitcountCumulative(data);
    const Word b0 = ximd.program().symbolOrDie("B0");
    for (std::size_t i = 0; i <= data.size(); ++i) {
        if (ximd.peekMem(b0 + i) != expect[i] ||
            serial.peekMem(b0 + i) != expect[i] ||
            lockstep.peekMem(b0 + i) != expect[i]) {
            std::cerr << "MISMATCH at B[" << i << "]\n";
            return 1;
        }
    }

    std::cout << "BITCOUNT over " << data.size()
              << " elements (cumulative popcount sums verified)\n\n";
    std::cout << padRight("machine", 26) << padLeft("cycles", 8)
              << padLeft("vs XIMD", 9) << "\n";
    auto line = [&](const char *name, Cycle c) {
        std::cout << padRight(name, 26) << padLeft(std::to_string(c), 8)
                  << padLeft(fixed(double(c) / double(rx.cycles), 2) +
                                 "x",
                             9)
                  << "\n";
    };
    line("XIMD (4 streams+barrier)", rx.cycles);
    line("VLIW serial (1 elem)", rs.cycles);
    line("VLIW lockstep (4 elems)", rl.cycles);

    std::cout << "\nXIMD partition histogram (streams -> cycles):\n";
    for (const auto &[streams, cycles] :
         ximd.stats().partitionHistogram())
        std::cout << "  " << streams << " -> " << cycles << "\n";
    std::cout << "busy-wait FU-cycles at the barrier: "
              << ximd.stats().busyWaitCycles() << "\n";
    return 0;
}
