/**
 * @file
 * Static verification demo: run the analysis pipeline over the
 * shipped "bad corpus" (examples/programs/deadlock.ximd and
 * cc_race.ximd) and over a known-good program, printing every
 * diagnostic the verifier produces.
 *
 * This is the library-level counterpart of the `ximd-lint` tool: it
 * calls analysis::analyze() directly on assembled Programs, which is
 * the same entry point the schedulers use (via analysis::debugVerify)
 * to self-check their emitted code.
 *
 * The programs directory is baked in at build time; pass a different
 * one as argv[1] to lint your own corpus layout.
 */

#include <iostream>
#include <string>

#include "analysis/verify.hh"
#include "asm/assembler.hh"
#include "support/logging.hh"

#ifndef XIMD_PROGRAMS_DIR
#define XIMD_PROGRAMS_DIR "examples/programs"
#endif

int
main(int argc, char **argv)
{
    using namespace ximd;

    const std::string dir = argc > 1 ? argv[1] : XIMD_PROGRAMS_DIR;
    const struct
    {
        const char *file;
        bool expectErrors;
    } corpus[] = {
        {"minmax.ximd", false},
        {"deadlock.ximd", true},
        {"cc_race.ximd", true},
    };

    bool allAsExpected = true;
    for (const auto &entry : corpus) {
        const std::string path = dir + "/" + entry.file;
        std::cout << "=== " << path << " ===\n";

        Program prog(1);
        try {
            prog = assembleFile(path);
        } catch (const FatalError &e) {
            std::cout << "assembly failed: " << e.what() << "\n\n";
            allAsExpected = false;
            continue;
        }

        const analysis::DiagnosticList diags =
            analysis::analyze(prog);
        for (const auto &d : diags.all())
            std::cout << analysis::DiagnosticList::formatOne(d, &prog)
                      << "\n";
        std::cout << (diags.hasErrors() ? "REJECTED" : "clean")
                  << " (" << diags.errorCount() << " errors, "
                  << diags.warningCount() << " warnings); expected "
                  << (entry.expectErrors ? "errors" : "clean")
                  << "\n\n";

        if (diags.hasErrors() != entry.expectErrors)
            allAsExpected = false;
    }

    std::cout << (allAsExpected ? "verifier behaved as expected"
                                : "UNEXPECTED verifier behavior")
              << "\n";
    return allAsExpected ? 0 : 1;
}
