/**
 * @file
 * Quickstart: write a small XIMD program in the paper's listing
 * notation, assemble it, run it on the cycle-accurate simulator, and
 * inspect the results.
 *
 * The program computes, on two concurrent instruction streams, the
 * sum 1..n (FU0) and n! truncated to 32 bits (FU1), then joins at a
 * barrier. A VLIW cannot run these two data-dependent loops
 * concurrently; the XIMD splits into the partition {0}{1} and joins
 * back to {0,1}.
 */

#include <iostream>

#include "asm/assembler.hh"
#include "core/machine.hh"
#include "isa/disasm.hh"

int
main()
{
    using namespace ximd;

    const char *source = R"(
        .fus 2
        .reg i          // FU0 loop counter
        .reg sum
        .reg j          // FU1 loop counter
        .reg fact
        .reg n
        .init n 10
        .init fact 1

        // Fork: both FUs start at address 0 and immediately become
        // independent streams (distinct branch conditions below).
        start:  -> sum0 ; iadd #0,#0,i   ||  -> fac0 ; iadd #1,#0,j
        sum0:   -> sum1 ; iadd i,#1,i    ||  halt    ; nop
        sum1:   -> sum2 ; iadd sum,i,sum ||  halt    ; nop
        sum2:   -> sum3 ; eq i,n         ||  halt    ; nop
        sum3:   if cc0 join sum0 ; nop   ||  halt    ; nop
        fac0:   halt ; nop               ||  -> fac1 ; imult fact,j,fact
        fac1:   halt ; nop               ||  -> fac2 ; iadd j,#1,j
        fac2:   halt ; nop               ||  -> fac3 ; le j,n
        fac3:   halt ; nop               ||  if cc1 fac0 join ; nop
        // Barrier: wait until every FU signals DONE, then stop.
        join:   if all done join ; nop ; done || if all done join ; nop ; done
        done:   halt ; store sum,#64     ||  halt ; store fact,#65
    )";

    Program prog = assembleString(source);

    std::cout << "=== Assembled program ===\n"
              << formatProgram(prog) << "\n";

    Machine machine(prog, MachineConfig::ximd().withTrace());
    const RunResult result = machine.run();

    std::cout << "=== Execution ===\n";
    std::cout << "stopped: "
              << (result.ok() ? "halted normally" : "abnormal")
              << " after " << result.cycles << " cycles\n";
    std::cout << "sum(1..10)  = " << machine.peekMem(64) << "\n";
    std::cout << "10!         = " << machine.peekMem(65) << "\n\n";

    std::cout << "=== Statistics ===\n"
              << machine.stats().formatted() << "\n";

    std::cout << "=== Address trace (paper Figure 10 format) ===\n"
              << machine.trace().formatted();
    return 0;
}
