/**
 * @file
 * Reproduce the paper's Figure 10: the cycle-by-cycle address trace of
 * the MINMAX program (Example 2) on the sample data IZ() = (5,3,4,7).
 *
 * MINMAX searches an array for its minimum and maximum concurrently.
 * Each loop iteration contains two data-dependent conditional
 * branches; the XIMD executes both in one cycle by forking into the
 * partition {0,1}{2}{3} and joining one cycle later.
 */

#include <iostream>

#include "core/machine.hh"
#include "workloads/kernels.hh"

int
main()
{
    using namespace ximd;

    // terminate=false keeps the paper's implicit "Continue." at
    // address 0a:, so the trace matches Figure 10 address-for-address.
    Machine machine(workloads::minmaxPaper(/*terminate=*/false),
                    MachineConfig::ximd().withTrace());
    for (int i = 0; i < 14; ++i)
        machine.step();

    std::cout << "MINMAX on IZ() = (5, 3, 4, 7)  [paper Figure 10]\n\n"
              << machine.trace().formatted() << "\n";

    std::cout << "min = " << wordToInt(machine.readRegByName("min"))
              << "  (paper: 3)\n";
    std::cout << "max = " << wordToInt(machine.readRegByName("max"))
              << "  (paper: 7)\n\n";

    std::cout << "Partition histogram (streams -> cycles):\n";
    for (const auto &[streams, cycles] :
         machine.stats().partitionHistogram())
        std::cout << "  " << streams << " -> " << cycles << "\n";
    std::cout << "\nThe three-stream cycles (3, 6, 9, 12) are the "
                 "fork cycles where the\nmin-update and max-update "
                 "branches resolve independently.\n";
    return 0;
}
