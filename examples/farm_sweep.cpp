/**
 * @file
 * Batch simulation with the farm: expand a sweep over the paper's
 * section 4.1 workloads, execute it on a worker pool, and print the
 * per-job table plus the merged statistics.
 *
 * The same sweep runs twice — once serially, once on four workers —
 * and the untimed reports are compared byte-for-byte to demonstrate
 * the engine's determinism guarantee: a job's outcome is a pure
 * function of its RunSpec, never of thread scheduling.
 */

#include <iostream>

#include "farm/farm.hh"
#include "farm/sweep.hh"
#include "support/str.hh"

int
main()
{
    using namespace ximd;

    // A sweep document, exactly as xfarm --sweep would read from disk.
    // minmax and bitcount in both modes, the Figure 12 non-blocking
    // workload over three I/O-arrival seeds.
    const char *sweep = R"({
        "defaults": {"n": 64, "seed": 1},
        "runs": [
            {"workload": "minmax", "mode": ["ximd", "vliw"]},
            {"workload": "bitcount", "mode": ["ximd", "vliw"]},
            {"workload": "nonblocking", "seed": [1, 2, 3]}
        ]
    })";

    auto specs = farm::parseSweep(sweep);
    if (!specs.hasValue()) {
        std::cerr << specs.error().message << "\n";
        return 1;
    }

    const farm::BatchResult batch = Farm::run(specs.value(), 4);

    std::cout << "=== Jobs (" << batch.jobs.size() << " specs, "
              << batch.threads << " threads) ===\n";
    for (const farm::JobResult &j : batch.jobs)
        std::cout << (j.ok() ? "ok   " : "FAIL ")
                  << padRight(j.name, 34)
                  << padLeft(std::to_string(j.run.cycles), 8)
                  << " cycles\n";
    if (!batch.allOk())
        return 1;

    const RunStats merged = batch.merged();
    std::cout << "\n=== Merged statistics ===\n"
              << "total cycles:    " << merged.cycles() << "\n"
              << "mean streams:    " << fixed(merged.meanStreams(), 2)
              << "\n";

    // Determinism: rerun serially; the untimed report must match.
    const farm::BatchResult serial = Farm::run(specs.value(), 1);
    std::cout << "\nserial rerun report identical: "
              << (serial.json(false) == batch.json(false) ? "yes"
                                                          : "NO")
              << "\n";
    return serial.json(false) == batch.json(false) ? 0 : 1;
}
