/**
 * @file
 * The Figure 13 compilation flow, end to end:
 *
 *   1. describe several program threads in the compiler IR;
 *   2. compile each at widths 1..8 and keep the Pareto tiles;
 *   3. pack the tiles into the instruction-memory strip with several
 *      strategies (static code density, the figure's objective);
 *   4. compose a laminar packing into one runnable XIMD program and
 *      execute it — concurrent column groups become concurrent SSETs.
 */

#include <iostream>

#include "core/machine.hh"
#include "sched/compose.hh"
#include "support/random.hh"
#include "support/str.hh"

namespace {

using namespace ximd;
using namespace ximd::sched;

/** A small reduction thread: out = sum of scaled inputs. */
IrProgram
makeThread(int t, unsigned n, SWord mult, Rng &rng)
{
    const Addr in = 1024 + static_cast<Addr>(t) * 64;
    const Addr out = 2048 + static_cast<Addr>(t);

    IrBuilder b;
    const VregId i = b.newVreg();
    const VregId sum = b.newVreg();
    b.setInit(i, 0);
    b.setInit(sum, 0);
    for (unsigned k = 1; k <= n; ++k)
        b.setMemInit(in + k,
                     static_cast<Word>(rng.range(0, 99)));
    b.startBlock("loop");
    b.emitTo(i, Opcode::Iadd, IrValue::reg(i), IrValue::immInt(1));
    const IrValue v = b.emitLoad(IrValue::immRaw(in), IrValue::reg(i));
    const IrValue s = b.emit(Opcode::Imult, v, IrValue::immInt(mult));
    b.emitTo(sum, Opcode::Iadd, IrValue::reg(sum), s);
    const int cmp = b.emitCompare(
        Opcode::Eq, IrValue::reg(i),
        IrValue::immInt(static_cast<SWord>(n)));
    b.branch(cmp, "end", "loop");
    b.startBlock("end");
    b.emitStore(IrValue::reg(sum), IrValue::immRaw(out));
    b.halt();
    return b.finish();
}

} // namespace

int
main()
{
    constexpr FuId kWidth = 8;
    Rng rng(42);

    std::vector<IrProgram> threads;
    for (int t = 0; t < 6; ++t)
        threads.push_back(makeThread(
            t, static_cast<unsigned>(rng.range(4, 16)),
            static_cast<SWord>(rng.range(1, 7)), rng));

    // Step 2: tiles.
    auto tiles = generateTiles(threads, kWidth);
    std::cout << "=== Tile sets (width x static rows) ===\n";
    for (const TileSet &set : tiles) {
        std::cout << "thread " << set.threadId << ":";
        for (const Tile &t : set.impls)
            std::cout << "  " << unsigned(t.width) << "x" << t.height;
        std::cout << "\n";
    }

    // Step 3: packing strategies (Figure 13's open question).
    std::cout << "\n=== Packing (static code size, strip width "
              << unsigned(kWidth) << ") ===\n";
    std::cout << padRight("strategy", 26) << padLeft("rows", 6)
              << padLeft("utilization", 13) << "\n";
    PackResult chosen;
    for (auto pack : {packStacked, packFirstFit, packSkyline,
                      packBalancedGroups}) {
        PackResult r = pack(tiles, kWidth);
        validatePacking(r, tiles, kWidth);
        std::cout << padRight(r.strategy, 26)
                  << padLeft(std::to_string(r.totalHeight), 6)
                  << padLeft(fixed(r.utilization(kWidth) * 100, 1) +
                                 "%",
                             13)
                  << "\n";
        if (r.strategy == "balanced-groups")
            chosen = r;
    }

    // Step 4: compose the laminar packing and run it.
    Composed comp = composeThreads(threads, chosen, kWidth);
    std::cout << "\n=== Composed program ("
              << comp.program.size() << " rows) ===\n";
    for (const ComposedThread &t : comp.threads)
        std::cout << "thread " << t.threadId << ": columns "
                  << unsigned(t.col) << ".."
                  << unsigned(t.col + t.width - 1) << ", body rows "
                  << t.bodyStart << ".."
                  << t.bodyStart + t.bodyRows - 1 << "\n";

    Machine m(comp.program,
              MachineConfig::ximd().withMemWords(4096));
    const RunResult r = m.run(1'000'000);
    std::cout << "\nrun: " << (r.ok() ? "ok" : r.faultMessage)
              << ", " << r.cycles << " cycles, mean streams "
              << fixed(m.stats().meanStreams(), 2) << "\n";
    for (int t = 0; t < 6; ++t)
        std::cout << "thread " << t << " result: "
                  << m.peekMem(2048 + static_cast<Addr>(t)) << "\n";
    return 0;
}
