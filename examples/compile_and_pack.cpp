/**
 * @file
 * The Figure 13 compilation flow, end to end, on the pass pipeline:
 *
 *   1. describe several program threads in the compiler IR
 *      (workloads::reductionThreadSet);
 *   2. compile each at widths 1..8 and keep the Pareto tiles;
 *   3. pack the tiles into the instruction-memory strip with several
 *      strategies (static code density, the figure's objective);
 *   4. compose a laminar packing into one runnable XIMD program via
 *      the Compiler facade — whose per-pass stats show where the
 *      compile time went — and execute it.
 */

#include <iostream>

#include "core/machine.hh"
#include "sched/pipeline.hh"
#include "support/str.hh"
#include "workloads/ir_threads.hh"

using namespace ximd;
using namespace ximd::sched;

int
main()
{
    constexpr FuId kWidth = 8;
    const auto threads = workloads::reductionThreadSet(6, 42);

    // Step 2: tiles.
    auto tiles = generateTiles(threads, kWidth);
    std::cout << "=== Tile sets (width x static rows) ===\n";
    for (const TileSet &set : tiles) {
        std::cout << "thread " << set.threadId << ":";
        for (const Tile &t : set.impls)
            std::cout << "  " << unsigned(t.width) << "x" << t.height;
        std::cout << "\n";
    }

    // Step 3: packing strategies (Figure 13's open question).
    std::cout << "\n=== Packing (static code size, strip width "
              << unsigned(kWidth) << ") ===\n";
    std::cout << padRight("strategy", 26) << padLeft("rows", 6)
              << padLeft("utilization", 13) << "\n";
    for (const char *name :
         {"stacked", "first-fit", "skyline", "balanced-groups"}) {
        PackResult r = packStrategyByName(name)(tiles, kWidth);
        if (auto v = validatePackingChecked(r, tiles, kWidth); !v) {
            std::cerr << v.error().format() << "\n";
            return 1;
        }
        std::cout << padRight(r.strategy, 26)
                  << padLeft(std::to_string(r.totalHeight), 6)
                  << padLeft(fixed(r.utilization(kWidth) * 100, 1) +
                                 "%",
                             13)
                  << "\n";
    }

    // Step 4: the pipeline compiles the laminar packing into one
    // program (tile -> pack -> compose -> verify).
    PipelineOptions po;
    po.width = kWidth;
    po.verify = true;
    Compiler cc(po);
    auto composed = cc.compose(threads, "balanced-groups");
    if (!composed.hasValue()) {
        std::cerr << composed.error().format() << "\n";
        return 1;
    }
    const Composed &comp = composed.value();

    std::cout << "\n=== Composed program (" << comp.program.size()
              << " rows) ===\n";
    for (const ComposedThread &t : comp.threads)
        std::cout << "thread " << t.threadId << ": columns "
                  << unsigned(t.col) << ".."
                  << unsigned(t.col + t.width - 1) << ", body rows "
                  << t.bodyStart << ".."
                  << t.bodyStart + t.bodyRows - 1 << "\n";

    std::cout << "\n=== Per-pass stats ===\n";
    for (const PassStat &s : cc.stats())
        std::cout << padRight(s.pass, 12)
                  << padLeft(fixed(s.wallMs, 3) + " ms", 12) << "\n";

    Machine m(comp.program,
              MachineConfig::ximd().withMemWords(4096));
    const RunResult r = m.run(1'000'000);
    std::cout << "\nrun: " << (r.ok() ? "ok" : r.faultMessage)
              << ", " << r.cycles << " cycles, mean streams "
              << fixed(m.stats().meanStreams(), 2) << "\n";
    for (int t = 0; t < 6; ++t)
        std::cout << "thread " << t << " result: "
                  << m.peekMem(2048 + static_cast<Addr>(t)) << "\n";
    return 0;
}
