// Livermore loop 3: inner product.
//   q += z[k] * x[k]
int n = 64;
float q = 0.0;
float x[64];
float z[64];

int k;
for (k = 0; k < n; k = k + 1) {
    x[k] = 0.5 + k * 0.25;
    z[k] = 1.0 + k * 0.125;
}

for (k = 0; k < n; k = k + 1) {
    q = q + z[k] * x[k];
}

// Park the reduction where the harness can read it back.
float result[1];
result[0] = q;
