// Livermore loop 2: ICCG excerpt (incomplete Cholesky, conjugate
// gradient). The original do-while over a halving stride is
// restructured as a while with an inner for; n must be a power of
// two so the pointer arithmetic telescopes to 2n-1.
int n = 64;
float x[128];
float v[128];

int k;
for (k = 0; k < 2 * n; k = k + 1) {
    x[k] = 0.25 + k * 0.0625;
    v[k] = 1.0 + k * 0.03125;
}

int ii = n;
int ipntp = 0;
int ipnt;
int i;
while (ii > 0) {
    ipnt = ipntp;
    ipntp = ipntp + ii;
    ii = ii / 2;
    i = ipntp - 1;
    for (k = ipnt + 1; k < ipntp; k = k + 2) {
        i = i + 1;
        x[i] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1];
    }
}
