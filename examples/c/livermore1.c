// Livermore loop 1: hydro fragment.
//   x[k] = q + y[k] * (r*z[k+10] + t*z[k+11])
// Inputs are filled by a deterministic seeding loop so the kernel is
// self-contained (the simulator starts from zeroed memory).
int n = 64;
float q = 0.5;
float r = 2.0;
float t = 0.25;
float x[64];
float y[64];
float z[128];

int k;
for (k = 0; k < n; k = k + 1) {
    y[k] = 1.0 + k * 0.5;
}
for (k = 0; k < n + 11; k = k + 1) {
    z[k] = 2.0 + k * 0.25;
}

for (k = 0; k < n; k = k + 1) {
    x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
}
