// Livermore loop 12: first difference.
//   x[k] = y[k+1] - y[k]
int n = 64;
float x[64];
float y[65];

int k;
for (k = 0; k < n + 1; k = k + 1) {
    y[k] = 1.0 + k * k * 0.5;
}

for (k = 0; k < n; k = k + 1) {
    x[k] = y[k + 1] - y[k];
}
