/**
 * @file
 * Dynamic cross-validation of the static race engine.
 *
 * The engine's soundness contract: on an unperturbed run, every
 * same-cycle cross-stream conflict the RaceObserver records must
 * appear in the static report — either as a diagnostic or as a
 * covered (proven-benign) pair. This suite drives the contract over
 * the built-in workload grid and a slice of the random-program corpus
 * in both sequencing modes.
 */

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/race.hh"
#include "core/machine.hh"
#include "core/race_observer.hh"
#include "farm/suite.hh"
#include "workloads/randprog.hh"

namespace ximd {
namespace {

/** True when @p e matches @p p in either site order. */
bool
sameSites(const RaceObserver::Event &e, const analysis::SitePair &p)
{
    const bool fwd = p.rowA == e.rowA &&
                     p.fuA == static_cast<int>(e.fuA) &&
                     p.rowB == e.rowB &&
                     p.fuB == static_cast<int>(e.fuB);
    const bool rev = p.rowA == e.rowB &&
                     p.fuA == static_cast<int>(e.fuB) &&
                     p.rowB == e.rowA &&
                     p.fuB == static_cast<int>(e.fuA);
    return fwd || rev;
}

/** True when @p e matches a reported diagnostic's two sites. */
bool
matchesDiag(const RaceObserver::Event &e,
            const analysis::Diagnostic &d)
{
    if (d.otherRow < 0)
        return false;
    analysis::SitePair p;
    p.rowA = d.row;
    p.fuA = d.fu;
    p.rowB = static_cast<InstAddr>(d.otherRow);
    p.fuB = d.otherFu;
    return sameSites(e, p);
}

/**
 * Run @p machine with a RaceObserver attached and assert every event
 * is accounted for by @p report.
 */
void
checkRun(Machine &machine, const analysis::RaceReport &report,
         const std::string &label)
{
    RaceObserver obs(machine.program());
    machine.addObserver(&obs);
    machine.run(2'000'000);
    for (const RaceObserver::Event &e : obs.events()) {
        bool matched = false;
        for (const analysis::SitePair &p : report.covered)
            if (sameSites(e, p)) {
                matched = true;
                break;
            }
        if (!matched)
            for (const analysis::Diagnostic &d : report.diags.all())
                if (matchesDiag(e, d)) {
                    matched = true;
                    break;
                }
        EXPECT_TRUE(matched)
            << label << ": dynamic conflict escaped the static "
            << "report: " << e.toString();
    }
}

TEST(RaceCorpus, WorkloadGridEventsAreStaticallyAccounted)
{
    for (const farm::RunSpec &spec : farm::builtinSuite()) {
        if (spec.loadError)
            continue;
        ASSERT_TRUE(spec.program);
        const analysis::RaceReport report =
            analysis::analyzeRaces(spec.program->program());
        EXPECT_TRUE(report.clean()) << spec.name;

        Machine machine(spec.program, spec.config);
        std::unique_ptr<farm::JobFixture> fixture;
        if (spec.fixture) {
            fixture = spec.fixture(spec);
            if (fixture)
                fixture->setUp(machine);
        }
        checkRun(machine, report, spec.name);
    }
}

TEST(RaceCorpus, RandprogEventsAreStaticallyAccounted)
{
    // Lockstep programs have a single class: the observer's
    // same-row/same-ctrl exclusion makes events impossible, which is
    // exactly what "one class, nothing to race" predicts.
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        workloads::RandProgOptions o;
        o.seed = seed;
        o.width = 1 + seed % 8;
        o.rows = 20 + seed % 60;
        o.branchPercent = 10 + seed % 40;
        const Program prog = workloads::randomLockstepProgram(o);
        const analysis::RaceReport report =
            analysis::analyzeRaces(prog);
        EXPECT_TRUE(report.clean()) << "seed " << seed;

        for (const Mode mode : {Mode::Ximd, Mode::Vliw}) {
            Machine machine(Program(prog),
                            MachineConfig{}.withMode(mode));
            checkRun(machine, report,
                     "seed " + std::to_string(seed) +
                         (mode == Mode::Vliw ? "/vliw" : "/ximd"));
        }
    }
}

} // namespace
} // namespace ximd
