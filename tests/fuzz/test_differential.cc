/**
 * @file
 * Differential fuzzing: XIMD (one stream per FU, all identical) vs
 * VLIW (one shared stream) over seeded random lockstep programs.
 *
 * workloads::randomLockstepProgram() emits programs in which every FU
 * carries the same control operation on every row, so the two
 * sequencing disciplines must produce the same trajectory: same cycle
 * count, same final registers, memory and condition codes. Each seed
 * is a self-contained reproducer; when a seed fails, its assembly is
 * dumped to tests/fuzz/corpus/seed<N>.ximd so the discrepancy can be
 * replayed with `xsim` / `vsim` directly.
 */

#include <fstream>

#include <gtest/gtest.h>

#include "analysis/verify.hh"
#include "core/machine.hh"
#include "workloads/randprog.hh"

#ifndef XIMD_SOURCE_DIR
#error "XIMD_SOURCE_DIR must point at the repo root"
#endif

namespace ximd::workloads {
namespace {

void
dumpReproducer(const RandProgOptions &opts, const std::string &why)
{
    const std::string path = std::string(XIMD_SOURCE_DIR) +
                             "/tests/fuzz/corpus/seed" +
                             std::to_string(opts.seed) + ".ximd";
    std::ofstream out(path);
    out << "; differential fuzz reproducer\n"
        << "; seed=" << opts.seed << " width=" << opts.width
        << " rows=" << opts.rows << "\n; failure: " << why << "\n"
        << randomLockstepSource(opts);
    ADD_FAILURE() << why << " (reproducer written to " << path << ")";
}

struct Final
{
    Cycle cycles = 0;
    std::uint64_t archHash = 0;
    bool halted = false;
};

Final
runMode(const Program &prog, Mode mode)
{
    Machine m(prog, MachineConfig{}.withMode(mode));
    const RunResult run = m.run(100'000);
    return {m.cycle(), m.archStateHash(),
            run.reason == StopReason::Halted};
}

RandProgOptions
optionsFor(std::uint64_t seed)
{
    RandProgOptions o;
    o.seed = seed;
    o.width = 1 + seed % 8;
    o.rows = 20 + seed % 60;
    o.branchPercent = 10 + seed % 40;
    return o;
}

TEST(DifferentialFuzz, XimdMatchesVliwOnLockstepPrograms)
{
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        const RandProgOptions opts = optionsFor(seed);
        const Program prog = randomLockstepProgram(opts);

        // Generator invariant: everything it emits lints clean.
        try {
            analysis::verify(prog);
        } catch (const FatalError &e) {
            dumpReproducer(opts,
                           std::string("lint rejected: ") + e.what());
            continue;
        }

        const Final x = runMode(prog, Mode::Ximd);
        const Final v = runMode(prog, Mode::Vliw);
        if (!x.halted || !v.halted) {
            dumpReproducer(opts, "did not halt");
            continue;
        }
        if (x.cycles != v.cycles || x.archHash != v.archHash) {
            dumpReproducer(
                opts, "ximd/vliw diverged: cycles " +
                          std::to_string(x.cycles) + " vs " +
                          std::to_string(v.cycles) + ", arch hash " +
                          std::to_string(x.archHash) + " vs " +
                          std::to_string(v.archHash));
        }
    }
}

TEST(DifferentialFuzz, GeneratorIsDeterministic)
{
    const RandProgOptions opts = optionsFor(42);
    EXPECT_EQ(randomLockstepSource(opts),
              randomLockstepSource(opts));
}

TEST(DifferentialFuzz, SeedsProduceDistinctPrograms)
{
    EXPECT_NE(randomLockstepSource(optionsFor(1)),
              randomLockstepSource(optionsFor(2)));
}

} // namespace
} // namespace ximd::workloads
