/**
 * @file
 * Differential testing: interpreter vs threaded-code backend.
 *
 * The threaded backend is a performance refactor, not a semantic one:
 * for every program, mode, and cycle budget it must reproduce the
 * interpreter's architectural trajectory exactly. Three angles pin
 * that:
 *
 *  - the section 4.1 workload grid (TPROC, MINMAX, BITCOUNT1, Loop
 *    12), both sequencing modes where each applies, run to completion
 *    under both backends and compared on cycles, final architectural
 *    hash, and full statistics;
 *  - 50 seeded random lockstep programs, stepped under both backends
 *    with randomized cut points — the machines pause at the same
 *    (randomly drawn) cycle boundaries and must agree on
 *    archStateHash at every cut, which catches block-boundary bugs a
 *    run-to-completion comparison would mask;
 *  - busy-wait fast-forward under an observer that caps skips via
 *    nextWake(): the threaded backend must honor the cap and remain
 *    indistinguishable from the interpreter.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/observer.hh"
#include "support/random.hh"
#include "workloads/kernels.hh"
#include "workloads/randprog.hh"

namespace {

using namespace ximd;

MachineConfig
configFor(Mode mode, Backend backend)
{
    return MachineConfig{}.withMode(mode).withBackend(backend);
}

/** Fingerprint of everything the two backends must agree on. */
std::string
finalFingerprint(Machine &m, const RunResult &run)
{
    std::string s;
    s += "reason=" + std::to_string(static_cast<int>(run.reason));
    s += " cycles=" + std::to_string(run.cycles);
    s += " arch=" + std::to_string(m.archStateHash());
    s += "\n" + m.stats().formatted();
    s += "partition=" + m.partitions().formatted() + "\n";
    return s;
}

struct GridEntry
{
    const char *name;
    Program prog;
    std::vector<Mode> modes;
};

std::vector<GridEntry>
workloadGrid()
{
    std::vector<Word> bits(16);
    for (std::size_t i = 0; i < bits.size(); ++i)
        bits[i] = static_cast<Word>(0x5a5a0000u + i * 2654435761u);
    std::vector<float> y;
    for (int i = 0; i < 24; ++i)
        y.push_back(0.5f * static_cast<float>(i * i - 7));

    std::vector<GridEntry> grid;
    grid.push_back({"tproc", workloads::tprocPaper(11, -3, 5, 2),
                    {Mode::Ximd, Mode::Vliw}});
    grid.push_back({"minmax", workloads::minmaxPaper(true),
                    {Mode::Ximd, Mode::Vliw}});
    // BITCOUNT1 branches on sync signals, which the VLIW machine
    // rejects by construction — XIMD only.
    grid.push_back({"bitcount1", workloads::bitcount1Paper(bits),
                    {Mode::Ximd}});
    grid.push_back({"loop12", workloads::loop12Naive(y),
                    {Mode::Ximd, Mode::Vliw}});
    return grid;
}

TEST(BackendDifferential, WorkloadGridMatchesInterpreter)
{
    for (const GridEntry &entry : workloadGrid()) {
        for (Mode mode : entry.modes) {
            Machine interp(entry.prog,
                           configFor(mode, Backend::Interp));
            Machine threaded(entry.prog,
                             configFor(mode, Backend::Threaded));
            ASSERT_EQ(threaded.core().demotionReason(), "")
                << entry.name;
            const RunResult ri = interp.run(1'000'000);
            const RunResult rt = threaded.run(1'000'000);
            EXPECT_EQ(ri.reason, StopReason::Halted) << entry.name;
            EXPECT_EQ(finalFingerprint(interp, ri),
                      finalFingerprint(threaded, rt))
                << entry.name << "/" << modeName(mode);
        }
    }
}

/**
 * Step both backends through the same randomly drawn cycle budgets
 * and require identical architectural state at every cut point. The
 * cut schedule is a pure function of the seed, so failures replay.
 */
void
lockstepCompare(const Program &prog, Mode mode, std::uint64_t seed)
{
    Machine interp(prog, configFor(mode, Backend::Interp));
    Machine threaded(prog, configFor(mode, Backend::Threaded));
    ASSERT_EQ(threaded.core().demotionReason(), "");

    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    for (int cut = 0; cut < 200; ++cut) {
        const Cycle chunk = static_cast<Cycle>(rng.range(1, 37));
        const RunResult ri = interp.run(chunk);
        const RunResult rt = threaded.run(chunk);
        ASSERT_EQ(ri.reason, rt.reason)
            << "seed " << seed << " cut " << cut;
        ASSERT_EQ(interp.cycle(), threaded.cycle())
            << "seed " << seed << " cut " << cut;
        ASSERT_EQ(interp.archStateHash(), threaded.archStateHash())
            << "seed " << seed << " cut " << cut << " at cycle "
            << interp.cycle();
        if (ri.reason == StopReason::Halted)
            return;
        ASSERT_EQ(ri.reason, StopReason::MaxCycles)
            << "seed " << seed << ": " << ri.faultMessage;
    }
    FAIL() << "seed " << seed << " did not halt within the cut "
           << "schedule";
}

TEST(BackendDifferential, RandProgCutPointsXimd)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        workloads::RandProgOptions opts;
        opts.seed = seed;
        opts.width = 1 + seed % 8;
        opts.rows = 20 + seed % 60;
        opts.branchPercent = 10 + seed % 40;
        lockstepCompare(workloads::randomLockstepProgram(opts),
                        Mode::Ximd, seed);
    }
}

TEST(BackendDifferential, RandProgCutPointsVliw)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        workloads::RandProgOptions opts;
        opts.seed = seed;
        opts.width = 1 + (seed * 3) % 8;
        opts.rows = 20 + (seed * 7) % 60;
        opts.branchPercent = 10 + seed % 40;
        lockstepCompare(workloads::randomLockstepProgram(opts),
                        Mode::Vliw, seed);
    }
}

/**
 * Block observer that caps busy-wait fast-forward: wake at the next
 * multiple of `stride`. The threaded backend must stop its bulk skip
 * at the cap (DESIGN.md section 10's nextWake contract) and still be
 * observationally identical to the interpreter.
 */
class StrideWake : public CycleObserver
{
  public:
    explicit StrideWake(Cycle stride) : stride_(stride) {}
    const char *observerName() const override { return "stride"; }
    bool acceptsBlocks() const override { return true; }
    void onCycle(const MachineCore &core) override
    {
        (void)core;
        ++cycles;
    }
    void onBlock(const MachineCore &core,
                 const BlockStats &blk) override
    {
        (void)core;
        cycles += blk.cycles;
        ++blocks;
    }
    Cycle nextWake(const MachineCore &core) const override
    {
        return (core.cycle() / stride_ + 1) * stride_;
    }
    Cycle cycles = 0;
    unsigned blocks = 0;

  private:
    Cycle stride_ = 1;
};

TEST(BackendDifferential, FastForwardHonorsNextWakeCaps)
{
    // BITCOUNT1's barrier makes three FUs busy-wait on sync signals,
    // so both machines take the fast-forward path.
    std::vector<Word> bits(16, 0x0f0f0f0fu);
    const Program prog = workloads::bitcount1Paper(bits);

    StrideWake interpWake(7);
    Machine interp(prog, configFor(Mode::Ximd, Backend::Interp));
    interp.addObserver(&interpWake);

    StrideWake threadedWake(7);
    Machine threaded(prog, configFor(Mode::Ximd, Backend::Threaded));
    threaded.addObserver(&threadedWake);
    ASSERT_EQ(threaded.core().demotionReason(), "");

    const RunResult ri = interp.run(100'000);
    const RunResult rt = threaded.run(100'000);
    EXPECT_EQ(ri.reason, StopReason::Halted);
    EXPECT_EQ(finalFingerprint(interp, ri),
              finalFingerprint(threaded, rt));
    EXPECT_EQ(threadedWake.cycles, rt.cycles);
}

} // namespace
