#include "isa/disasm.hh"

#include <gtest/gtest.h>

namespace ximd {
namespace {

Program
sample()
{
    Program p(2);
    p.nameRegister("tz", 0);
    p.nameRegister("min", 1);
    InstRow r0;
    r0.push_back(Parcel(ControlOp::onCc(1, 1, 0),
                        DataOp::makeCompare(Opcode::Lt, Operand::reg(0),
                                            Operand::reg(1))));
    r0.push_back(Parcel(ControlOp::onCc(1, 1, 0), DataOp::nop(),
                        SyncVal::Done));
    p.addRow(r0);
    p.addUniformRow(Parcel(ControlOp::halt(), DataOp::nop()));
    p.setLabel("loop", 0);
    return p;
}

TEST(Disasm, OperandUsesRegisterNames)
{
    Program p = sample();
    EXPECT_EQ(formatOperand(p, Operand::reg(0)), "tz");
    EXPECT_EQ(formatOperand(p, Operand::reg(5)), "r5");
    EXPECT_EQ(formatOperand(p, Operand::immInt(-2)), "#-2");
}

TEST(Disasm, OperandNamesCanBeDisabled)
{
    Program p = sample();
    DisasmOptions opts;
    opts.useRegNames = false;
    EXPECT_EQ(formatOperand(p, Operand::reg(0), opts), "r0");
}

TEST(Disasm, DataOpWithNames)
{
    Program p = sample();
    EXPECT_EQ(formatDataOp(p, p.parcel(0, 0).data), "lt tz,min");
}

TEST(Disasm, ParcelIncludesSyncOnlyWhenDone)
{
    Program p = sample();
    EXPECT_EQ(formatParcel(p, p.parcel(0, 1)),
              "if cc1 01:|00: ; nop ; done");
    EXPECT_EQ(formatParcel(p, p.parcel(0, 0)),
              "if cc1 01:|00: ; lt tz,min");
}

TEST(Disasm, ProgramListingHasLabelsAndAddresses)
{
    Program p = sample();
    const std::string listing = formatProgram(p);
    EXPECT_NE(listing.find("loop:"), std::string::npos);
    EXPECT_NE(listing.find("00: "), std::string::npos);
    EXPECT_NE(listing.find("01: "), std::string::npos);
    EXPECT_NE(listing.find("||"), std::string::npos);
    EXPECT_NE(listing.find("lt tz,min"), std::string::npos);
}

TEST(Disasm, SyncColumnOmittedWhenAllBusy)
{
    Program p(1);
    p.addUniformRow(Parcel(ControlOp::halt(), DataOp::nop()));
    const std::string listing = formatProgram(p);
    EXPECT_EQ(listing.find("busy"), std::string::npos);
}

} // namespace
} // namespace ximd
