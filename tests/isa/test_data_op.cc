#include "isa/data_op.hh"

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace ximd {
namespace {

TEST(DataOp, NopByDefault)
{
    DataOp d;
    EXPECT_TRUE(d.isNop());
    EXPECT_FALSE(d.hasDest());
    EXPECT_EQ(d.toString(), "nop");
}

TEST(DataOp, BinaryFormatting)
{
    DataOp d = DataOp::make(Opcode::Iadd, Operand::reg(1),
                            Operand::immInt(4), 2);
    EXPECT_EQ(d.toString(), "iadd r1,#4,r2");
}

TEST(DataOp, UnaryFormatting)
{
    DataOp d = DataOp::makeUnary(Opcode::Not, Operand::reg(9), 10);
    EXPECT_EQ(d.toString(), "not r9,r10");
}

TEST(DataOp, CompareHasNoDest)
{
    DataOp d = DataOp::makeCompare(Opcode::Lt, Operand::reg(0),
                                   Operand::immInt(2));
    EXPECT_FALSE(d.hasDest());
    EXPECT_EQ(d.toString(), "lt r0,#2");
}

TEST(DataOp, LoadStoreFormatting)
{
    DataOp ld = DataOp::makeLoad(Operand::immInt(64), Operand::reg(5),
                                 7);
    EXPECT_EQ(ld.toString(), "load #64,r5,r7");
    DataOp st = DataOp::makeStore(Operand::reg(7), Operand::immInt(64));
    EXPECT_EQ(st.toString(), "store r7,#64");
}

TEST(DataOp, ValidateRejectsMissingSource)
{
    DataOp d;
    d.op = Opcode::Iadd;
    d.a = Operand::reg(1);
    // b missing
    EXPECT_THROW(d.validate(), FatalError);
}

TEST(DataOp, ValidateRejectsExtraSource)
{
    DataOp d;
    d.op = Opcode::Not;
    d.a = Operand::reg(1);
    d.b = Operand::reg(2); // not takes one source
    EXPECT_THROW(d.validate(), FatalError);
}

TEST(DataOp, ValidateRejectsSourceOnNop)
{
    DataOp d;
    d.op = Opcode::Nop;
    d.a = Operand::reg(1);
    EXPECT_THROW(d.validate(), FatalError);
}

TEST(DataOp, EqualityIgnoresDestOfDestlessOps)
{
    DataOp a = DataOp::makeCompare(Opcode::Eq, Operand::reg(1),
                                   Operand::reg(2));
    DataOp b = a;
    b.dest = 99; // meaningless field
    EXPECT_EQ(a, b);
}

TEST(DataOp, EqualityChecksDestWhenPresent)
{
    DataOp a = DataOp::make(Opcode::Iadd, Operand::reg(1),
                            Operand::reg(2), 3);
    DataOp b = DataOp::make(Opcode::Iadd, Operand::reg(1),
                            Operand::reg(2), 4);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace ximd
