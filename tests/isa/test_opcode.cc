#include "isa/opcode.hh"

#include <gtest/gtest.h>

namespace ximd {
namespace {

TEST(Opcode, EveryOpcodeHasNameAndParsesBack)
{
    const auto n = static_cast<std::size_t>(Opcode::NumOpcodes);
    for (std::size_t i = 0; i < n; ++i) {
        const auto op = static_cast<Opcode>(i);
        const auto name = opcodeName(op);
        EXPECT_FALSE(name.empty());
        auto parsed = parseOpcode(name);
        ASSERT_TRUE(parsed.has_value()) << name;
        EXPECT_EQ(*parsed, op);
    }
}

TEST(Opcode, ParseUnknownReturnsNullopt)
{
    EXPECT_FALSE(parseOpcode("frobnicate").has_value());
    EXPECT_FALSE(parseOpcode("").has_value());
    EXPECT_FALSE(parseOpcode("IADD").has_value()); // case sensitive
}

TEST(Opcode, PaperFigure7Instructions)
{
    // Figure 7 lists these explicitly.
    for (const char *name : {"iadd", "isub", "imult", "idiv", "load",
                             "store"})
        EXPECT_TRUE(parseOpcode(name).has_value()) << name;
}

TEST(Opcode, ComparesSetCondCode)
{
    EXPECT_TRUE(setsCondCode(Opcode::Eq));
    EXPECT_TRUE(setsCondCode(Opcode::Lt));
    EXPECT_TRUE(setsCondCode(Opcode::Fge));
    EXPECT_FALSE(setsCondCode(Opcode::Iadd));
    EXPECT_FALSE(setsCondCode(Opcode::Load));
    EXPECT_FALSE(setsCondCode(Opcode::Nop));
}

TEST(Opcode, MemOpsClassified)
{
    EXPECT_TRUE(isMemOp(Opcode::Load));
    EXPECT_TRUE(isMemOp(Opcode::Store));
    EXPECT_FALSE(isMemOp(Opcode::Iadd));
}

TEST(Opcode, FloatOpsClassified)
{
    EXPECT_TRUE(isFloatOp(Opcode::Fadd));
    EXPECT_TRUE(isFloatOp(Opcode::Flt));
    EXPECT_FALSE(isFloatOp(Opcode::Itof)); // convert class
    EXPECT_FALSE(isFloatOp(Opcode::Iadd));
}

TEST(Opcode, OperandCounts)
{
    EXPECT_EQ(opInfo(Opcode::Nop).numSrcs, 0);
    EXPECT_EQ(opInfo(Opcode::Not).numSrcs, 1);
    EXPECT_EQ(opInfo(Opcode::Iadd).numSrcs, 2);
    EXPECT_EQ(opInfo(Opcode::Store).numSrcs, 2);
    EXPECT_FALSE(opInfo(Opcode::Store).hasDest);
    EXPECT_TRUE(opInfo(Opcode::Load).hasDest);
    EXPECT_FALSE(opInfo(Opcode::Eq).hasDest);
}

TEST(Opcode, CompareClassSplitsIntFloat)
{
    EXPECT_EQ(opInfo(Opcode::Lt).cls, OpClass::IntCompare);
    EXPECT_EQ(opInfo(Opcode::Flt).cls, OpClass::FloatCompare);
}

} // namespace
} // namespace ximd
