#include "isa/operand.hh"

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace ximd {
namespace {

TEST(Operand, DefaultIsNone)
{
    Operand o;
    EXPECT_TRUE(o.isNone());
    EXPECT_FALSE(o.isReg());
    EXPECT_FALSE(o.isImm());
}

TEST(Operand, RegisterRoundTrip)
{
    Operand o = Operand::reg(17);
    EXPECT_TRUE(o.isReg());
    EXPECT_EQ(o.regId(), 17);
    EXPECT_EQ(o.toString(), "r17");
}

TEST(Operand, RegisterOutOfRangeThrows)
{
    EXPECT_THROW(Operand::reg(kNumRegisters), PanicError);
}

TEST(Operand, IntImmediate)
{
    Operand o = Operand::immInt(-3);
    EXPECT_TRUE(o.isImm());
    EXPECT_EQ(wordToInt(o.immValue()), -3);
    EXPECT_EQ(o.toString(), "#-3");
}

TEST(Operand, FloatImmediatePreservesBits)
{
    Operand o = Operand::immFloat(1.5f);
    EXPECT_TRUE(o.isImm());
    EXPECT_FLOAT_EQ(wordToFloat(o.immValue()), 1.5f);
    EXPECT_TRUE(o.isFloatHint());
    EXPECT_EQ(o.toString(), "#1.5");
}

TEST(Operand, WholeFloatGetsDecimalPoint)
{
    Operand o = Operand::immFloat(2.0f);
    EXPECT_EQ(o.toString(), "#2.0");
}

TEST(Operand, AccessorsGuardKind)
{
    EXPECT_THROW(Operand::immInt(1).regId(), PanicError);
    EXPECT_THROW(Operand::reg(0).immValue(), PanicError);
}

TEST(Operand, EqualityByKindAndValue)
{
    EXPECT_EQ(Operand::reg(3), Operand::reg(3));
    EXPECT_NE(Operand::reg(3), Operand::reg(4));
    EXPECT_NE(Operand::reg(3), Operand::immInt(3));
    EXPECT_EQ(Operand::immInt(5), Operand::imm(5));
    EXPECT_EQ(Operand::none(), Operand{});
}

TEST(Operand, ConversionHelpersRoundTrip)
{
    EXPECT_EQ(wordToInt(intToWord(-123456)), -123456);
    EXPECT_FLOAT_EQ(wordToFloat(floatToWord(-0.25f)), -0.25f);
}

} // namespace
} // namespace ximd
