#include "isa/control_op.hh"

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace ximd {
namespace {

TEST(ControlOp, JumpNormalizesBothTargets)
{
    ControlOp c = ControlOp::jump(5);
    EXPECT_EQ(c.kind, CondKind::Always);
    EXPECT_EQ(c.t1, 5u);
    EXPECT_EQ(c.t2, 5u);
    EXPECT_FALSE(c.isConditional());
    EXPECT_FALSE(c.isHalt());
}

TEST(ControlOp, ConditionalKinds)
{
    EXPECT_TRUE(ControlOp::onCc(2, 8, 2).isConditional());
    EXPECT_TRUE(ControlOp::onSync(3, 1, 0).isConditional());
    EXPECT_TRUE(ControlOp::onAllSync(1, 0).isConditional());
    EXPECT_TRUE(ControlOp::onAnySync(1, 0).isConditional());
    EXPECT_FALSE(ControlOp::halt().isConditional());
    EXPECT_TRUE(ControlOp::halt().isHalt());
}

TEST(ControlOp, PaperStyleFormatting)
{
    EXPECT_EQ(ControlOp::jump(5).toString(), "-> 05:");
    EXPECT_EQ(ControlOp::onCc(2, 8, 2).toString(), "if cc2 08:|02:");
    EXPECT_EQ(ControlOp::onSync(0, 1, 0).toString(), "if ss0 01:|00:");
    EXPECT_EQ(ControlOp::onAllSync(17, 16).toString(),
              "if all 11:|10:");
    EXPECT_EQ(ControlOp::halt().toString(), "halt");
}

TEST(ControlOp, MaskedBarrierFormatting)
{
    ControlOp c = ControlOp::onAllSync(1, 0, 0b101u);
    EXPECT_EQ(c.toString(), "if all(0,2) 01:|00:");
}

TEST(ControlOp, IndexOutOfRangeThrows)
{
    EXPECT_THROW(ControlOp::onCc(kMaxFus, 0, 0), PanicError);
    EXPECT_THROW(ControlOp::onSync(kMaxFus, 0, 0), PanicError);
}

TEST(ControlOp, EmptyMaskThrows)
{
    EXPECT_THROW(ControlOp::onAllSync(0, 0, 0), PanicError);
    EXPECT_THROW(ControlOp::onAnySync(0, 0, 0), PanicError);
}

TEST(ControlOp, EqualityDistinguishesConditionSource)
{
    EXPECT_EQ(ControlOp::onCc(0, 4, 3), ControlOp::onCc(0, 4, 3));
    EXPECT_NE(ControlOp::onCc(0, 4, 3), ControlOp::onCc(1, 4, 3));
    EXPECT_NE(ControlOp::onCc(0, 4, 3), ControlOp::onSync(0, 4, 3));
    EXPECT_NE(ControlOp::onAllSync(4, 3), ControlOp::onAnySync(4, 3));
    EXPECT_NE(ControlOp::onAllSync(4, 3, 0b11),
              ControlOp::onAllSync(4, 3, 0b111));
    EXPECT_EQ(ControlOp::halt(), ControlOp::halt());
}

TEST(ControlOp, SyncValNames)
{
    EXPECT_EQ(syncValName(SyncVal::Busy), "BUSY");
    EXPECT_EQ(syncValName(SyncVal::Done), "DONE");
}

} // namespace
} // namespace ximd
