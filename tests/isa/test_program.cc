#include "isa/program.hh"

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace ximd {
namespace {

Parcel
haltParcel()
{
    return Parcel(ControlOp::halt(), DataOp::nop());
}

TEST(Program, WidthValidation)
{
    EXPECT_THROW(Program(0), FatalError);
    EXPECT_THROW(Program(kMaxFus + 1), FatalError);
    EXPECT_EQ(Program(4).width(), 4u);
    EXPECT_EQ(Program().width(), kDefaultFus);
}

TEST(Program, AddRowChecksWidth)
{
    Program p(4);
    EXPECT_THROW(p.addRow(InstRow(3, haltParcel())), FatalError);
    EXPECT_EQ(p.addRow(InstRow(4, haltParcel())), 0u);
    EXPECT_EQ(p.addRow(InstRow(4, haltParcel())), 1u);
    EXPECT_EQ(p.size(), 2u);
}

TEST(Program, UniformRowReplicates)
{
    Program p(4);
    p.addUniformRow(haltParcel());
    for (FuId fu = 0; fu < 4; ++fu)
        EXPECT_TRUE(p.parcel(0, fu).ctrl.isHalt());
}

TEST(Program, RowAccessOutOfRangeThrows)
{
    Program p(2);
    p.addUniformRow(haltParcel());
    EXPECT_THROW(p.row(1), FatalError);
    EXPECT_THROW(p.parcel(0, 2), FatalError);
}

TEST(Program, Labels)
{
    Program p(2);
    p.addUniformRow(haltParcel());
    p.setLabel("start", 0);
    EXPECT_EQ(p.label("start"), std::optional<InstAddr>(0));
    EXPECT_FALSE(p.label("missing").has_value());
    EXPECT_EQ(p.labelAt(0), std::optional<std::string>("start"));
    EXPECT_THROW(p.setLabel("start", 5), FatalError); // redefinition
    p.setLabel("alias", 0); // second label, same addr: first kept
    EXPECT_EQ(p.labelAt(0), std::optional<std::string>("start"));
}

TEST(Program, SymbolsAndRegisters)
{
    Program p(2);
    p.setSymbol("z", 64);
    EXPECT_EQ(p.symbol("z"), std::optional<Word>(64));
    EXPECT_EQ(p.symbolOrDie("z"), 64u);
    EXPECT_THROW(p.symbolOrDie("nope"), FatalError);

    p.nameRegister("min", 7);
    EXPECT_EQ(p.regByName("min"), std::optional<RegId>(7));
    EXPECT_EQ(p.regName(7), std::optional<std::string>("min"));
    EXPECT_FALSE(p.regByName("max").has_value());
}

TEST(Program, MemAndRegInitRecorded)
{
    Program p(2);
    p.addMemInit(100, 5);
    p.addMemInit(101, 6);
    p.addRegInit(3, 42);
    ASSERT_EQ(p.memInit().size(), 2u);
    EXPECT_EQ(p.memInit()[1].first, 101u);
    ASSERT_EQ(p.regInit().size(), 1u);
    EXPECT_EQ(p.regInit()[0].second, 42u);
    EXPECT_THROW(p.addRegInit(kNumRegisters, 0), FatalError);
}

TEST(Program, ValidateCatchesBadBranchTarget)
{
    Program p(2);
    Parcel bad(ControlOp::jump(5), DataOp::nop());
    p.addUniformRow(bad);
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Program, ValidateCatchesBadConditionalTarget)
{
    Program p(2);
    Parcel bad(ControlOp::onCc(0, 0, 9), DataOp::nop());
    p.addUniformRow(bad);
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Program, ValidateAcceptsWellFormed)
{
    Program p(2);
    p.addUniformRow(Parcel(ControlOp::jump(1), DataOp::nop()));
    p.addUniformRow(haltParcel());
    EXPECT_NO_THROW(p.validate());
}

} // namespace
} // namespace ximd
