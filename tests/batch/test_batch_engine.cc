/**
 * @file
 * Scalar-vs-batched parity: the batch engine's fidelity contract.
 *
 * Every test compares jobs run through batch::BatchEngine (via
 * farm::BatchRunner) against the same RunSpec through Farm::runOne —
 * archStateHash, cycle count, stop reason, fault message, and the
 * full RunStats JSON must match bit for bit. The lane-lifecycle
 * property test staggers per-job budgets so lanes retire and refill
 * at every interleaving the round-robin can produce.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "batch/batch_engine.hh"
#include "farm/batch_runner.hh"
#include "farm/farm.hh"
#include "farm/suite.hh"
#include "workloads/randprog.hh"

namespace ximd::farm {
namespace {

/** Everything a parity check compares. statsJson excludes backend. */
void
expectParity(const JobResult &scalar, const JobResult &batched,
             const std::string &context)
{
    EXPECT_EQ(scalar.ran, batched.ran) << context;
    if (!scalar.ran || !batched.ran) {
        // Construction failures must carry the same message.
        ASSERT_TRUE(scalar.error.has_value()) << context;
        ASSERT_TRUE(batched.error.has_value()) << context;
        EXPECT_EQ(scalar.error->message, batched.error->message)
            << context;
        return;
    }
    EXPECT_EQ(batched.backend, "batch") << context;
    EXPECT_EQ(scalar.run.reason, batched.run.reason) << context;
    EXPECT_EQ(scalar.run.cycles, batched.run.cycles) << context;
    EXPECT_EQ(scalar.run.faultMessage, batched.run.faultMessage)
        << context;
    EXPECT_EQ(scalar.archHash, batched.archHash) << context;
    // Rates depend only on counts and cycleNs, so comparing the
    // backend-less JSON compares every counter the run produced.
    EXPECT_EQ(scalar.stats.json(85.0), batched.stats.json(85.0))
        << context;
    EXPECT_EQ(scalar.error.has_value(), batched.error.has_value())
        << context;
    if (scalar.error && batched.error)
        EXPECT_EQ(scalar.error->message, batched.error->message)
            << context;
}

std::vector<RunSpec>
eligibleSuite(unsigned n)
{
    SuiteOptions so;
    so.n = n;
    std::vector<RunSpec> specs = builtinSuite(so);
    std::vector<RunSpec> kept;
    for (RunSpec &s : specs)
        if (!batchDemotionReason(s))
            kept.push_back(std::move(s));
    return kept;
}

TEST(BatchParity, SuiteMatchesScalarFarmAtEveryWidth)
{
    const std::vector<RunSpec> specs = eligibleSuite(64);
    ASSERT_FALSE(specs.empty());

    std::vector<JobResult> scalar;
    scalar.reserve(specs.size());
    for (const RunSpec &s : specs)
        scalar.push_back(Farm::runOne(s));

    for (unsigned width : {1u, 3u, 256u}) {
        const BatchResult batched =
            BatchRunner::run(specs, 1, width);
        ASSERT_EQ(batched.jobs.size(), specs.size());
        for (std::size_t i = 0; i < specs.size(); ++i)
            expectParity(scalar[i], batched.jobs[i],
                         specs[i].name + " width=" +
                             std::to_string(width));
    }
}

TEST(BatchParity, DemotedJobsStillRunScalar)
{
    // The full suite includes fixture jobs (devices, output checks);
    // BatchRunner must fall back to the scalar path for those and
    // still return every job, in order, all passing.
    std::vector<RunSpec> specs = builtinSuite();
    bool sawDemoted = false;
    for (const RunSpec &s : specs)
        sawDemoted |= batchDemotionReason(s) != nullptr;
    ASSERT_TRUE(sawDemoted);

    const BatchResult batched = BatchRunner::run(specs, 2, 64);
    ASSERT_EQ(batched.jobs.size(), specs.size());
    EXPECT_EQ(batched.failures(), 0u) << batched.json(false);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(batched.jobs[i].name, specs[i].name);
        if (batchDemotionReason(specs[i]))
            EXPECT_NE(batched.jobs[i].backend, "batch")
                << specs[i].name;
        else
            EXPECT_EQ(batched.jobs[i].backend, "batch")
                << specs[i].name;
    }
}

RunSpec
specFor(std::shared_ptr<const PreparedProgram> prog, Mode mode,
        Cycle maxCycles, const std::string &name)
{
    RunSpec s;
    s.name = name;
    s.program = std::move(prog);
    s.config =
        MachineConfig{}.withMode(mode).withMemWords(1u << 14);
    s.maxCycles = maxCycles;
    return s;
}

/**
 * The satellite lane-lifecycle property: randprog corpus x both
 * modes x staggered budgets through one shared engine. Unequal
 * budgets make lanes retire at different slices (MaxCycles early,
 * Halted late), so every refill interleaving the round-robin can
 * produce gets exercised, and each lane must still match its own
 * scalar run bit for bit.
 */
TEST(BatchParity, RetirementRefillPropertyOverRandprogCorpus)
{
    const Cycle budgets[] = {1, 7, 23, 117, 100'000};
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        workloads::RandProgOptions opts;
        opts.seed = seed;
        opts.width = 1 + seed % 8;
        opts.rows = 20 + seed % 60;
        opts.branchPercent = 10 + seed % 40;
        auto prepared = PreparedProgram::make(
            workloads::randomLockstepProgram(opts));

        for (Mode mode : {Mode::Ximd, Mode::Vliw}) {
            std::vector<RunSpec> specs;
            for (Cycle budget : budgets)
                specs.push_back(specFor(
                    prepared, mode, budget,
                    "randprog/seed=" + std::to_string(seed) +
                        "/mode=" +
                        std::to_string(mode == Mode::Vliw) +
                        "/budget=" + std::to_string(budget)));

            // Width 2 over 5 jobs forces retire-and-refill churn.
            const BatchResult batched =
                BatchRunner::run(specs, 1, 2);
            ASSERT_EQ(batched.jobs.size(), specs.size());
            for (std::size_t i = 0; i < specs.size(); ++i)
                expectParity(Farm::runOne(specs[i]),
                             batched.jobs[i], specs[i].name);
        }
    }
}

RunSpec
sourceSpec(const std::string &src, const std::string &name)
{
    RunSpec s;
    s.name = name;
    s.program = PreparedProgram::make(assembleString(src));
    s.config = MachineConfig{};
    s.maxCycles = 1000;
    return s;
}

TEST(BatchParity, FaultsMatchScalarMessages)
{
    const struct
    {
        const char *name;
        const char *src;
    } cases[] = {
        {"div-zero", ".fus 2\n.reg a 0\n.reg b 1\n"
                     "x: halt ; idiv a,b,a || halt ; nop\n"},
        {"reg-conflict",
         ".fus 2\n.reg a 0\n"
         "x: halt ; iadd #1,#2,a || halt ; iadd #3,#4,a\n"},
        {"mem-conflict",
         ".fus 2\n"
         "x: halt ; store #1,#40 || halt ; store #2,#40\n"},
        {"store-oor",
         ".fus 1\n"
         "x: halt ; store #1,#99999999\n"},
    };
    for (const auto &c : cases) {
        const RunSpec spec = sourceSpec(c.src, c.name);
        const BatchResult batched = BatchRunner::run({spec}, 1, 4);
        ASSERT_EQ(batched.jobs.size(), 1u);
        expectParity(Farm::runOne(spec), batched.jobs[0], c.name);
        EXPECT_EQ(batched.jobs[0].run.reason, StopReason::Fault)
            << c.name;
    }
}

TEST(BatchParity, VliwValidationRejectsLikeScalar)
{
    // Sync fields do not exist on a VLIW machine; the whole cohort
    // must fail construction with the scalar Machine's message.
    RunSpec spec = sourceSpec(
        ".fus 2\n"
        "a: -> b ; nop ; done || -> b ; nop\n"
        "b: halt ; nop || halt ; nop\n",
        "vliw-sync-reject");
    spec.config.mode = Mode::Vliw;
    const BatchResult batched = BatchRunner::run({spec}, 1, 4);
    ASSERT_EQ(batched.jobs.size(), 1u);
    expectParity(Farm::runOne(spec), batched.jobs[0],
                 "vliw-sync-reject");
    ASSERT_TRUE(batched.jobs[0].error.has_value());
    EXPECT_NE(batched.jobs[0].error->message.find(
                  "sync fields do not exist"),
              std::string::npos);
}

TEST(BatchParity, DemotionReasonsMirrorScalarRules)
{
    RunSpec s = eligibleSuite(16).front();
    EXPECT_EQ(batchDemotionReason(s), nullptr);

    RunSpec interp = s;
    interp.config.backend = Backend::Interp;
    EXPECT_NE(batchDemotionReason(interp), nullptr);

    RunSpec trace = s;
    trace.config.recordTrace = true;
    EXPECT_NE(batchDemotionReason(trace), nullptr);

    RunSpec latency = s;
    latency.config.resultLatency = 3;
    EXPECT_NE(batchDemotionReason(latency), nullptr);

    RunSpec regsync = s;
    regsync.config.registeredSync = true;
    EXPECT_NE(batchDemotionReason(regsync), nullptr);

    RunSpec resume = s;
    resume.resumeFrom = "whatever.snap";
    EXPECT_NE(batchDemotionReason(resume), nullptr);
}

} // namespace
} // namespace ximd::farm
