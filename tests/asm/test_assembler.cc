#include "asm/assembler.hh"

#include <gtest/gtest.h>

#include <fstream>

#include "isa/disasm.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "support/str.hh"

namespace ximd {
namespace {

TEST(Assembler, MinimalProgram)
{
    Program p = assembleString(".fus 2\nhalt || halt\n");
    EXPECT_EQ(p.width(), 2u);
    EXPECT_EQ(p.size(), 1u);
    EXPECT_TRUE(p.parcel(0, 0).ctrl.isHalt());
}

TEST(Assembler, MissingFusDirectiveFails)
{
    EXPECT_THROW(assembleString("halt || halt\n"), FatalError);
}

TEST(Assembler, WrongParcelCountFails)
{
    EXPECT_THROW(assembleString(".fus 3\nhalt || halt\n"), FatalError);
}

TEST(Assembler, LabelsResolveForwardAndBackward)
{
    Program p = assembleString(
        ".fus 1\n"
        "start: -> end ; nop\n"
        "-> start ; nop\n"
        "end: halt\n");
    EXPECT_EQ(p.label("start"), std::optional<InstAddr>(0));
    EXPECT_EQ(p.label("end"), std::optional<InstAddr>(2));
    EXPECT_EQ(p.parcel(0, 0).ctrl.t1, 2u);
    EXPECT_EQ(p.parcel(1, 0).ctrl.t1, 0u);
}

TEST(Assembler, LabelOnOwnLine)
{
    Program p = assembleString(
        ".fus 1\n"
        "loop:\n"
        "-> loop ; nop\n");
    EXPECT_EQ(p.label("loop"), std::optional<InstAddr>(0));
}

TEST(Assembler, DuplicateLabelFails)
{
    EXPECT_THROW(assembleString(".fus 1\na: halt\na: halt\n"),
                 FatalError);
}

TEST(Assembler, UndefinedLabelFails)
{
    EXPECT_THROW(assembleString(".fus 1\n-> nowhere ; nop\n"),
                 FatalError);
}

TEST(Assembler, DefaultFieldsFallThrough)
{
    // Empty control falls through; empty data is a nop; empty sync is
    // busy.
    Program p = assembleString(
        ".fus 2\n"
        " ; iadd #1,#2,r0 || \n"
        "halt || halt\n");
    const Parcel &p0 = p.parcel(0, 0);
    EXPECT_EQ(p0.ctrl, ControlOp::jump(1));
    EXPECT_EQ(p0.data.op, Opcode::Iadd);
    EXPECT_EQ(p0.sync, SyncVal::Busy);
    const Parcel &p1 = p.parcel(0, 1);
    EXPECT_TRUE(p1.data.isNop());
}

TEST(Assembler, FallThroughPastEndFails)
{
    EXPECT_THROW(assembleString(".fus 1\n ; nop\n"), FatalError);
}

TEST(Assembler, ConditionalBranches)
{
    Program p = assembleString(
        ".fus 2\n"
        "a: if cc1 a b ; nop || if ss0 b a ; nop\n"
        "b: if all a b ; nop ; done || if any(0,1) a b ; nop\n");
    EXPECT_EQ(p.parcel(0, 0).ctrl, ControlOp::onCc(1, 0, 1));
    EXPECT_EQ(p.parcel(0, 1).ctrl, ControlOp::onSync(0, 1, 0));
    EXPECT_EQ(p.parcel(1, 0).ctrl, ControlOp::onAllSync(0, 1));
    EXPECT_EQ(p.parcel(1, 0).sync, SyncVal::Done);
    EXPECT_EQ(p.parcel(1, 1).ctrl, ControlOp::onAnySync(0, 1, 0b11));
}

TEST(Assembler, MaskedBarrier)
{
    Program p = assembleString(
        ".fus 4\n"
        "a: if all(0,2) a a ; nop || -> a ; nop || -> a ; nop "
        "|| -> a ; nop\n");
    EXPECT_EQ(p.parcel(0, 0).ctrl.mask, 0b101u);
}

TEST(Assembler, CcIndexOutOfWidthFails)
{
    EXPECT_THROW(assembleString(".fus 2\na: if cc2 a a ; nop || halt\n"),
                 FatalError);
}

TEST(Assembler, RegistersNamedAndNumeric)
{
    Program p = assembleString(
        ".fus 1\n"
        ".reg foo 7\n"
        ".reg bar\n" // auto: lowest free = 0
        "halt ; iadd foo,r12,bar\n");
    const DataOp &d = p.parcel(0, 0).data;
    EXPECT_EQ(d.a, Operand::reg(7));
    EXPECT_EQ(d.b, Operand::reg(12));
    EXPECT_EQ(d.dest, 0);
    EXPECT_EQ(p.regByName("foo"), std::optional<RegId>(7));
}

TEST(Assembler, AutoRegSkipsTakenIndices)
{
    Program p = assembleString(
        ".fus 1\n.reg a 0\n.reg b\n.reg c\nhalt ; iadd a,b,c\n");
    EXPECT_EQ(p.regByName("b"), std::optional<RegId>(1));
    EXPECT_EQ(p.regByName("c"), std::optional<RegId>(2));
}

TEST(Assembler, RegNameCollidingWithNumericFormFails)
{
    EXPECT_THROW(assembleString(".fus 1\n.reg r5\nhalt\n"), FatalError);
}

TEST(Assembler, UnknownRegisterFails)
{
    EXPECT_THROW(assembleString(".fus 1\nhalt ; iadd qq,#1,r0\n"),
                 FatalError);
}

TEST(Assembler, Immediates)
{
    Program p = assembleString(
        ".fus 1\n"
        ".const big 0x7fffffff\n"
        "halt ; iadd #-5,#big,r0\n");
    EXPECT_EQ(wordToInt(p.parcel(0, 0).data.a.immValue()), -5);
    EXPECT_EQ(p.parcel(0, 0).data.b.immValue(), 0x7fffffffu);
}

TEST(Assembler, BuiltinConstants)
{
    Program p = assembleString(
        ".fus 1\nhalt ; lt #minint,#maxint\n");
    EXPECT_EQ(p.parcel(0, 0).data.a.immValue(), 0x80000000u);
    EXPECT_EQ(p.parcel(0, 0).data.b.immValue(), 0x7fffffffu);
}

TEST(Assembler, FloatImmediates)
{
    Program p = assembleString(".fus 1\nhalt ; fadd #1.5,#-0.25,r0\n");
    EXPECT_FLOAT_EQ(wordToFloat(p.parcel(0, 0).data.a.immValue()),
                    1.5f);
    EXPECT_FLOAT_EQ(wordToFloat(p.parcel(0, 0).data.b.immValue()),
                    -0.25f);
}

TEST(Assembler, OperandCountMismatchFails)
{
    EXPECT_THROW(assembleString(".fus 1\nhalt ; iadd #1,#2\n"),
                 FatalError);
    EXPECT_THROW(assembleString(".fus 1\nhalt ; nop #1\n"), FatalError);
}

TEST(Assembler, WordAndFloatDirectives)
{
    Program p = assembleString(
        ".fus 1\n"
        ".const base 100\n"
        ".word base 5 -3 0x10\n"
        ".float 200 1.5 2\n"
        "halt\n");
    ASSERT_EQ(p.memInit().size(), 5u);
    EXPECT_EQ(p.memInit()[0], (std::pair<Addr, Word>{100, 5}));
    EXPECT_EQ(wordToInt(p.memInit()[1].second), -3);
    EXPECT_EQ(p.memInit()[2], (std::pair<Addr, Word>{102, 0x10}));
    EXPECT_FLOAT_EQ(wordToFloat(p.memInit()[3].second), 1.5f);
    EXPECT_FLOAT_EQ(wordToFloat(p.memInit()[4].second), 2.0f);
}

TEST(Assembler, InitDirectives)
{
    Program p = assembleString(
        ".fus 1\n.reg n 3\n.init n 12\n.reg f 4\n.initf f 0.5\nhalt\n");
    ASSERT_EQ(p.regInit().size(), 2u);
    EXPECT_EQ(p.regInit()[0], (std::pair<RegId, Word>{3, 12}));
    EXPECT_FLOAT_EQ(wordToFloat(p.regInit()[1].second), 0.5f);
}

TEST(Assembler, InitOfUndeclaredRegisterFails)
{
    EXPECT_THROW(assembleString(".fus 1\n.init n 1\nhalt\n"),
                 FatalError);
}

TEST(Assembler, CommentsIgnored)
{
    Program p = assembleString(
        ".fus 1 // width\n"
        "// whole-line comment\n"
        "halt ; nop // trailing\n");
    EXPECT_EQ(p.size(), 1u);
}

TEST(Assembler, NumericBranchTargets)
{
    Program p = assembleString(".fus 1\n-> 1 ; nop\nhalt\n");
    EXPECT_EQ(p.parcel(0, 0).ctrl.t1, 1u);
    EXPECT_THROW(assembleString(".fus 1\n-> 9 ; nop\nhalt\n"),
                 FatalError);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assembleString(".fus 1\nhalt\nbogus op here\n");
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(Assembler, FuzzRandomTokenStreams)
{
    // Random token soup must either assemble or throw FatalError —
    // never PanicError (internal bug) and never crash.
    static const char *const tokens[] = {
        ".fus",  "4",     ".reg",  "x",    ".const", "z",   "64",
        "halt",  "->",    "if",    "cc0",  "ss1",    "all", "any",
        "nop",   "iadd",  "load",  "store", "#1",    "#z",  "r300",
        "x,",    "x,x,x", "||",    ";",    "L:",     "L",   "0x10",
        ".word", ".init", "done",  "busy", "#1.5",   "-9",  "(",
    };
    Rng rng(424242);
    int assembled = 0;
    for (int trial = 0; trial < 500; ++trial) {
        std::string src;
        const int lines = static_cast<int>(rng.range(1, 8));
        for (int l = 0; l < lines; ++l) {
            const int words = static_cast<int>(rng.range(1, 10));
            for (int w = 0; w < words; ++w) {
                src += tokens[rng.range(
                    0, std::size(tokens) - 1)];
                src += " ";
            }
            src += "\n";
        }
        try {
            Program p = assembleString(src);
            ++assembled;
        } catch (const FatalError &) {
            // expected for malformed input
        }
        // PanicError or a crash fails the test by escaping here.
    }
    // A few trivially-valid programs should slip through.
    (void)assembled;
}

TEST(Assembler, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/prog.ximd";
    {
        std::ofstream out(path);
        out << ".fus 1\n.reg a\nhalt ; iadd #1,#2,a\n";
    }
    Program p = assembleFile(path);
    EXPECT_EQ(p.size(), 1u);
    EXPECT_EQ(p.parcel(0, 0).data.op, Opcode::Iadd);
    EXPECT_THROW(assembleFile("/nonexistent/file.ximd"), FatalError);
}

TEST(Assembler, DisasmRoundTrip)
{
    // Assemble a single-FU program, print it, mechanically rewrite the
    // paper-style listing back into assembler syntax, re-assemble, and
    // compare parcel-for-parcel.
    const char *src =
        ".fus 1\n"
        "a: if cc0 b a ; iadd r1,#2,r3 ; done\n"
        "b: halt ; store r3,#64\n";
    Program p1 = assembleString(src);
    DisasmOptions opts;
    opts.useRegNames = false;
    std::string listing = formatProgram(p1, opts);

    std::string src2 = ".fus 1\n";
    for (auto line : split(listing, '\n')) {
        auto t = trim(line);
        if (t.empty())
            continue;
        std::string s(t);
        s = s.substr(s.find(':') + 1); // drop the "NN:" prefix
        std::string cleaned;
        for (char c : s) {
            if (c == ':')
                continue; // "05:" targets -> "05"
            cleaned += c == '|' ? ' ' : c; // "t1:|t2:" -> "t1 t2"
        }
        // single-digit addresses: hex form == decimal form
        src2 += cleaned + "\n";
    }
    Program p2 = assembleString(src2);
    ASSERT_EQ(p2.size(), p1.size());
    for (InstAddr a = 0; a < p1.size(); ++a)
        EXPECT_EQ(p1.parcel(a, 0), p2.parcel(a, 0)) << "addr " << a;
}

TEST(Assembler, ErrorsCarryLineAndRawMessage)
{
    try {
        assembleString(".fus 2\nhalt || halt\nhalt\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line(), 3);
        EXPECT_NE(e.rawMessage().find("parcel"), std::string::npos);
        // what() keeps the historical decorated shape.
        EXPECT_NE(std::string(e.what()).find("fatal: asm line 3:"),
                  std::string::npos);
    }
}

TEST(Assembler, ResultValueArmMatchesThrowingApi)
{
    const char *src = ".fus 2\nhalt || halt\n";
    auto r = assembleStringResult(src);
    ASSERT_TRUE(r.hasValue());
    EXPECT_EQ(r.value().width(), 2u);
    EXPECT_EQ(r.value().size(), assembleString(src).size());
}

TEST(Assembler, ResultErrorArmIsStructured)
{
    auto r = assembleStringResult(".fus 2\nhalt || halt\nhalt\n");
    ASSERT_FALSE(r.hasValue());
    const analysis::Diagnostic &d = r.error();
    EXPECT_EQ(d.check, analysis::Check::AsmParse);
    EXPECT_EQ(d.severity, analysis::Severity::Error);
    EXPECT_EQ(d.row, 3u); // source line, not instruction row
    EXPECT_NE(d.message.find("parcel"), std::string::npos);
    const std::string rendered =
        analysis::DiagnosticList::formatOne(d);
    EXPECT_NE(rendered.find("error[asm-parse] line 3:"),
              std::string::npos);
}

TEST(Assembler, ResultFileErrorIsLoadFailed)
{
    auto r = assembleFileResult("/nonexistent/path/prog.ximd");
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().check, analysis::Check::LoadFailed);
    EXPECT_NE(analysis::DiagnosticList::formatOne(r.error())
                  .find("error[load-failed]:"),
              std::string::npos);
}

} // namespace
} // namespace ximd
