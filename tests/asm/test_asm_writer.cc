#include "asm/asm_writer.hh"

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "workloads/kernels.hh"
#include "workloads/loop12.hh"

namespace ximd {
namespace {

/** Grid + state equivalence, ignoring labelAt alias preference. */
void
expectEquivalent(const Program &a, const Program &b)
{
    ASSERT_EQ(a.width(), b.width());
    ASSERT_EQ(a.size(), b.size());
    for (InstAddr r = 0; r < a.size(); ++r)
        for (FuId fu = 0; fu < a.width(); ++fu)
            EXPECT_EQ(a.parcel(r, fu), b.parcel(r, fu))
                << "row " << r << " fu " << unsigned(fu);
    EXPECT_EQ(a.regInit(), b.regInit());
    EXPECT_EQ(a.memInit(), b.memInit());
    EXPECT_EQ(a.symbols(), b.symbols());
    EXPECT_EQ(a.labels(), b.labels());
    EXPECT_EQ(a.regNames(), b.regNames());
}

TEST(AsmWriter, RoundTripsMinmax)
{
    const Program p = workloads::minmaxPaper();
    expectEquivalent(p, assembleString(writeAssembly(p)));
}

TEST(AsmWriter, RoundTripsBitcountWithSyncFields)
{
    const Program p =
        workloads::bitcount1Paper(std::vector<Word>(12, 0xA5A5A5A5u));
    expectEquivalent(p, assembleString(writeAssembly(p)));
}

TEST(AsmWriter, RoundTripsFloatDataBitExactly)
{
    const Program p = workloads::loop12Pipelined(
        {0.5f, 1.25f, -3.75f, 2.0f, 0.125f, 9.5f});
    expectEquivalent(p, assembleString(writeAssembly(p)));
}

TEST(AsmWriter, SecondGenerationIsAFixpoint)
{
    const Program p = workloads::minmaxPaper();
    const std::string once = writeAssembly(p);
    const std::string twice = writeAssembly(assembleString(once));
    EXPECT_EQ(once, twice);
}

TEST(AsmWriter, InitAcceptsNumericRegisterForm)
{
    const Program p = assembleString(".fus 1\n"
                                     ".init r7 42\n"
                                     "halt ; nop\n");
    ASSERT_EQ(p.regInit().size(), 1u);
    EXPECT_EQ(p.regInit()[0].first, 7);
    EXPECT_EQ(p.regInit()[0].second, 42u);
}

} // namespace
} // namespace ximd
