/**
 * @file
 * Property test for the paper's section 2.1 claim: "If for a given
 * program, the functions delta_1 ... delta_n are identical and the
 * initial values of the state variables S1 ... Sn are identical, then
 * the XIMD machine will be the functional equivalent of a VLIW
 * machine."
 *
 * We generate random VLIW-style programs (identical control fields in
 * every parcel, forward-only branches so they terminate), run each on
 * xsim and vsim, and require identical cycle counts, architectural
 * state, and lock-step PCs.
 */

#include <gtest/gtest.h>

#include "core/vliw_machine.hh"
#include "core/ximd_machine.hh"
#include "support/random.hh"

namespace ximd {
namespace {

/** Random terminating VLIW-style program on @p width FUs. */
Program
randomVliwProgram(FuId width, std::uint64_t seed)
{
    Rng rng(seed);
    const InstAddr rows =
        static_cast<InstAddr>(rng.range(4, 24));
    Program p(width);

    // Each FU writes only registers in its own bank and memory in its
    // own window, so races cannot occur; reads may touch anything
    // already deterministic (any register, any memory word).
    auto randomDataOp = [&](FuId fu) -> DataOp {
        const RegId bank = static_cast<RegId>(fu * 8);
        auto anyReg = [&] {
            return Operand::reg(
                static_cast<RegId>(rng.range(0, width * 8 - 1)));
        };
        auto ownDest = [&] {
            return static_cast<RegId>(bank + rng.range(0, 7));
        };
        switch (rng.range(0, 6)) {
          case 0:
            return DataOp::nop();
          case 1:
            return DataOp::make(Opcode::Iadd, anyReg(),
                                Operand::immInt(static_cast<SWord>(
                                    rng.range(-9, 9))),
                                ownDest());
          case 2:
            return DataOp::make(Opcode::Xor, anyReg(), anyReg(),
                                ownDest());
          case 3:
            return DataOp::makeCompare(Opcode::Lt, anyReg(), anyReg());
          case 4:
            return DataOp::make(Opcode::Imult, anyReg(),
                                Operand::immInt(static_cast<SWord>(
                                    rng.range(0, 5))),
                                ownDest());
          case 5: {
            const Addr a =
                static_cast<Addr>(512 + fu * 16 + rng.range(0, 15));
            return DataOp::makeStore(anyReg(), Operand::imm(a));
          }
          default: {
            const Addr a =
                static_cast<Addr>(512 + rng.range(0, width * 16 - 1));
            return DataOp::makeLoad(Operand::imm(a),
                                    Operand::immInt(0), ownDest());
          }
        }
    };

    for (InstAddr r = 0; r < rows; ++r) {
        ControlOp ctrl;
        if (r + 1 == rows) {
            ctrl = ControlOp::halt();
        } else if (rng.chance(0.3) && r + 2 < rows) {
            // Forward conditional branch: both targets after this row.
            const auto t1 = static_cast<InstAddr>(
                rng.range(r + 1, rows - 1));
            const auto t2 = static_cast<InstAddr>(
                rng.range(r + 1, rows - 1));
            ctrl = ControlOp::onCc(
                static_cast<unsigned>(rng.range(0, width - 1)), t1,
                t2);
        } else if (rng.chance(0.1) && r + 2 < rows) {
            ctrl = ControlOp::jump(static_cast<InstAddr>(
                rng.range(r + 1, rows - 1)));
        } else {
            ctrl = ControlOp::jump(r + 1);
        }
        InstRow row;
        for (FuId fu = 0; fu < width; ++fu)
            row.push_back(Parcel(ctrl, randomDataOp(fu)));
        p.addRow(std::move(row));
    }
    p.validate();
    return p;
}

class VliwEquivalence
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
};

TEST_P(VliwEquivalence, XimdEmulatesVliwExactly)
{
    const auto [width, seed] = GetParam();
    Program prog = randomVliwProgram(static_cast<FuId>(width), seed);

    MachineConfig cfg;
    cfg.recordTrace = true;
    XimdMachine x(prog, cfg);
    VliwMachine v(prog, cfg);

    const RunResult rx = x.run(100000);
    const RunResult rv = v.run(100000);

    ASSERT_TRUE(rx.ok()) << rx.faultMessage;
    ASSERT_TRUE(rv.ok()) << rv.faultMessage;
    ASSERT_EQ(rx.cycles, rv.cycles);

    // Lock-step PCs: every XIMD FU tracked the single VLIW PC.
    ASSERT_EQ(x.trace().size(), v.trace().size());
    for (std::size_t c = 0; c < x.trace().size(); ++c) {
        const TraceEntry &ex = x.trace().entry(c);
        const TraceEntry &ev = v.trace().entry(c);
        for (FuId fu = 0; fu < prog.width(); ++fu)
            ASSERT_EQ(ex.pcs[fu], ev.pcs[0])
                << "cycle " << c << " FU" << fu;
        // One instruction stream throughout.
        std::string lockstep = "{";
        for (FuId fu = 0; fu < prog.width(); ++fu)
            lockstep += (fu ? "," : "") + std::to_string(fu);
        lockstep += "}";
        ASSERT_EQ(ex.partition, lockstep) << "cycle " << c;
    }

    // Identical architectural state.
    for (RegId r = 0; r < kNumRegisters; ++r)
        ASSERT_EQ(x.readReg(r), v.readReg(r)) << "r" << unsigned(r);
    for (Addr a = 512; a < 512 + prog.width() * 16; ++a)
        ASSERT_EQ(x.peekMem(a), v.peekMem(a)) << "mem " << a;

    // Identical statistics for the shared counters.
    EXPECT_EQ(x.stats().parcels(), v.stats().parcels());
    EXPECT_EQ(x.stats().dataOps(), v.stats().dataOps());
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, VliwEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u,
                                         77u, 88u)));

} // namespace
} // namespace ximd
