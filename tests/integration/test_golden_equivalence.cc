/**
 * @file
 * Golden equivalence for the MachineCore refactor.
 *
 * tests/integration/golden/core_refactor.golden was captured from the
 * pre-refactor simulators (inline observation, per-cycle Parcel
 * parsing, no fast-forward) by running exactly the scenarios below and
 * recording, for each: stop reason, cycle count, partition histogram,
 * the full formatted statistics block, and — where tracing was on —
 * the compact Figure-10 trace, plus spot-checked memory words.
 *
 * The test regenerates that report with the current implementation and
 * compares byte-for-byte. Any divergence in trace content, statistics,
 * partition evolution, or architectural results is a regression in the
 * shared-core / predecode / observer / fast-forward machinery.
 *
 * Note the deadlock_cap500 scenario: the golden output was captured by
 * stepping all 500 cycles, while the current core fast-forwards the
 * busy-wait fixpoint after two stepped cycles — the comparison proves
 * the O(1) skip is accounted identically to stepping.
 */

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/vliw_machine.hh"
#include "core/ximd_machine.hh"
#include "support/random.hh"
#include "workloads/bitcount.hh"
#include "workloads/kernels.hh"
#include "workloads/loop12.hh"
#include "workloads/minmax.hh"

namespace {

using namespace ximd;
using namespace ximd::workloads;

std::string
hist(const RunStats &s)
{
    std::ostringstream os;
    for (const auto &[n, c] : s.partitionHistogram())
        os << n << ":" << c << ";";
    return os.str();
}

template <typename M>
void
report(std::ostream &os, const char *name, M &m, const RunResult &r)
{
    os << "=== " << name << " ===\n";
    os << "reason=" << static_cast<int>(r.reason)
       << " cycles=" << r.cycles << "\n";
    os << "hist=" << hist(m.stats()) << "\n";
    os << "--- stats ---\n" << m.stats().formatted();
    if (!m.trace().empty())
        os << "--- trace ---\n" << m.trace().compact();
    os << "=== end ===\n";
}

std::string
example(const char *file)
{
    return std::string(XIMD_SOURCE_DIR "/examples/programs/") + file;
}

/** Regenerate the full golden report with the current simulators. */
std::string
generateReport()
{
    std::ostringstream os;
    MachineConfig traced;
    traced.recordTrace = true;

    { // minmax paper kernel, terminating, traced.
        XimdMachine m(minmaxPaper(true), traced);
        auto r = m.run();
        report(os, "minmax_paper", m, r);
    }
    { // tproc XIMD + VLIW.
        XimdMachine x(tprocPaper(3, -4, 7, 11), traced);
        auto rx = x.run();
        report(os, "tproc_ximd", x, rx);
        VliwMachine v(tprocPaper(3, -4, 7, 11), traced);
        auto rv = v.run();
        report(os, "tproc_vliw", v, rv);
    }
    { // bitcount XIMD, fixed data.
        Rng rng(77);
        std::vector<Word> data(16);
        for (auto &v : data)
            v = static_cast<Word>(rng.next64() & 0xFFFFF);
        XimdMachine m(bitcountXimd(data), traced);
        auto r = m.run();
        report(os, "bitcount_ximd", m, r);
    }
    { // loop12 pipelined on both machines (single stream).
        Rng rng(9);
        std::vector<float> y(12);
        for (auto &v : y)
            v = static_cast<float>(rng.range(-50, 50));
        XimdMachine x(loop12Pipelined(y), traced);
        auto rx = x.run();
        report(os, "loop12_ximd", x, rx);
        VliwMachine v(loop12Pipelined(y), traced);
        auto rv = v.run();
        report(os, "loop12_vliw", v, rv);
    }
    { // barrier.ximd from the shipped corpus.
        XimdMachine m(assembleFile(example("barrier.ximd")), traced);
        auto r = m.run();
        report(os, "barrier", m, r);
        os << "mem32=" << m.peekMem(32) << " mem33=" << m.peekMem(33)
           << "\n";
    }
    { // deadlock.ximd capped at 500 cycles (fast-forward territory).
        XimdMachine m(assembleFile(example("deadlock.ximd")));
        auto r = m.run(500);
        report(os, "deadlock_cap500", m, r);
    }
    return os.str();
}

/** Split a report into per-scenario chunks keyed by "=== name ===". */
std::vector<std::pair<std::string, std::string>>
splitScenarios(const std::string &text)
{
    std::vector<std::pair<std::string, std::string>> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind("=== ", 0) == 0 && line != "=== end ===") {
            out.emplace_back(line.substr(4, line.size() - 8), "");
        } else if (!out.empty()) {
            out.back().second += line + "\n";
        }
    }
    return out;
}

TEST(GoldenEquivalence, MatchesPreRefactorCapture)
{
    std::ifstream in(
        XIMD_SOURCE_DIR
        "/tests/integration/golden/core_refactor.golden");
    ASSERT_TRUE(in) << "golden file missing";
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string golden = buf.str();

    const std::string current = generateReport();

    // Compare scenario-by-scenario so a failure names the workload.
    const auto want = splitScenarios(golden);
    const auto got = splitScenarios(current);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i].first, got[i].first);
        EXPECT_EQ(want[i].second, got[i].second)
            << "scenario '" << want[i].first
            << "' diverged from the pre-refactor capture";
    }

    // And the whole report, byte for byte.
    EXPECT_EQ(golden, current);
}

} // namespace
