/**
 * @file
 * Property test for the paper's section 2.1 MIMD claim: "By selecting
 * functions for delta_1 ... delta_n which disregard the state of
 * other functional units, XIMD can be a functional equivalent of this
 * MIMD model."
 *
 * We generate N completely independent single-FU programs (each with
 * its own registers, memory window and control flow), run each alone
 * on a one-FU machine, then run all of them together as the columns
 * of one width-N XIMD program. Requirements: identical per-program
 * results, and a combined runtime equal to the longest individual
 * runtime — the streams neither help nor hinder each other.
 */

#include <gtest/gtest.h>

#include "core/ximd_machine.hh"
#include "support/random.hh"

namespace ximd {
namespace {

/** One independent random column program (terminating loops). */
struct ColumnProgram
{
    std::vector<Parcel> parcels; ///< One per row; pure column code.
    RegId counter;               ///< Loop counter register.
    Word iterations;
    Addr resultAddr;
};

/**
 * Build: `iters` loop iterations of a few random ALU ops, then store
 * an accumulator and halt. Rows: 0..k-1 body, k test, k+1 branch,
 * k+2 store+halt.
 */
ColumnProgram
makeColumn(FuId fu, Rng &rng)
{
    ColumnProgram col;
    col.counter = static_cast<RegId>(fu * 8);
    const RegId acc = static_cast<RegId>(fu * 8 + 1);
    col.iterations = static_cast<Word>(rng.range(1, 12));
    col.resultAddr = 900 + fu;

    const int bodyOps = static_cast<int>(rng.range(1, 4));
    const InstAddr testRow = static_cast<InstAddr>(bodyOps);
    const InstAddr branchRow = testRow + 1;
    const InstAddr exitRow = branchRow + 1;

    for (int i = 0; i < bodyOps; ++i) {
        const Opcode op = rng.chance(0.5) ? Opcode::Iadd : Opcode::Xor;
        DataOp d = DataOp::make(
            op, Operand::reg(acc),
            Operand::immInt(static_cast<SWord>(rng.range(1, 99))),
            acc);
        col.parcels.push_back(
            Parcel(ControlOp::jump(static_cast<InstAddr>(i + 1)), d));
    }
    // Decrement-and-test: counter counts down to zero.
    col.parcels.push_back(Parcel(
        ControlOp::jump(branchRow),
        DataOp::make(Opcode::Isub, Operand::reg(col.counter),
                     Operand::immInt(1), col.counter)));
    col.parcels.push_back(Parcel(
        ControlOp::onCc(fu, exitRow, 0),
        DataOp::makeCompare(Opcode::Le, Operand::reg(col.counter),
                            Operand::immInt(1))));
    col.parcels.push_back(
        Parcel(ControlOp::halt(),
               DataOp::makeStore(Operand::reg(acc),
                                 Operand::imm(col.resultAddr))));
    return col;
}

/** Rebase a column's parcels so its CC index / targets fit @p fu on a
 *  machine of the given width (the column was built for its fu). */
Program
columnsToProgram(const std::vector<ColumnProgram> &cols)
{
    const FuId width = static_cast<FuId>(cols.size());
    std::size_t rows = 0;
    for (const auto &c : cols)
        rows = std::max(rows, c.parcels.size());

    Program p(width);
    for (std::size_t r = 0; r < rows; ++r) {
        InstRow row;
        for (FuId fu = 0; fu < width; ++fu) {
            if (r < cols[fu].parcels.size())
                row.push_back(cols[fu].parcels[r]);
            else
                row.push_back(Parcel(ControlOp::halt(), DataOp::nop()));
        }
        p.addRow(std::move(row));
    }
    for (FuId fu = 0; fu < width; ++fu)
        p.addRegInit(cols[fu].counter, cols[fu].iterations);
    p.validate();
    return p;
}

/** Extract column @p fu as a standalone single-FU program. */
Program
soloProgram(const ColumnProgram &col, FuId originalFu)
{
    Program p(1);
    for (const Parcel &src : col.parcels) {
        Parcel parcel = src;
        if (parcel.ctrl.kind == CondKind::CcTrue)
            parcel.ctrl.index = 0; // its own CC on a 1-FU machine
        (void)originalFu;
        p.addRow({parcel});
    }
    p.addRegInit(col.counter, col.iterations);
    p.validate();
    return p;
}

class MimdEquivalence : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MimdEquivalence, IndependentStreamsNeitherHelpNorHinder)
{
    Rng rng(GetParam());
    const FuId width = static_cast<FuId>(rng.range(2, 8));

    std::vector<ColumnProgram> cols;
    for (FuId fu = 0; fu < width; ++fu)
        cols.push_back(makeColumn(fu, rng));

    // Solo runs.
    std::vector<Word> soloResult(width);
    std::vector<Cycle> soloCycles(width);
    for (FuId fu = 0; fu < width; ++fu) {
        XimdMachine m(soloProgram(cols[fu], fu));
        const RunResult r = m.run(100000);
        ASSERT_TRUE(r.ok()) << r.faultMessage;
        soloResult[fu] = m.peekMem(cols[fu].resultAddr);
        soloCycles[fu] = r.cycles;
    }

    // Combined run: one machine, width columns, zero interaction.
    XimdMachine m(columnsToProgram(cols));
    const RunResult r = m.run(100000);
    ASSERT_TRUE(r.ok()) << r.faultMessage;

    Cycle longest = 0;
    for (FuId fu = 0; fu < width; ++fu) {
        EXPECT_EQ(m.peekMem(cols[fu].resultAddr), soloResult[fu])
            << "FU" << fu;
        longest = std::max(longest, soloCycles[fu]);
    }
    EXPECT_EQ(r.cycles, longest);

    // The whole run is fully partitioned: once streams diverge, the
    // tracker must report more than one SSET somewhere.
    if (width > 1) {
        bool multi = false;
        for (const auto &[streams, cycles] :
             m.stats().partitionHistogram())
            if (streams > 1 && cycles > 0)
                multi = true;
        EXPECT_TRUE(multi);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MimdEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u, 9u, 10u, 11u, 12u));

} // namespace
} // namespace ximd
