/**
 * @file
 * Reproduces the paper's Figure 10 — the MINMAX address trace for
 * IZ() = (5,3,4,7) — cycle for cycle: per-FU instruction addresses,
 * condition-code registers at the beginning of each cycle, and the
 * SSET partition.
 */

#include <gtest/gtest.h>

#include "core/ximd_machine.hh"
#include "workloads/kernels.hh"

namespace ximd::workloads {
namespace {

// Figure 10, transcribed. (The paper prints cycle 11's condition codes
// as "FITX" — an obvious typesetting artifact of FTTX, since no
// compare executes between cycles 11 and 12, where it prints FTTX.)
const char *const kFigure10 =
    "0 | 00 00 00 00 | XXXX | {0,1,2,3}\n"
    "1 | 01 01 01 01 | XXFX | {0,1,2,3}\n"
    "2 | 02 02 02 02 | TTFX | {0,1,2,3}\n"
    "3 | 03 03 04 04 | TTFX | {0,1}{2}{3}\n"
    "4 | 05 05 05 05 | TTFX | {0,1,2,3}\n"
    "5 | 02 02 02 02 | TFFX | {0,1,2,3}\n"
    "6 | 03 03 04 03 | TFFX | {0,1}{2}{3}\n"
    "7 | 05 05 05 05 | TFFX | {0,1,2,3}\n"
    "8 | 02 02 02 02 | FFFX | {0,1,2,3}\n"
    "9 | 03 03 03 03 | FFTX | {0,1}{2}{3}\n"
    "10 | 05 05 05 05 | FFTX | {0,1,2,3}\n"
    "11 | 08 08 08 08 | FTTX | {0,1,2,3}\n"
    "12 | 0a 0a 0a 09 | FTTX | {0,1}{2}{3}\n"
    "13 | 0a 0a 0a 0a | FTTX | {0,1,2,3}\n";

TEST(Figure10, AddressTraceMatchesPaperExactly)
{
    MachineConfig cfg;
    cfg.recordTrace = true;
    XimdMachine m(minmaxPaper(/*terminate=*/false), cfg);
    for (int i = 0; i < 14; ++i)
        ASSERT_TRUE(m.step());
    EXPECT_EQ(m.trace().compact(), kFigure10);
}

TEST(Figure10, ResultsAfterTrace)
{
    MachineConfig cfg;
    cfg.recordTrace = true;
    XimdMachine m(minmaxPaper(/*terminate=*/false), cfg);
    for (int i = 0; i < 14; ++i)
        ASSERT_TRUE(m.step());
    EXPECT_EQ(wordToInt(m.readRegByName("min")), 3);
    EXPECT_EQ(wordToInt(m.readRegByName("max")), 7);
}

TEST(Figure10, ThreeThreadForkCyclesMatchComments)
{
    // The paper annotates cycles 3, 6, 9 and 12 as three-stream
    // partitions ("Update min & max" etc.) and every other cycle as a
    // single stream.
    MachineConfig cfg;
    cfg.recordTrace = true;
    XimdMachine m(minmaxPaper(false), cfg);
    for (int i = 0; i < 14; ++i)
        ASSERT_TRUE(m.step());
    for (int c : {3, 6, 9, 12})
        EXPECT_EQ(m.trace().entry(c).partition, "{0,1}{2}{3}") << c;
    for (int c : {0, 1, 2, 4, 5, 7, 8, 10, 11, 13})
        EXPECT_EQ(m.trace().entry(c).partition, "{0,1,2,3}") << c;
}

TEST(Figure10, PartitionHistogramSplits)
{
    MachineConfig cfg;
    XimdMachine m(minmaxPaper(false), cfg);
    for (int i = 0; i < 14; ++i)
        ASSERT_TRUE(m.step());
    const auto &hist = m.stats().partitionHistogram();
    EXPECT_EQ(hist.at(1), 10u);
    EXPECT_EQ(hist.at(3), 4u);
}

TEST(Figure10, TerminatingVariantPreservesPrefix)
{
    // The terminating kernel differs from the paper listing only at
    // address 0a: (halt instead of "Continue"); the trace prefix up to
    // cycle 12 must be identical.
    MachineConfig cfg;
    cfg.recordTrace = true;
    XimdMachine m(minmaxPaper(/*terminate=*/true), cfg);
    EXPECT_TRUE(m.run().ok());
    const std::string got = m.trace().compact();
    const std::string want(kFigure10);
    // Compare the first 13 lines (cycles 0..12).
    std::size_t pos = 0;
    for (int i = 0; i < 13; ++i)
        pos = want.find('\n', pos) + 1;
    EXPECT_EQ(got.substr(0, pos), want.substr(0, pos));
}

} // namespace
} // namespace ximd::workloads
