/**
 * @file
 * Property tests for the explicit synchronization mechanisms of
 * section 3.3: barrier join timing, masked (partial) barriers, and
 * ANY-sync wakeups.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/ximd_machine.hh"
#include "support/random.hh"

namespace ximd {
namespace {

/**
 * Build a program where FU i runs an independent loop of n_i
 * iterations (3 cycles each) and then enters an ALL barrier; after the
 * barrier every FU halts.
 *
 * Layout: 0: decrement, 1: compare, 2: loop branch, 3: barrier,
 * 4: halt.
 */
Program
barrierProgram(const std::vector<unsigned> &iters)
{
    const FuId width = static_cast<FuId>(iters.size());
    Program p(width);
    for (InstAddr r = 0; r < 5; ++r) {
        InstRow row;
        for (FuId fu = 0; fu < width; ++fu) {
            const RegId c = static_cast<RegId>(fu);
            Parcel parcel;
            switch (r) {
              case 0:
                parcel = Parcel(ControlOp::jump(1),
                                DataOp::make(Opcode::Isub,
                                             Operand::reg(c),
                                             Operand::immInt(1), c));
                break;
              case 1:
                parcel = Parcel(ControlOp::jump(2),
                                DataOp::makeCompare(
                                    Opcode::Eq, Operand::reg(c),
                                    Operand::immInt(0)));
                break;
              case 2:
                parcel = Parcel(ControlOp::onCc(fu, 3, 0),
                                DataOp::nop());
                break;
              case 3:
                parcel = Parcel(ControlOp::onAllSync(4, 3),
                                DataOp::nop(), SyncVal::Done);
                break;
              case 4:
                parcel = Parcel(ControlOp::halt(), DataOp::nop());
                break;
            }
            row.push_back(parcel);
        }
        p.addRow(std::move(row));
    }
    for (FuId fu = 0; fu < width; ++fu)
        p.addRegInit(static_cast<RegId>(fu), iters[fu]);
    p.validate();
    return p;
}

unsigned
maxIter(const std::vector<unsigned> &iters)
{
    unsigned m = 0;
    for (unsigned v : iters)
        m = std::max(m, v);
    return m;
}

class BarrierProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BarrierProperty, JoinCostsLongestThreadPlusConstant)
{
    Rng rng(GetParam());
    const FuId width = static_cast<FuId>(rng.range(2, 8));
    std::vector<unsigned> iters(width);
    for (auto &v : iters)
        v = static_cast<unsigned>(rng.range(1, 40));

    XimdMachine m(barrierProgram(iters));
    const RunResult r = m.run(10000);
    ASSERT_TRUE(r.ok());
    // Each thread reaches the barrier after 3*n_i cycles; the join
    // fires in the cycle the slowest arrives (combinational SS), all
    // FUs halt together the next cycle.
    EXPECT_EQ(r.cycles, 3u * maxIter(iters) + 2u);
}

TEST_P(BarrierProperty, BusyWaitEqualsSlackSum)
{
    Rng rng(GetParam() ^ 0xABCDEFu);
    const FuId width = static_cast<FuId>(rng.range(2, 8));
    std::vector<unsigned> iters(width);
    for (auto &v : iters)
        v = static_cast<unsigned>(rng.range(1, 30));

    XimdMachine m(barrierProgram(iters));
    ASSERT_TRUE(m.run(10000).ok());
    // FU i spins at the barrier for 3*(max-n_i) cycles.
    std::uint64_t slack = 0;
    for (unsigned v : iters)
        slack += 3 * (maxIter(iters) - v);
    EXPECT_EQ(m.stats().busyWaitCycles(), slack);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BarrierProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u, 9u, 10u));

TEST(MaskedBarrier, GroupsJoinIndependently)
{
    // FUs 0-1 barrier on mask {0,1}; FUs 2-3 on mask {2,3} after a
    // much longer loop. Group A must finish well before group B.
    Program p(4);
    const std::uint32_t maskA = 0b0011, maskB = 0b1100;
    for (InstAddr r = 0; r < 5; ++r) {
        InstRow row;
        for (FuId fu = 0; fu < 4; ++fu) {
            const RegId c = static_cast<RegId>(fu);
            const std::uint32_t mask = fu < 2 ? maskA : maskB;
            Parcel parcel;
            switch (r) {
              case 0:
                parcel = Parcel(ControlOp::jump(1),
                                DataOp::make(Opcode::Isub,
                                             Operand::reg(c),
                                             Operand::immInt(1), c));
                break;
              case 1:
                parcel = Parcel(ControlOp::jump(2),
                                DataOp::makeCompare(
                                    Opcode::Eq, Operand::reg(c),
                                    Operand::immInt(0)));
                break;
              case 2:
                parcel = Parcel(ControlOp::onCc(fu, 3, 0),
                                DataOp::nop());
                break;
              case 3:
                parcel = Parcel(ControlOp::onAllSync(4, 3, mask),
                                DataOp::nop(), SyncVal::Done);
                break;
              case 4:
                parcel = Parcel(ControlOp::halt(), DataOp::nop());
                break;
            }
            row.push_back(parcel);
        }
        p.addRow(std::move(row));
    }
    // Group A: 2 and 3 iterations; group B: 20 and 25.
    p.addRegInit(0, 2);
    p.addRegInit(1, 3);
    p.addRegInit(2, 20);
    p.addRegInit(3, 25);

    XimdMachine m(p);
    std::vector<Cycle> haltCycle(4, 0);
    while (m.step()) {
        for (FuId fu = 0; fu < 4; ++fu)
            if (m.halted(fu) && haltCycle[fu] == 0)
                haltCycle[fu] = m.cycle();
    }
    ASSERT_TRUE(m.allHalted());
    // Group A joins at 3*3+2, long before group B at 3*25+2.
    EXPECT_EQ(haltCycle[0], 3u * 3u + 2u);
    EXPECT_EQ(haltCycle[1], 3u * 3u + 2u);
    EXPECT_EQ(haltCycle[2], 3u * 25u + 2u);
    EXPECT_EQ(haltCycle[3], 3u * 25u + 2u);
}

TEST(AnySync, WakesWaitersTheCycleTheFirstSignals)
{
    // FU0 loops 5 iterations then parks DONE; FUs 1-2 wait on ANY.
    Program p(3);
    for (InstAddr r = 0; r < 5; ++r) {
        InstRow row;
        for (FuId fu = 0; fu < 3; ++fu) {
            Parcel parcel;
            if (fu == 0) {
                switch (r) {
                  case 0:
                    parcel = Parcel(ControlOp::jump(1),
                                    DataOp::make(Opcode::Isub,
                                                 Operand::reg(0),
                                                 Operand::immInt(1),
                                                 0));
                    break;
                  case 1:
                    parcel = Parcel(ControlOp::jump(2),
                                    DataOp::makeCompare(
                                        Opcode::Eq, Operand::reg(0),
                                        Operand::immInt(0)));
                    break;
                  case 2:
                    parcel = Parcel(ControlOp::onCc(0, 3, 0),
                                    DataOp::nop());
                    break;
                  default:
                    parcel = Parcel(ControlOp::halt(), DataOp::nop(),
                                    SyncVal::Done);
                    break;
                }
            } else {
                // Waiters: ANY-sync over {0} — SyncDone would do, use
                // the AnySync kind to exercise it.
                if (r == 0)
                    parcel = Parcel(ControlOp::onAnySync(1, 0, 0b001),
                                    DataOp::nop());
                else
                    parcel = Parcel(ControlOp::halt(), DataOp::nop());
            }
            row.push_back(parcel);
        }
        p.addRow(std::move(row));
    }
    p.addRegInit(0, 5);

    XimdMachine m(p);
    std::vector<Cycle> haltCycle(3, 0);
    while (m.step()) {
        for (FuId fu = 0; fu < 3; ++fu)
            if (m.halted(fu) && haltCycle[fu] == 0)
                haltCycle[fu] = m.cycle();
    }
    // FU0 reaches row 3 at cycle 15 and halts there emitting DONE; the
    // waiters see the signal combinationally in that same cycle 15,
    // branch, and halt one cycle after FU0 — both waiters together.
    ASSERT_TRUE(m.allHalted());
    EXPECT_EQ(haltCycle[1], haltCycle[0] + 1);
    EXPECT_EQ(haltCycle[2], haltCycle[0] + 1);
    EXPECT_EQ(haltCycle[0], 16u);
}

} // namespace
} // namespace ximd
