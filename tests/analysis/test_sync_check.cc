#include "analysis/sync_check.hh"

#include <gtest/gtest.h>

#include "asm/assembler.hh"

namespace ximd::analysis {
namespace {

DiagnosticList
lint(const Program &p)
{
    const ProgramCfg cfg = buildCfg(p);
    DiagnosticList diags;
    checkSync(p, cfg, diags);
    diags.sort();
    return diags;
}

const Diagnostic *
find(const DiagnosticList &diags, Check c)
{
    for (const auto &d : diags.all())
        if (d.check == c)
            return &d;
    return nullptr;
}

TEST(SyncCheck, CyclicBusyWaitIsDeadlock)
{
    // Each FU waits for the other's DONE while driving BUSY.
    const Program p = assembleString(R"(
        .fus 2
        spin: if ss1 out spin ; nop || if ss0 out spin ; nop
        out:  halt ; nop            || halt ; nop
    )");
    const DiagnosticList diags = lint(p);
    const Diagnostic *d = find(diags, Check::CrossStreamDeadlock);
    ASSERT_NE(d, nullptr) << diags.formatted(&p);
    EXPECT_TRUE(d->isError());
    EXPECT_EQ(d->row, 0u);
    // The report names every FU in the cycle and where it waits.
    EXPECT_NE(d->message.find("FU0"), std::string::npos);
    EXPECT_NE(d->message.find("FU1"), std::string::npos);
    EXPECT_NE(d->message.find("row 0"), std::string::npos);
}

TEST(SyncCheck, DoneDrivingSpinsAreNotDeadlock)
{
    // The cooperative protocol done right: both waiters drive DONE,
    // so each sees the other's signal the cycle it arrives.
    const Program p = assembleString(R"(
        .fus 2
        spin: if ss1 out spin ; nop ; done || if ss0 out spin ; nop ; done
        out:  halt ; nop                   || halt ; nop
    )");
    EXPECT_TRUE(lint(p).empty());
}

TEST(SyncCheck, BarrierOverHaltedFuIsSatisfiable)
{
    // A halted FU reads DONE on the bus, so an ALL barrier whose mask
    // covers an already-halted FU completes — not a deadlock.
    const Program p = assembleString(R"(
        .fus 2
        a:    -> bar ; nop                  || halt ; nop
        bar:  if all out bar ; nop ; done   || halt ; nop
        out:  halt ; nop                    || halt ; nop
    )");
    EXPECT_TRUE(lint(p).empty());
}

TEST(SyncCheck, BusyDrivingBarrierVetoesItself)
{
    // Both FUs park at an ALL barrier but leave the sync field at the
    // default BUSY: each FU vetoes the barrier it is waiting on.
    const Program p = assembleString(R"(
        .fus 2
        bar: if all out bar ; nop || if all out bar ; nop
        out: halt ; nop           || halt ; nop
    )");
    const DiagnosticList diags = lint(p);
    const Diagnostic *d = find(diags, Check::SelfDeadlock);
    ASSERT_NE(d, nullptr) << diags.formatted(&p);
    EXPECT_TRUE(d->isError());
    EXPECT_NE(d->message.find("BUSY"), std::string::npos);
}

TEST(SyncCheck, SpinOnFuWithNoDonePointIsDeadlock)
{
    // FU1 loops forever and never drives DONE or halts; FU0's
    // busy-wait on it can never be satisfied.
    const Program p = assembleString(R"(
        .fus 2
        spin: if ss1 out spin ; nop || -> loop ; nop
        loop: -> loop ; nop         || -> loop ; nop
        out:  halt ; nop            || -> loop ; nop
    )");
    const DiagnosticList diags = lint(p);
    const Diagnostic *d = find(diags, Check::UnsatisfiableWait);
    ASSERT_NE(d, nullptr) << diags.formatted(&p);
    EXPECT_TRUE(d->isError());
    EXPECT_EQ(d->fu, 0);
}

TEST(SyncCheck, NonSpinningUnsatisfiableWaitOnlyWarns)
{
    // Same condition but the branch does not loop on itself: the
    // taken path is dead, the program still makes progress.
    const Program p = assembleString(R"(
        .fus 2
        a:    if ss1 dead out ; nop || -> loop ; nop
        loop: halt ; nop            || -> loop ; nop
        out:  halt ; nop            || -> loop ; nop
        dead: halt ; nop            || -> loop ; nop
    )");
    const DiagnosticList diags = lint(p);
    const Diagnostic *d = find(diags, Check::UnsatisfiableWait);
    ASSERT_NE(d, nullptr) << diags.formatted(&p);
    EXPECT_FALSE(d->isError());
}

TEST(SyncCheck, EmptyEffectiveMaskIsError)
{
    // A mask selecting no existing FU panics the SyncBus at run time.
    // The assembler rejects such masks, so build the row by hand.
    Program p(1);
    p.addRow(InstRow(1, Parcel(ControlOp::onAllSync(1, 0, 0b10),
                               DataOp::nop())));
    p.addRow(InstRow(1, Parcel(ControlOp::halt(), DataOp::nop())));
    const DiagnosticList diags = lint(p);
    const Diagnostic *d = find(diags, Check::EmptySyncMask);
    ASSERT_NE(d, nullptr) << diags.formatted(&p);
    EXPECT_TRUE(d->isError());
}

TEST(SyncCheck, MaskNamingMissingFusWarns)
{
    // Bits beyond the machine width are silently trimmed by the bus;
    // the program still runs, but the mask text lies about intent.
    Program p(2);
    p.addRow(InstRow(2, Parcel(ControlOp::onAllSync(1, 0, 0b101),
                               DataOp::nop(), SyncVal::Done)));
    p.addRow(InstRow(2, Parcel(ControlOp::halt(), DataOp::nop())));
    const DiagnosticList diags = lint(p);
    const Diagnostic *d = find(diags, Check::BadSyncMask);
    ASSERT_NE(d, nullptr) << diags.formatted(&p);
    EXPECT_FALSE(d->isError());
}

TEST(SyncCheck, SameRowRegisterWriteConflict)
{
    const Program p = assembleString(R"(
        .fus 2
        .reg x
        a: -> b ; iadd #1,#0,x || -> b ; iadd #2,#0,x
        b: halt ; store x,#32  || halt ; nop
    )");
    const DiagnosticList diags = lint(p);
    const Diagnostic *d = find(diags, Check::RegWriteConflict);
    ASSERT_NE(d, nullptr) << diags.formatted(&p);
    EXPECT_TRUE(d->isError());
    EXPECT_EQ(d->row, 0u);
    EXPECT_EQ(d->fu, -1); // whole-row finding
}

TEST(SyncCheck, NoConflictWhenOnlyOneStreamReachesTheRow)
{
    // Same row, same destination, but FU1 never reaches row 1.
    const Program p = assembleString(R"(
        .fus 2
        .reg x
        a: -> b ; nop          || -> c ; nop
        b: -> c ; iadd #1,#0,x || -> c ; iadd #2,#0,x
        c: halt ; store x,#32  || halt ; nop
    )");
    EXPECT_TRUE(lint(p).empty());
}

TEST(SyncCheck, SameRowSameAddressStoreConflict)
{
    const Program p = assembleString(R"(
        .fus 2
        a: halt ; store #1,#64 || halt ; store #2,#64
    )");
    const DiagnosticList diags = lint(p);
    const Diagnostic *d = find(diags, Check::MemWriteConflict);
    ASSERT_NE(d, nullptr) << diags.formatted(&p);
    EXPECT_TRUE(d->isError());
}

TEST(SyncCheck, DistinctStoreAddressesAreFine)
{
    const Program p = assembleString(R"(
        .fus 2
        a: halt ; store #1,#64 || halt ; store #2,#65
    )");
    EXPECT_TRUE(lint(p).empty());
}

TEST(SyncCheck, ThreeFuWaitChainReportsWholeCycle)
{
    // 0 waits on 1, 1 waits on 2, 2 waits on 0 — all driving BUSY.
    const Program p = assembleString(R"(
        .fus 3
        s: if ss1 o s ; nop || if ss2 o s ; nop || if ss0 o s ; nop
        o: halt ; nop       || halt ; nop       || halt ; nop
    )");
    const DiagnosticList diags = lint(p);
    const Diagnostic *d = find(diags, Check::CrossStreamDeadlock);
    ASSERT_NE(d, nullptr) << diags.formatted(&p);
    EXPECT_NE(d->message.find("FU0"), std::string::npos);
    EXPECT_NE(d->message.find("FU1"), std::string::npos);
    EXPECT_NE(d->message.find("FU2"), std::string::npos);
    // One report per cycle, not one per member.
    std::size_t n = 0;
    for (const auto &dd : diags.all())
        if (dd.check == Check::CrossStreamDeadlock)
            ++n;
    EXPECT_EQ(n, 1u);
}

} // namespace
} // namespace ximd::analysis
