/**
 * @file
 * Unit tests for the interval value domain (analysis/interval.hh):
 * lattice operations, wrap-sound arithmetic, and the per-class
 * forward analysis with guard refinement.
 */

#include <gtest/gtest.h>

#include "analysis/cfg.hh"
#include "analysis/interval.hh"
#include "asm/assembler.hh"

namespace ximd::analysis {
namespace {

TEST(Interval, LatticeBasics)
{
    const Interval a = Interval::range(0, 4);
    const Interval b = Interval::range(3, 9);
    EXPECT_EQ(Interval::join(a, b), Interval::range(0, 9));
    EXPECT_TRUE(Interval::overlaps(a, b));
    EXPECT_FALSE(Interval::overlaps(Interval::range(0, 2),
                                    Interval::range(3, 4)));
    EXPECT_TRUE(Interval::empty().isEmpty());
    EXPECT_TRUE(Interval::top().isTop());
    EXPECT_TRUE(Interval::single(7).isSingle());
    EXPECT_TRUE(Interval::single(7).contains(7));
}

TEST(Interval, WideningReachesSentinels)
{
    const Interval prev = Interval::range(0, 4);
    const Interval grown = Interval::range(0, 5);
    const Interval w = Interval::widen(prev, grown);
    EXPECT_GE(w.hi, Interval::kInf);
    EXPECT_EQ(w.lo, 0);
}

TEST(Interval, AddIsWrapSound)
{
    EXPECT_EQ(Interval::single(3).add(Interval::single(4)),
              Interval::single(7));
    // A sum that can leave int32 must go to top, because the machine
    // wraps mod 2^32 and the wrapped value can be anything.
    const Interval big = Interval::single(2147483647);
    EXPECT_TRUE(big.add(Interval::single(1)).isTop());
    EXPECT_EQ(Interval::single(5).sub(Interval::single(2)),
              Interval::single(3));
}

ClassIntervalAnalysis
analyze(const Program &prog, const ProgramCfg &cfg,
        std::vector<FuId> members)
{
    return ClassIntervalAnalysis(
        prog, cfg.streams[members.front()], members,
        externallyWrittenRegs(prog, cfg, members));
}

TEST(ClassIntervals, ConstantPropagatesAndDecidesCompare)
{
    const Program prog = assembleString(".fus 1\n"
                                        ".reg a 0\n"
                                        "L0: -> L1 ; mov #3,a\n"
                                        "L1: -> L2 ; eq a,#5\n"
                                        "L2: halt ; nop\n");
    const ProgramCfg cfg = buildCfg(prog);
    const ClassIntervalAnalysis ia = analyze(prog, cfg, {0});
    EXPECT_TRUE(ia.visited(1));
    EXPECT_EQ(ia.regAt(1, 0), Interval::single(3));
    const auto outcome = ia.compareOutcome(1, 0);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_FALSE(*outcome);
}

TEST(ClassIntervals, GuardRefinementBoundsLoopCounter)
{
    // i counts 0..4; the backedge is guarded by `eq i,#4`, so inside
    // the loop body i stays in [0,3] and at the exit i is exactly 4.
    const Program prog =
        assembleString(".fus 1\n"
                       ".reg i 0\n"
                       "L0: -> L1 ; mov #0,i\n"
                       "L1: -> L2 ; eq i,#4\n"
                       "L2: if cc0 L4 L3 ; nop\n"
                       "L3: -> L1 ; iadd i,#1,i\n"
                       "L4: halt ; nop\n");
    const ProgramCfg cfg = buildCfg(prog);
    const ClassIntervalAnalysis ia = analyze(prog, cfg, {0});
    EXPECT_EQ(ia.regAt(4, 0), Interval::single(4));
    const Interval body = ia.regAt(3, 0);
    EXPECT_FALSE(body.isTop());
    EXPECT_TRUE(body.contains(0));
    EXPECT_TRUE(body.contains(3));
    EXPECT_FALSE(body.contains(4));
    // The compare itself sees both outcomes, so it is not constant.
    EXPECT_FALSE(ia.compareOutcome(1, 0).has_value());
}

TEST(ClassIntervals, ExternallyWrittenRegisterIsTop)
{
    // FU1 (outside the analyzed class) also writes a, so a foreign
    // write can land between any two cycles: a must stay top.
    const Program prog = assembleString(
        ".fus 2\n"
        ".reg a 0\n"
        "L0: -> L1 ; mov #3,a || -> L1 ; mov #7,a\n"
        "L1: halt ; nop       || halt ; nop\n");
    const ProgramCfg cfg = buildCfg(prog);
    const std::vector<char> ext =
        externallyWrittenRegs(prog, cfg, {0});
    ASSERT_GT(ext.size(), 0u);
    EXPECT_TRUE(ext[0]);
    const ClassIntervalAnalysis ia(prog, cfg.streams[0], {0}, ext);
    EXPECT_TRUE(ia.regAt(1, 0).isTop());
}

TEST(ClassIntervals, LoadProducesTop)
{
    const Program prog = assembleString(".fus 1\n"
                                        ".reg t 0\n"
                                        "L0: -> L1 ; load #8,#0,t\n"
                                        "L1: halt ; nop\n");
    const ProgramCfg cfg = buildCfg(prog);
    const ClassIntervalAnalysis ia = analyze(prog, cfg, {0});
    EXPECT_TRUE(ia.regAt(1, 0).isTop());
    EXPECT_EQ(ia.loadAddr(0, 0), Interval::single(8));
}

} // namespace
} // namespace ximd::analysis
