/**
 * @file
 * Unit tests for the lockstep-class partition (analysis/lockstep.hh):
 * identical columns collapse, divergent control splits, and
 * unreachable rows are ignored.
 */

#include <gtest/gtest.h>

#include "analysis/cfg.hh"
#include "analysis/lockstep.hh"
#include "asm/assembler.hh"

namespace ximd::analysis {
namespace {

LockstepClasses
classesOf(const Program &prog)
{
    const ProgramCfg cfg = buildCfg(prog);
    return computeLockstepClasses(prog, cfg);
}

TEST(Lockstep, IdenticalColumnsFormOneClass)
{
    const Program prog = assembleString(
        ".fus 4\n"
        "L0: -> L1 ; nop        || -> L1 ; nop "
        "   || -> L1 ; nop      || -> L1 ; nop\n"
        "L1: halt ; nop         || halt ; nop "
        "   || halt ; nop       || halt ; nop\n");
    const LockstepClasses cls = classesOf(prog);
    EXPECT_EQ(cls.count(), 1u);
    EXPECT_EQ(cls.members[0].size(), 4u);
    EXPECT_TRUE(cls.sameClass(0, 3));
    EXPECT_EQ(cls.representative(0), 0u);
}

TEST(Lockstep, DivergentControlSplits)
{
    // FU0 branches at L0; FU1 falls straight through.
    const Program prog = assembleString(
        ".fus 2\n"
        "L0: if cc0 L1 L2 ; nop || -> L1 ; nop\n"
        "L1: -> L2 ; nop        || -> L2 ; nop\n"
        "L2: halt ; nop         || halt ; nop\n");
    const LockstepClasses cls = classesOf(prog);
    EXPECT_EQ(cls.count(), 2u);
    EXPECT_FALSE(cls.sameClass(0, 1));
    EXPECT_EQ(cls.classOf[0], 0);
    EXPECT_EQ(cls.classOf[1], 1);
}

TEST(Lockstep, UnreachableDifferenceDoesNotSplit)
{
    // Both columns halt at row 0; their row-1 control fields differ
    // but neither FU can reach row 1.
    const Program prog = assembleString(
        ".fus 2\n"
        "L0: halt ; nop   || halt ; nop\n"
        "L1: -> L1 ; nop  || halt ; nop\n");
    const LockstepClasses cls = classesOf(prog);
    EXPECT_EQ(cls.count(), 1u);
    EXPECT_TRUE(cls.sameClass(0, 1));
}

TEST(Lockstep, PartitionCoversEveryFu)
{
    const Program prog = assembleString(
        ".fus 3\n"
        "L0: -> L1 ; nop  || if cc1 L1 L0 ; nop || -> L1 ; nop\n"
        "L1: halt ; nop   || halt ; nop         || halt ; nop\n");
    const LockstepClasses cls = classesOf(prog);
    EXPECT_EQ(cls.count(), 2u);
    std::size_t total = 0;
    for (const auto &m : cls.members)
        total += m.size();
    EXPECT_EQ(total, 3u);
    EXPECT_TRUE(cls.sameClass(0, 2));
    EXPECT_FALSE(cls.sameClass(0, 1));
}

} // namespace
} // namespace ximd::analysis
