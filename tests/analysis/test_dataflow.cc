#include "analysis/dataflow.hh"

#include <string>

#include <gtest/gtest.h>

#include "asm/assembler.hh"

#ifndef XIMD_SOURCE_DIR
#define XIMD_SOURCE_DIR "."
#endif

namespace ximd::analysis {
namespace {

DiagnosticList
lint(const Program &p)
{
    const ProgramCfg cfg = buildCfg(p);
    const DataflowResult df = runDataflow(p, cfg);
    DiagnosticList diags;
    checkDataflow(p, cfg, df, diags);
    diags.sort();
    return diags;
}

bool
has(const DiagnosticList &diags, Check c)
{
    for (const auto &d : diags.all())
        if (d.check == c)
            return true;
    return false;
}

TEST(Dataflow, MustDefinedSurvivesLoopBackEdge)
{
    // Regression: the loop back edge into `top` must not destroy the
    // definedness established before the loop (must-analysis needs
    // TOP initialization, not bottom).
    const Program p = assembleString(R"(
        .fus 1
        .reg c
        .init c 3
        top:  -> test ; isub c,#1,c
        test: -> br   ; eq c,#0
        br:   if cc0 out top ; nop
        out:  halt ; store c,#32
    )");
    const DiagnosticList diags = lint(p);
    EXPECT_TRUE(diags.empty()) << diags.formatted(&p);
}

TEST(Dataflow, ReadBeforeWriteOnSomePathFlagged)
{
    // The cc0-false arm reaches `use` without writing x.
    const Program p = assembleString(R"(
        .fus 1
        .reg x
        .reg y
        .init y 1
        e:   -> br  ; eq y,#0
        br:  if cc0 def use ; nop
        def: -> use ; iadd #5,#0,x
        use: halt   ; store x,#32
    )");
    const DiagnosticList diags = lint(p);
    ASSERT_TRUE(has(diags, Check::ReadUninit)) << diags.formatted(&p);
    for (const auto &d : diags.all())
        if (d.check == Check::ReadUninit) {
            // Registers power up as zero, so the path-sensitive
            // case is a warning, not an error.
            EXPECT_FALSE(d.isError());
            EXPECT_EQ(d.row, 3u);
            EXPECT_NE(d.message.find("some path"),
                      std::string::npos);
        }
}

TEST(Dataflow, NeverWrittenAnywhereGetsStrongerMessage)
{
    const Program p = assembleString(R"(
        .fus 1
        .reg x
        go: halt ; store x,#32
    )");
    const DiagnosticList diags = lint(p);
    ASSERT_EQ(diags.errorCount(), 1u) << diags.formatted(&p);
    EXPECT_EQ(diags.all()[0].check, Check::ReadUninit);
    EXPECT_NE(diags.all()[0].message.find("never initialized"),
              std::string::npos);
}

TEST(Dataflow, InitializedRegisterIsDefined)
{
    const Program p = assembleString(R"(
        .fus 1
        .reg x
        .init x 7
        go: halt ; store x,#32
    )");
    EXPECT_TRUE(lint(p).empty());
}

TEST(Dataflow, CrossStreamWriteAssumedDefined)
{
    // FU1 produces x; FU0 consumes it. The analysis does not model
    // cross-stream ordering, so this must pass (conservatively).
    const Program p = assembleString(R"(
        .fus 2
        .reg x
        a: -> b ; nop          || -> b ; iadd #5,#0,x
        b: halt ; store x,#32  || halt ; nop
    )");
    EXPECT_TRUE(lint(p).empty());
}

TEST(Dataflow, BranchOnSameCycleCompareFlagged)
{
    // CCs are registered: the branch reads the beginning-of-cycle
    // value, so the row's own compare cannot satisfy it.
    const Program p = assembleString(R"(
        .fus 1
        .reg x
        .init x 0
        a: if cc0 b a ; eq x,#0
        b: halt ; nop
    )");
    const DiagnosticList diags = lint(p);
    ASSERT_EQ(diags.errorCount(), 1u) << diags.formatted(&p);
    EXPECT_EQ(diags.all()[0].check, Check::CcSameCycleRead);
}

TEST(Dataflow, CompareInPriorRowSatisfiesBranch)
{
    const Program p = assembleString(R"(
        .fus 1
        .reg x
        .init x 0
        a: -> b ; eq x,#0
        b: if cc0 c a ; nop
        c: halt ; nop
    )");
    EXPECT_TRUE(lint(p).empty());
}

TEST(Dataflow, BranchOnForeignCcNeverSetFlagged)
{
    // FU1 never executes a compare, yet FU0 branches on cc1.
    const Program p = assembleString(R"(
        .fus 2
        a: if cc1 b a ; nop || -> b ; nop
        b: halt ; nop       || halt ; nop
    )");
    const DiagnosticList diags = lint(p);
    ASSERT_TRUE(has(diags, Check::CcNeverSet)) << diags.formatted(&p);
    for (const auto &d : diags.all()) {
        if (d.check == Check::CcNeverSet) {
            EXPECT_NE(d.message.find("never executes a compare"),
                      std::string::npos);
        }
    }
}

TEST(Dataflow, BadCcIndexFlagged)
{
    // The assembler rejects cc >= width, so build the row by hand.
    Program p(1);
    p.addRow(InstRow(1, Parcel(ControlOp::onCc(5, 1, 0),
                               DataOp::nop())));
    p.addRow(InstRow(1, Parcel(ControlOp::halt(), DataOp::nop())));
    const DiagnosticList diags = lint(p);
    ASSERT_TRUE(has(diags, Check::BadCcIndex)) << diags.formatted(&p);
}

TEST(Dataflow, OverwrittenBeforeReadWarns)
{
    // Registers without symbolic names are pure scratch; a value
    // clobbered on every path before any read is a dead write.
    Program p = assembleString(R"(
        .fus 1
        a: -> b ; iadd #1,#0,r9
        b: -> c ; iadd #2,#0,r9
        c: halt ; store r9,#32
    )");
    const DiagnosticList diags = lint(p);
    ASSERT_EQ(diags.size(), 1u) << diags.formatted(&p);
    EXPECT_EQ(diags.all()[0].check, Check::DeadWrite);
    EXPECT_EQ(diags.all()[0].severity, Severity::Warning);
    EXPECT_EQ(diags.all()[0].row, 0u);
}

TEST(Dataflow, UnreadUnnamedResultWarns)
{
    const Program p = assembleString(R"(
        .fus 1
        a: halt ; iadd #1,#2,r9
    )");
    const DiagnosticList diags = lint(p);
    ASSERT_EQ(diags.size(), 1u) << diags.formatted(&p);
    EXPECT_EQ(diags.all()[0].check, Check::WriteNeverRead);
    EXPECT_EQ(diags.all()[0].severity, Severity::Warning);
}

TEST(Dataflow, NamedResultIsObservableNotDead)
{
    // `min`-style outputs: named registers are read by the harness.
    const Program p = assembleString(R"(
        .fus 1
        .reg out
        a: halt ; iadd #1,#2,out
    )");
    EXPECT_TRUE(lint(p).empty());
}

// ---- The paper's MINMAX (Example 2), assembled from the shipped
// ---- listing: the canonical mixed-stream dataflow workout.

class MinmaxDataflow : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prog_ = assembleFile(std::string(XIMD_SOURCE_DIR) +
                             "/examples/programs/minmax.ximd");
        cfg_ = buildCfg(prog_);
        df_ = runDataflow(prog_, cfg_);
    }

    InstAddr
    rowOf(const char *label) const
    {
        auto a = prog_.label(label);
        EXPECT_TRUE(a.has_value()) << label;
        return a.value_or(0);
    }

    Program prog_{1};
    ProgramCfg cfg_;
    DataflowResult df_;
};

TEST_F(MinmaxDataflow, Clean)
{
    DiagnosticList diags;
    checkDataflow(prog_, cfg_, df_, diags);
    EXPECT_TRUE(diags.empty()) << diags.formatted(&prog_);
}

TEST_F(MinmaxDataflow, TzDefinedAtLoopHeadDespiteBackEdge)
{
    // FU0 loads tz at L00 and re-loads it at L03; the L05 back edge
    // into L02 must keep it defined at every loop row.
    const RegId tz = prog_.regByName("tz").value();
    for (const char *label : {"L01", "L02", "L03", "L05"})
        EXPECT_TRUE(df_.streams[0].regIn[rowOf(label)][tz]) << label;
}

TEST_F(MinmaxDataflow, CrossStreamMinMaxSeededAsDefined)
{
    // FU0 reads `min` (written only by FU2) at L05; the cross-stream
    // seed makes it defined everywhere in FU0's stream.
    const RegId min = prog_.regByName("min").value();
    EXPECT_TRUE(df_.writtenBy[2][min]);
    EXPECT_FALSE(df_.writtenBy[0][min]);
    EXPECT_TRUE(df_.streams[0].regIn[rowOf("L05")][min]);
}

TEST_F(MinmaxDataflow, CcSummariesMatchListing)
{
    // FU0/FU1/FU2 all execute compares; FU3's column never does.
    EXPECT_TRUE(df_.ccEverSet[0]);
    EXPECT_TRUE(df_.ccEverSet[1]);
    EXPECT_TRUE(df_.ccEverSet[2]);
    EXPECT_FALSE(df_.ccEverSet[3]);
}

TEST_F(MinmaxDataflow, LivenessTracksLoopCarriedValues)
{
    // tz is read at L05 (lt tz,min) and by other FUs, so it is live
    // into L05 for FU0; the loop counter k is live around FU1's loop.
    const RegId tz = prog_.regByName("tz").value();
    const RegId k = prog_.regByName("k").value();
    EXPECT_TRUE(df_.streams[0].liveIn[rowOf("L05")][tz]);
    EXPECT_TRUE(df_.streams[1].liveIn[rowOf("L03")][k]);
}

} // namespace
} // namespace ximd::analysis
