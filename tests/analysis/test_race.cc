/**
 * @file
 * Tests for the cross-stream race engine (analysis/race.hh).
 *
 * Two corpora pin down the two sides of the engine's contract:
 *
 *  - precision: everything the scheduler / workload generators emit —
 *    the built-in workload grid and 200 random lockstep programs —
 *    analyzes with zero findings;
 *  - the bad corpus: each examples/programs/{race_mem, race_cc_sync,
 *    lost_signal, unbounded_wait}.ximd is flagged with exactly the
 *    expected diagnostic kind.
 */

#include <string>

#include <gtest/gtest.h>

#include "analysis/race.hh"
#include "asm/assembler.hh"
#include "farm/suite.hh"
#include "workloads/randprog.hh"

#ifndef XIMD_SOURCE_DIR
#error "XIMD_SOURCE_DIR must point at the repo root"
#endif

namespace ximd::analysis {
namespace {

Program
example(const std::string &name)
{
    return assembleFile(std::string(XIMD_SOURCE_DIR) +
                        "/examples/programs/" + name);
}

bool
hasCheck(const RaceReport &report, Check check)
{
    for (const Diagnostic &d : report.diags.all())
        if (d.check == check)
            return true;
    return false;
}

TEST(RaceEngine, MemRaceExampleFlagged)
{
    const RaceReport r = analyzeRaces(example("race_mem.ximd"));
    EXPECT_FALSE(r.baseErrors);
    EXPECT_TRUE(hasCheck(r, Check::MemRace));
    EXPECT_GT(r.diags.errorCount(), 0u);
}

TEST(RaceEngine, CcRaceExampleFlagged)
{
    const RaceReport r = analyzeRaces(example("race_cc_sync.ximd"));
    EXPECT_FALSE(r.baseErrors);
    EXPECT_TRUE(hasCheck(r, Check::CcRace));
}

TEST(RaceEngine, LostSignalExampleFlagged)
{
    const RaceReport r = analyzeRaces(example("lost_signal.ximd"));
    EXPECT_FALSE(r.baseErrors);
    EXPECT_TRUE(hasCheck(r, Check::LostSignal));
}

TEST(RaceEngine, UnboundedWaitExampleFlagged)
{
    const RaceReport r = analyzeRaces(example("unbounded_wait.ximd"));
    EXPECT_FALSE(r.baseErrors);
    EXPECT_TRUE(hasCheck(r, Check::UnboundedWait));
}

TEST(RaceEngine, DiagnosticsCarryBothSitesAndLines)
{
    const RaceReport r = analyzeRaces(example("race_mem.ximd"));
    ASSERT_FALSE(r.diags.empty());
    const Diagnostic &d = r.diags.all().front();
    EXPECT_EQ(d.check, Check::MemRace);
    EXPECT_GE(d.fu, 0);
    EXPECT_GE(d.otherFu, 0);
    EXPECT_GT(d.line, 0u);
    EXPECT_GT(d.otherLine, 0u);
    EXPECT_NE(d.fu, d.otherFu);
}

TEST(RaceEngine, GoodExamplesAnalyzeClean)
{
    for (const char *name : {"minmax.ximd", "barrier.ximd"}) {
        const RaceReport r = analyzeRaces(example(name));
        EXPECT_TRUE(r.clean()) << name << ":\n"
                               << r.diags.formatted();
    }
    // minmax deliberately reads a register the writer is overwriting
    // in the same cycle (the lockstep read-old-value idiom); the
    // engine proves the pair benign and records it as covered.
    const RaceReport minmax = analyzeRaces(example("minmax.ximd"));
    EXPECT_FALSE(minmax.covered.empty());
}

TEST(RaceEngine, BaseErrorsSkipRaceAnalysis)
{
    // cc_race.ximd fails the base verifier; the race model assumes a
    // structurally valid program, so the engine reports baseErrors
    // and stays silent rather than piling on.
    const RaceReport r = analyzeRaces(example("cc_race.ximd"));
    EXPECT_TRUE(r.baseErrors);
    EXPECT_TRUE(r.diags.empty());
    EXPECT_FALSE(r.clean());
}

TEST(RaceEngine, SyncOrderedHandshakeIsClean)
{
    // FU1 waits for FU0's DONE before loading what FU0 stored: the
    // product automaton proves the store strictly precedes the load.
    const Program prog = assembleString(
        ".fus 2\n"
        ".reg u 0\n"
        "L00: -> L01 ; nop             || if ss0 L01 L00 ; nop\n"
        "L01: -> L02 ; nop             || -> L03 ; nop\n"
        "L02: -> L03 ; store #7,#100   || -> L03 ; nop\n"
        "L03: -> L04 ; nop ; done      || -> L04 ; load #100,#0,u\n"
        "L04: halt ; nop               || halt ; nop\n");
    const RaceReport r = analyzeRaces(prog);
    EXPECT_TRUE(r.clean()) << r.diags.formatted();
}

TEST(RaceEngine, EmptyProgramIsClean)
{
    EXPECT_TRUE(analyzeRaces(Program{1}).clean());
}

TEST(RaceEngine, BudgetExhaustionCoversNotFlags)
{
    RaceOptions opts;
    opts.stateBudget = 1; // force exhaustion on any real product
    const RaceReport r = analyzeRaces(example("race_mem.ximd"), opts);
    EXPECT_TRUE(r.budgetExceeded);
    EXPECT_EQ(r.diags.errorCount(), 0u);
    EXPECT_FALSE(r.covered.empty());
    EXPECT_TRUE(hasCheck(r, Check::RaceBudget));
}

TEST(RaceEngine, SchedulerCorpusIsRaceFree)
{
    for (const farm::RunSpec &spec : farm::builtinSuite()) {
        if (spec.loadError)
            continue;
        ASSERT_TRUE(spec.program);
        const RaceReport r = analyzeRaces(spec.program->program());
        EXPECT_TRUE(r.clean()) << spec.name << ":\n"
                               << r.diags.formatted();
    }
}

TEST(RaceEngine, RandprogCorpusIsRaceFree)
{
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        workloads::RandProgOptions o;
        o.seed = seed;
        o.width = 1 + seed % 8;
        o.rows = 20 + seed % 60;
        o.branchPercent = 10 + seed % 40;
        const Program prog = workloads::randomLockstepProgram(o);
        const RaceReport r = analyzeRaces(prog);
        EXPECT_TRUE(r.clean())
            << "seed " << seed << ":\n"
            << r.diags.formatted();
        // All columns are identical by construction: one class, so
        // there is no class pair to race.
        EXPECT_EQ(r.classes, 1u) << "seed " << seed;
    }
}

} // namespace
} // namespace ximd::analysis
