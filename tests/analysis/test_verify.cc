/**
 * @file
 * Integration contract of the static verifier:
 *
 *  - every shipped good example program verifies cleanly;
 *  - the shipped bad corpus (deadlock.ximd, cc_race.ximd) is
 *    rejected with the advertised diagnostics;
 *  - every program the workload generators and the scheduler
 *    (codegen, modulo pipeliner, tile packer + thread composer) emit
 *    passes analysis::verify with zero errors.
 */

#include "analysis/verify.hh"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "sched/codegen.hh"
#include "sched/compose.hh"
#include "sched/modulo.hh"
#include "sched/packer.hh"
#include "sched/tile.hh"
#include "support/logging.hh"
#include "workloads/bitcount.hh"
#include "workloads/kernels.hh"
#include "workloads/loop12.hh"
#include "workloads/minmax.hh"
#include "workloads/nonblocking.hh"


#ifndef XIMD_SOURCE_DIR
#define XIMD_SOURCE_DIR "."
#endif

namespace ximd::analysis {
namespace {

std::string
examplePath(const char *name)
{
    return std::string(XIMD_SOURCE_DIR) + "/examples/programs/" +
           name;
}

void
expectClean(const Program &p, const std::string &what)
{
    const DiagnosticList diags = analyze(p);
    EXPECT_EQ(diags.errorCount(), 0u)
        << what << ":\n"
        << diags.formatted(&p);
    EXPECT_NO_THROW(verify(p)) << what;
}

bool
hasCheck(const DiagnosticList &diags, Check c)
{
    for (const auto &d : diags.all())
        if (d.check == c)
            return true;
    return false;
}

// ---- Shipped example corpus.

TEST(VerifyExamples, GoodProgramsAreClean)
{
    for (const char *name : {"minmax.ximd", "barrier.ximd"})
        expectClean(assembleFile(examplePath(name)), name);
}

TEST(VerifyExamples, DeadlockCorpusIsRejected)
{
    const Program p = assembleFile(examplePath("deadlock.ximd"));
    const DiagnosticList diags = analyze(p);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(hasCheck(diags, Check::CrossStreamDeadlock))
        << diags.formatted(&p);
    EXPECT_THROW(verify(p), FatalError);
}

TEST(VerifyExamples, CcRaceCorpusIsRejected)
{
    const Program p = assembleFile(examplePath("cc_race.ximd"));
    const DiagnosticList diags = analyze(p);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(hasCheck(diags, Check::CcSameCycleRead))
        << diags.formatted(&p);
    EXPECT_TRUE(hasCheck(diags, Check::RegWriteConflict))
        << diags.formatted(&p);
    EXPECT_THROW(verify(p), FatalError);
}

TEST(VerifyExamples, WarningsDoNotFailVerify)
{
    // An unread scratch register is a warning; verify() must accept.
    const Program p = assembleString(R"(
        .fus 1
        a: halt ; iadd #1,#2,r9
    )");
    const DiagnosticList diags = analyze(p);
    EXPECT_EQ(diags.errorCount(), 0u);
    EXPECT_GT(diags.warningCount(), 0u);
    EXPECT_NO_THROW(verify(p));

    AnalyzeOptions quiet;
    quiet.warnings = false;
    EXPECT_TRUE(analyze(p, quiet).empty());
}

// ---- Workload generators.

TEST(VerifyWorkloads, HandWrittenKernelsAreClean)
{
    const std::vector<SWord> data{5, 3, 4, 7, 1, 9};
    const std::vector<Word> bits{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8};

    expectClean(workloads::minmaxPaper(), "minmaxPaper");
    expectClean(workloads::minmaxPaperData(data), "minmaxPaperData");
    expectClean(workloads::tprocPaper(1, 2, 3, 4), "tprocPaper");
    expectClean(workloads::minmaxXimd(data), "minmaxXimd");
    expectClean(workloads::minmaxVliw(data), "minmaxVliw");
    expectClean(workloads::multiSearchXimd(3, data),
                "multiSearchXimd");
    expectClean(workloads::multiSearchVliw(3, data),
                "multiSearchVliw");
    expectClean(workloads::bitcountXimd(bits), "bitcountXimd");
    expectClean(workloads::bitcountVliwSerial(bits),
                "bitcountVliwSerial");
    expectClean(workloads::bitcountVliwLockstep(bits),
                "bitcountVliwLockstep");
    expectClean(workloads::bitcount1Paper(bits), "bitcount1Paper");
    expectClean(workloads::nonblockingXimd(), "nonblockingXimd");
    expectClean(workloads::lockstepBarrier(), "lockstepBarrier");
    expectClean(workloads::memoryFlagXimd(), "memoryFlagXimd");

    const std::vector<float> y{1.f, 4.f, 9.f, 16.f, 25.f, 36.f};
    expectClean(workloads::loop12Naive(y), "loop12Naive");
    expectClean(workloads::loop12Pipelined(y), "loop12Pipelined");
}

// ---- Scheduler-emitted programs.

/** Thread t: sum k=1..n of (k * mult), stored to its own address. */
sched::IrProgram
makeThread(int t, unsigned n, SWord mult)
{
    sched::IrBuilder b;
    const sched::VregId i = b.newVreg();
    const sched::VregId sum = b.newVreg();
    b.setInit(i, 0);
    b.setInit(sum, 0);
    b.startBlock("loop");
    b.emitTo(i, Opcode::Iadd, sched::IrValue::reg(i),
             sched::IrValue::immInt(1));
    const sched::IrValue scaled =
        b.emit(Opcode::Imult, sched::IrValue::reg(i),
               sched::IrValue::immInt(mult));
    b.emitTo(sum, Opcode::Iadd, sched::IrValue::reg(sum), scaled);
    const int cmp =
        b.emitCompare(Opcode::Eq, sched::IrValue::reg(i),
                      sched::IrValue::immInt(static_cast<SWord>(n)));
    b.branch(cmp, "end", "loop");
    b.startBlock("end");
    b.emitStore(sched::IrValue::reg(sum),
                sched::IrValue::immRaw(2048 + static_cast<Addr>(t)));
    b.halt();
    return b.finish();
}

TEST(VerifySched, CodegenOutputIsCleanAtEveryWidth)
{
    const sched::IrProgram thread = makeThread(0, 10, 3);
    for (FuId w = 1; w <= 4; ++w) {
        sched::CodegenOptions opts;
        opts.width = w;
        expectClean(sched::valueOrFatal(sched::generateCodeChecked(thread, opts)).program,
                    "generateCode width " + std::to_string(w));
    }
}

TEST(VerifySched, PipelinedLoopIsClean)
{
    // Vector scale Z(k) = 3 * A(k), the modulo scheduler's shape.
    sched::PipelineLoop loop;
    loop.numLocals = 3;
    loop.tripCount = 20;
    loop.body = {
        {Opcode::Load, sched::PipeVal::immRaw(64),
         sched::PipeVal::induction(), 0},
        {Opcode::Iadd, sched::PipeVal::induction(),
         sched::PipeVal::immRaw(128), 2},
        {Opcode::Imult, sched::PipeVal::localVal(0),
         sched::PipeVal::immInt(3), 1},
        {Opcode::Store, sched::PipeVal::localVal(1),
         sched::PipeVal::localVal(2), -1},
    };
    for (FuId w : {6, 8})
        expectClean(sched::valueOrFatal(sched::pipelineLoopChecked(loop, w)),
                    "pipelineLoop width " + std::to_string(w));
}

TEST(VerifySched, ComposedMultiThreadProgramIsClean)
{
    std::vector<sched::IrProgram> threads;
    for (int t = 0; t < 3; ++t)
        threads.push_back(makeThread(t, 6 + 2 * t, t + 1));

    const FuId width = 4;
    const auto sets = sched::generateTiles(threads, width);
    for (auto pack : {sched::packStacked, sched::packFirstFit,
                      sched::packSkyline}) {
        const sched::PackResult packing = pack(sets, width);
        const sched::Composed composed =
            sched::valueOrFatal(sched::composeThreadsChecked(
                threads, packing, width,
                sched::ComposeOptions{.regsPerThread = 8}));
        expectClean(composed.program, "composed program");
    }
}

} // namespace
} // namespace ximd::analysis
