#include "analysis/cfg.hh"

#include <gtest/gtest.h>

#include "asm/assembler.hh"

namespace ximd::analysis {
namespace {

/**
 * Two streams with different shapes over one grid: FU0 runs a
 * countdown loop (diamond back edge), FU1 goes straight to the
 * barrier row and halts.
 */
const char *kTwoStream = R"(
    .fus 2
    .reg c 0
    .init c 3
    top:  -> body ; nop              || -> join ; nop
    body: -> test ; isub c,#1,c      || halt ; nop
    test: -> br   ; eq c,#0          || halt ; nop
    br:   if cc0 join top ; nop      || halt ; nop
    join: halt ; store c,#32         || halt ; nop
)";

TEST(Cfg, SuccessorsFollowTwoTargetBranches)
{
    const Program p = assembleString(kTwoStream);
    const ProgramCfg cfg = buildCfg(p);
    ASSERT_EQ(cfg.streams.size(), 2u);

    const StreamCfg &s0 = cfg.streams[0];
    // Unconditional: one successor.
    ASSERT_EQ(s0.succs[0].size(), 1u);
    EXPECT_EQ(s0.succs[0][0], 1u);
    // Conditional: both targets, t1=join(4), t2=top(0).
    ASSERT_EQ(s0.succs[3].size(), 2u);
    EXPECT_EQ(s0.succs[3][0], 4u);
    EXPECT_EQ(s0.succs[3][1], 0u);
    // Halt: no successors.
    EXPECT_TRUE(s0.succs[4].empty());
}

TEST(Cfg, PredecessorsMirrorSuccessors)
{
    const Program p = assembleString(kTwoStream);
    const ProgramCfg cfg = buildCfg(p);
    const StreamCfg &s0 = cfg.streams[0];

    // top (row 0) is entered from the back edge of br (row 3).
    ASSERT_EQ(s0.preds[0].size(), 1u);
    EXPECT_EQ(s0.preds[0][0], 3u);
    // join (row 4) only from br.
    ASSERT_EQ(s0.preds[4].size(), 1u);
    EXPECT_EQ(s0.preds[4][0], 3u);
}

TEST(Cfg, ReachabilityIsPerColumn)
{
    const Program p = assembleString(kTwoStream);
    const ProgramCfg cfg = buildCfg(p);

    // FU0 walks every row.
    for (InstAddr r = 0; r < p.size(); ++r)
        EXPECT_TRUE(cfg.executable(r, 0)) << "row " << r;

    // FU1 jumps straight to join: the loop body is its dead zone.
    EXPECT_TRUE(cfg.executable(0, 1));
    EXPECT_FALSE(cfg.executable(1, 1));
    EXPECT_FALSE(cfg.executable(2, 1));
    EXPECT_FALSE(cfg.executable(3, 1));
    EXPECT_TRUE(cfg.executable(4, 1));

    // Out-of-range queries are simply not executable.
    EXPECT_FALSE(cfg.executable(99, 0));
    EXPECT_FALSE(cfg.executable(0, 7));
}

TEST(Cfg, BadBranchTargetIsDroppedAndDiagnosed)
{
    // The assembler refuses out-of-range targets, so build by hand.
    Program p(1);
    p.addRow(InstRow(1, Parcel(ControlOp::jump(17), DataOp::nop())));
    p.addRow(InstRow(1, Parcel(ControlOp::halt(), DataOp::nop())));

    const ProgramCfg cfg = buildCfg(p);
    EXPECT_TRUE(cfg.streams[0].succs[0].empty());

    DiagnosticList diags;
    checkCfg(p, cfg, diags);
    ASSERT_EQ(diags.errorCount(), 1u);
    EXPECT_EQ(diags.all()[0].check, Check::BadBranchTarget);
    EXPECT_EQ(diags.all()[0].row, 0u);
}

TEST(Cfg, UnreachableNontrivialParcelWarns)
{
    // Row 1 is skipped by FU0's jump but holds a real data op.
    Program p(1);
    p.addRow(InstRow(1, Parcel(ControlOp::jump(2), DataOp::nop())));
    p.addRow(InstRow(
        1, Parcel(ControlOp::halt(),
                  DataOp::make(Opcode::Iadd, Operand::immInt(1),
                               Operand::immInt(2), 0))));
    p.addRow(InstRow(1, Parcel(ControlOp::halt(), DataOp::nop())));

    const ProgramCfg cfg = buildCfg(p);
    DiagnosticList diags;
    checkCfg(p, cfg, diags);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags.all()[0].check, Check::UnreachableParcel);
    EXPECT_EQ(diags.all()[0].severity, Severity::Warning);
    EXPECT_EQ(diags.all()[0].row, 1u);
}

TEST(Cfg, UnreachableTrivialFillerIsSilent)
{
    // Composed programs pad with halt/nop filler; that is expected.
    Program p(1);
    p.addRow(InstRow(1, Parcel(ControlOp::jump(2), DataOp::nop())));
    p.addRow(InstRow(1, Parcel(ControlOp::halt(), DataOp::nop())));
    p.addRow(InstRow(1, Parcel(ControlOp::halt(), DataOp::nop())));

    const ProgramCfg cfg = buildCfg(p);
    DiagnosticList diags;
    checkCfg(p, cfg, diags);
    EXPECT_TRUE(diags.empty()) << diags.formatted(&p);
}

} // namespace
} // namespace ximd::analysis
