#include "core/ximd_machine.hh"

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "support/logging.hh"

namespace ximd {
namespace {

XimdMachine
makeMachine(const char *src, MachineConfig cfg = {})
{
    return XimdMachine(assembleString(src), cfg);
}

TEST(XimdMachine, TrivialProgramHalts)
{
    auto m = makeMachine(".fus 2\nhalt || halt\n");
    const RunResult r = m.run();
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.cycles, 1u);
    EXPECT_TRUE(m.allHalted());
}

TEST(XimdMachine, EmptyProgramRejected)
{
    EXPECT_THROW(XimdMachine(Program(2)), FatalError);
}

TEST(XimdMachine, DataOpWritesRegister)
{
    auto m = makeMachine(
        ".fus 1\n.reg x\n"
        "halt ; iadd #2,#3,x\n");
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(m.readRegByName("x"), 5u);
}

TEST(XimdMachine, EndOfCycleCommitAllowsRegisterSwap)
{
    // Both FUs read the other's register in the same cycle: classic
    // WAR freedom under beginning-of-cycle reads.
    auto m = makeMachine(
        ".fus 2\n.reg a 0\n.reg b 1\n"
        ".init a 11\n.init b 22\n"
        "halt ; mov b,a || halt ; mov a,b\n");
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(m.readRegByName("a"), 22u);
    EXPECT_EQ(m.readRegByName("b"), 11u);
}

TEST(XimdMachine, BranchReadsPreviousCycleCondCode)
{
    // Cycle 0 sets cc0 = TRUE; the branch in the same row as a new
    // compare must use the OLD value.
    auto m = makeMachine(
        ".fus 1\n.reg x\n"
        "-> 1 ; eq #1,#1\n"          // cc0 := T (end of cycle 0)
        "if cc0 2 3 ; eq #1,#2\n"    // uses T -> 2; cc0 := F
        "if cc0 4 3 ; nop\n"         // uses F -> 3
        "halt ; iadd #9,#0,x\n"      // success path
        "halt ; iadd #7,#0,x\n");    // failure path
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(m.readRegByName("x"), 9u);
}

TEST(XimdMachine, IndependentStreamsRunConcurrently)
{
    // FU0 loops 3 times; FU1 halts immediately; FU0's loop continues.
    auto m = makeMachine(
        ".fus 2\n.reg i\n.reg lim\n.init lim 3\n"
        "-> 1 ; iadd #0,#0,i || halt ; nop\n"
        "L: -> 2 ; iadd i,#1,i || halt ; nop\n"
        "-> 3 ; eq i,lim || halt ; nop\n"
        "if cc0 4 1 ; nop || halt ; nop\n"
        "halt ; nop || halt ; nop\n");
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(m.readRegByName("i"), 3u);
    EXPECT_TRUE(m.halted(1));
}

TEST(XimdMachine, MemoryRoundTrip)
{
    auto m = makeMachine(
        ".fus 1\n.reg x\n"
        ".word 100 77\n"
        "-> 1 ; load #100,#0,x\n"
        "-> 2 ; iadd x,#1,x\n"
        "halt ; store x,#101\n");
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(m.peekMem(101), 78u);
}

TEST(XimdMachine, RegisterWriteConflictFaults)
{
    auto m = makeMachine(
        ".fus 2\n"
        "halt ; iadd #1,#0,r5 || halt ; iadd #2,#0,r5\n");
    const RunResult r = m.run();
    EXPECT_EQ(r.reason, StopReason::Fault);
    EXPECT_NE(r.faultMessage.find("write conflict"), std::string::npos);
    EXPECT_TRUE(m.faulted());
}

TEST(XimdMachine, MemoryWriteConflictFaults)
{
    auto m = makeMachine(
        ".fus 2\n"
        "halt ; store #1,#50 || halt ; store #2,#50\n");
    EXPECT_EQ(m.run().reason, StopReason::Fault);
}

TEST(XimdMachine, ParallelStoresToDistinctAddressesOk)
{
    auto m = makeMachine(
        ".fus 2\n"
        "halt ; store #1,#50 || halt ; store #2,#51\n");
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(m.peekMem(50), 1u);
    EXPECT_EQ(m.peekMem(51), 2u);
}

TEST(XimdMachine, DivideByZeroFaults)
{
    auto m = makeMachine(".fus 1\nhalt ; idiv #1,#0,r0\n");
    const RunResult r = m.run();
    EXPECT_EQ(r.reason, StopReason::Fault);
    EXPECT_NE(r.faultMessage.find("divide by zero"), std::string::npos);
}

TEST(XimdMachine, InfiniteLoopHitsMaxCycles)
{
    auto m = makeMachine(".fus 1\nL: -> L ; nop\n");
    const RunResult r = m.run(100);
    EXPECT_EQ(r.reason, StopReason::MaxCycles);
    EXPECT_EQ(r.cycles, 100u);
    EXPECT_FALSE(m.allHalted());
}

TEST(XimdMachine, RunResumesAfterMaxCycles)
{
    auto m = makeMachine(
        ".fus 1\n.reg i\n.init i 0\n"
        "L: -> 1 ; iadd i,#1,i\n"
        "-> 2 ; eq i,#10\n"
        "if cc0 3 0 ; nop\n"
        "halt\n");
    RunResult r = m.run(5);
    EXPECT_EQ(r.reason, StopReason::MaxCycles);
    r = m.run(); // continue where we stopped
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(m.readRegByName("i"), 10u);
}

TEST(XimdMachine, BarrierJoinsStreams)
{
    // FU0 takes a 3-cycle detour; FU1 arrives at the barrier first and
    // spins until FU0 signals DONE.
    auto m = makeMachine(
        ".fus 2\n.reg x\n"
        "-> 1 ; nop           || -> 3 ; nop\n"
        "-> 2 ; nop           || halt ; nop\n" // FU1 never here
        "-> 3 ; nop           || halt ; nop\n"
        "BAR: if all 4 3 ; nop ; done || if all 4 3 ; nop ; done\n"
        "halt ; iadd #1,#0,x  || halt ; nop\n");
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(m.readRegByName("x"), 1u);
    // FU1 reached the barrier at cycle 1, FU0 at cycle 3; they leave
    // together at the end of cycle 3 and halt in cycle 4.
    EXPECT_EQ(m.cycle(), 5u);
    EXPECT_GE(m.stats().busyWaitCycles(), 2u);
}

TEST(XimdMachine, HaltedFuReadsDoneOnSyncBus)
{
    // FU1 halts immediately; FU0's ALL barrier must not deadlock.
    auto m = makeMachine(
        ".fus 2\n"
        "if all 1 0 ; nop ; done || halt ; nop\n"
        "halt ; nop || halt ; nop\n");
    const RunResult r = m.run(50);
    EXPECT_TRUE(r.ok());
}

TEST(XimdMachine, RegisteredSyncCostsOneExtraCycle)
{
    const char *src =
        ".fus 2\n"
        "BAR: if all 1 0 ; nop ; done || if all 1 0 ; nop ; done\n"
        "halt || halt\n";
    MachineConfig comb;
    auto m1 = makeMachine(src, comb);
    EXPECT_TRUE(m1.run().ok());

    MachineConfig reg;
    reg.registeredSync = true;
    auto m2 = makeMachine(src, reg);
    EXPECT_TRUE(m2.run().ok());

    EXPECT_EQ(m2.cycle(), m1.cycle() + 1);
}

TEST(XimdMachine, StatsCountOpsAndClasses)
{
    auto m = makeMachine(
        ".fus 2\n"
        "-> 1 ; iadd #1,#2,r0 || -> 1 ; lt #1,#2\n"
        "halt ; load #0,#0,r1 || halt ; nop\n");
    EXPECT_TRUE(m.run().ok());
    const RunStats &s = m.stats();
    EXPECT_EQ(s.cycles(), 2u);
    EXPECT_EQ(s.parcels(), 4u);
    EXPECT_EQ(s.byClass(OpClass::IntAlu), 1u);
    EXPECT_EQ(s.byClass(OpClass::IntCompare), 1u);
    EXPECT_EQ(s.byClass(OpClass::MemLoad), 1u);
    EXPECT_EQ(s.nops(), 1u);
    EXPECT_EQ(s.dataOps(), 3u);
}

TEST(XimdMachine, DeviceAttachAndIo)
{
    auto m = makeMachine(
        ".fus 1\n.reg v\n"
        "POLL: -> 1 ; load #40,#0,v\n"
        "-> 2 ; eq v,#0\n"
        "if cc0 0 3 ; nop\n"
        "halt ; store v,#41\n");
    ScriptedInputPort in("in");
    OutputPort out("out");
    in.schedule(7, 99);
    m.attachDevice(40, 40, &in);
    m.attachDevice(41, 41, &out);
    EXPECT_TRUE(m.run().ok());
    ASSERT_EQ(out.records().size(), 1u);
    EXPECT_EQ(out.records()[0].value, 99u);
    EXPECT_GT(in.emptyPolls(), 0u);
}

TEST(XimdMachine, PcOutOfProgramFaultIsImpossibleByValidation)
{
    // validate() runs in the constructor; a bad target never loads.
    Program p(1);
    p.addUniformRow(Parcel(ControlOp::jump(3), DataOp::nop()));
    EXPECT_THROW(XimdMachine{p}, FatalError);
}

TEST(XimdMachine, TraceRecordingRespectsConfig)
{
    MachineConfig cfg;
    cfg.recordTrace = true;
    auto m = makeMachine(".fus 1\n-> 1 ; nop\nhalt\n", cfg);
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(m.trace().size(), 2u);

    auto m2 = makeMachine(".fus 1\n-> 1 ; nop\nhalt\n");
    EXPECT_TRUE(m2.run().ok());
    EXPECT_TRUE(m2.trace().empty());
}

} // namespace
} // namespace ximd
