#include "core/stats.hh"

#include <gtest/gtest.h>

namespace ximd {
namespace {

TEST(Stats, StartsAtZero)
{
    RunStats s(4);
    EXPECT_EQ(s.cycles(), 0u);
    EXPECT_EQ(s.parcels(), 0u);
    EXPECT_EQ(s.dataOps(), 0u);
    EXPECT_EQ(s.utilization(), 0.0);
    EXPECT_EQ(s.mips(85.0), 0.0);
}

TEST(Stats, OpClassAccounting)
{
    RunStats s(2);
    s.countParcel(OpClass::IntAlu);
    s.countParcel(OpClass::Nop);
    s.countParcel(OpClass::FloatAlu);
    s.countParcel(OpClass::FloatCompare);
    EXPECT_EQ(s.parcels(), 4u);
    EXPECT_EQ(s.nops(), 1u);
    EXPECT_EQ(s.dataOps(), 3u);
    EXPECT_EQ(s.flops(), 2u);
}

TEST(Stats, Utilization)
{
    RunStats s(4);
    s.countCycle();
    s.countCycle();
    for (int i = 0; i < 6; ++i)
        s.countParcel(OpClass::IntAlu);
    for (int i = 0; i < 2; ++i)
        s.countParcel(OpClass::Nop);
    // 6 useful ops over 2 cycles * 4 FUs.
    EXPECT_DOUBLE_EQ(s.utilization(), 0.75);
}

TEST(Stats, MipsAtPrototypeCycleTime)
{
    // Peak: 8 useful ops per 85ns cycle => ~94.1 MIPS, the paper's
    // "in excess of 90 MIPS".
    RunStats s(8);
    s.countCycle();
    for (int i = 0; i < 8; ++i)
        s.countParcel(OpClass::IntAlu);
    EXPECT_NEAR(s.mips(85.0), 94.1, 0.1);
}

TEST(Stats, MflopsCountsFloatOpsOnly)
{
    RunStats s(8);
    s.countCycle();
    for (int i = 0; i < 4; ++i)
        s.countParcel(OpClass::FloatAlu);
    for (int i = 0; i < 4; ++i)
        s.countParcel(OpClass::IntAlu);
    EXPECT_NEAR(s.mflops(85.0), 47.06, 0.1);
    EXPECT_NEAR(s.mips(85.0), 94.1, 0.1);
}

TEST(Stats, BranchesAndBusyWait)
{
    RunStats s(2);
    s.countConditionalBranch(true);
    s.countConditionalBranch(false);
    s.countConditionalBranch(true);
    s.countBusyWait();
    EXPECT_EQ(s.conditionalBranches(), 3u);
    EXPECT_EQ(s.takenBranches(), 2u);
    EXPECT_EQ(s.busyWaitCycles(), 1u);
}

TEST(Stats, PartitionHistogramAndMeanStreams)
{
    RunStats s(4);
    s.countPartition(1);
    s.countPartition(1);
    s.countPartition(3);
    s.countPartition(3);
    EXPECT_EQ(s.partitionHistogram().at(1), 2u);
    EXPECT_EQ(s.partitionHistogram().at(3), 2u);
    EXPECT_DOUBLE_EQ(s.meanStreams(), 2.0);
}

TEST(Stats, FormattedMentionsKeyCounters)
{
    RunStats s(2);
    s.countCycle();
    s.countParcel(OpClass::IntAlu);
    s.countPartition(2);
    const std::string f = s.formatted();
    EXPECT_NE(f.find("cycles"), std::string::npos);
    EXPECT_NE(f.find("partition histogram"), std::string::npos);
}

} // namespace
} // namespace ximd
