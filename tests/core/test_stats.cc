#include "core/stats.hh"

#include <gtest/gtest.h>

namespace ximd {
namespace {

TEST(Stats, StartsAtZero)
{
    RunStats s(4);
    EXPECT_EQ(s.cycles(), 0u);
    EXPECT_EQ(s.parcels(), 0u);
    EXPECT_EQ(s.dataOps(), 0u);
    EXPECT_EQ(s.utilization(), 0.0);
    EXPECT_EQ(s.mips(85.0), 0.0);
}

TEST(Stats, OpClassAccounting)
{
    RunStats s(2);
    s.countParcel(OpClass::IntAlu);
    s.countParcel(OpClass::Nop);
    s.countParcel(OpClass::FloatAlu);
    s.countParcel(OpClass::FloatCompare);
    EXPECT_EQ(s.parcels(), 4u);
    EXPECT_EQ(s.nops(), 1u);
    EXPECT_EQ(s.dataOps(), 3u);
    EXPECT_EQ(s.flops(), 2u);
}

TEST(Stats, Utilization)
{
    RunStats s(4);
    s.countCycle();
    s.countCycle();
    for (int i = 0; i < 6; ++i)
        s.countParcel(OpClass::IntAlu);
    for (int i = 0; i < 2; ++i)
        s.countParcel(OpClass::Nop);
    // 6 useful ops over 2 cycles * 4 FUs.
    EXPECT_DOUBLE_EQ(s.utilization(), 0.75);
}

TEST(Stats, MipsAtPrototypeCycleTime)
{
    // Peak: 8 useful ops per 85ns cycle => ~94.1 MIPS, the paper's
    // "in excess of 90 MIPS".
    RunStats s(8);
    s.countCycle();
    for (int i = 0; i < 8; ++i)
        s.countParcel(OpClass::IntAlu);
    EXPECT_NEAR(s.mips(85.0), 94.1, 0.1);
}

TEST(Stats, MflopsCountsFloatOpsOnly)
{
    RunStats s(8);
    s.countCycle();
    for (int i = 0; i < 4; ++i)
        s.countParcel(OpClass::FloatAlu);
    for (int i = 0; i < 4; ++i)
        s.countParcel(OpClass::IntAlu);
    EXPECT_NEAR(s.mflops(85.0), 47.06, 0.1);
    EXPECT_NEAR(s.mips(85.0), 94.1, 0.1);
}

TEST(Stats, BranchesAndBusyWait)
{
    RunStats s(2);
    s.countConditionalBranch(true);
    s.countConditionalBranch(false);
    s.countConditionalBranch(true);
    s.countBusyWait();
    EXPECT_EQ(s.conditionalBranches(), 3u);
    EXPECT_EQ(s.takenBranches(), 2u);
    EXPECT_EQ(s.busyWaitCycles(), 1u);
}

TEST(Stats, PartitionHistogramAndMeanStreams)
{
    RunStats s(4);
    s.countPartition(1);
    s.countPartition(1);
    s.countPartition(3);
    s.countPartition(3);
    EXPECT_EQ(s.partitionHistogram().at(1), 2u);
    EXPECT_EQ(s.partitionHistogram().at(3), 2u);
    EXPECT_DOUBLE_EQ(s.meanStreams(), 2.0);
}

TEST(Stats, MergeWithEmptyIsIdentity)
{
    RunStats s(4);
    s.countCycle();
    s.countParcel(OpClass::IntAlu);
    s.countConditionalBranch(true);
    s.countBusyWait();
    s.countPartition(2);
    const std::string before = s.json(85.0);
    s.merge(RunStats(4));
    EXPECT_EQ(s.json(85.0), before);
}

TEST(Stats, MergeSumsEveryCounter)
{
    RunStats a(4);
    a.countCycles(10);
    a.countParcels(OpClass::IntAlu, 5);
    a.countParcels(OpClass::Nop, 2);
    a.countConditionalBranches(true, 3);
    a.countBusyWaits(7);
    a.countPartitions(1, 4);
    a.countPartitions(2, 6);

    RunStats b(4);
    b.countCycles(20);
    b.countParcels(OpClass::FloatAlu, 8);
    b.countConditionalBranches(false, 2);
    b.countBusyWaits(1);
    b.countPartitions(2, 10);
    b.countPartitions(4, 10);

    a.merge(b);
    EXPECT_EQ(a.cycles(), 30u);
    EXPECT_EQ(a.parcels(), 15u);
    EXPECT_EQ(a.byClass(OpClass::IntAlu), 5u);
    EXPECT_EQ(a.byClass(OpClass::FloatAlu), 8u);
    EXPECT_EQ(a.nops(), 2u);
    EXPECT_EQ(a.conditionalBranches(), 5u);
    EXPECT_EQ(a.takenBranches(), 3u);
    EXPECT_EQ(a.busyWaitCycles(), 8u);
    EXPECT_EQ(a.partitionHistogram().at(1), 4u);
    EXPECT_EQ(a.partitionHistogram().at(2), 16u);
    EXPECT_EQ(a.partitionHistogram().at(4), 10u);
}

TEST(Stats, MergeOfSplitRunEqualsWholeRun)
{
    // Accumulate one stream of events into `whole`, and the same
    // stream split at an arbitrary boundary into `first` and
    // `second`; merging the halves must reproduce the whole.
    RunStats whole(8);
    RunStats first(8);
    RunStats second(8);
    for (int i = 0; i < 100; ++i) {
        RunStats &half = i < 37 ? first : second;
        const auto cls =
            static_cast<OpClass>(i % 7);
        whole.countParcel(cls);
        half.countParcel(cls);
        whole.countCycle();
        half.countCycle();
        if (i % 3 == 0) {
            whole.countConditionalBranch(i % 2 == 0);
            half.countConditionalBranch(i % 2 == 0);
        }
        whole.countPartition(1u + static_cast<unsigned>(i % 4));
        half.countPartition(1u + static_cast<unsigned>(i % 4));
    }
    first.merge(second);
    EXPECT_EQ(first.json(85.0), whole.json(85.0));
}

TEST(Stats, MergeTakesMaxFuCount)
{
    RunStats narrow(2);
    RunStats wide(8);
    narrow.merge(wide);
    EXPECT_EQ(narrow.numFus(), 8u);
}

TEST(Stats, FormattedMentionsKeyCounters)
{
    RunStats s(2);
    s.countCycle();
    s.countParcel(OpClass::IntAlu);
    s.countPartition(2);
    const std::string f = s.formatted();
    EXPECT_NE(f.find("cycles"), std::string::npos);
    EXPECT_NE(f.find("partition histogram"), std::string::npos);
}

} // namespace
} // namespace ximd
