/**
 * @file
 * Tests for the dynamic race observer (core/race_observer.hh): what
 * it records, what it deliberately ignores, and the stuck-SS fault
 * scenario where a statically ordered handshake races at run time.
 */

#include <string>

#include <gtest/gtest.h>

#include "analysis/race.hh"
#include "asm/assembler.hh"
#include "core/machine.hh"
#include "core/race_observer.hh"

#ifndef XIMD_SOURCE_DIR
#error "XIMD_SOURCE_DIR must point at the repo root"
#endif

namespace ximd {
namespace {

/** FU1 waits for FU0's DONE before loading what FU0 stored. */
const char *const kHandshake =
    ".fus 2\n"
    ".reg u 0\n"
    "L00: -> L01 ; nop             || if ss0 L01 L00 ; nop\n"
    "L01: -> L02 ; nop             || -> L03 ; nop\n"
    "L02: -> L03 ; store #7,#100   || -> L03 ; nop\n"
    "L03: -> L04 ; nop ; done      || -> L04 ; load #100,#0,u\n"
    "L04: halt ; nop               || halt ; nop\n";

TEST(RaceObserver, SynchronizedHandshakeProducesNoEvents)
{
    Program prog = assembleString(kHandshake);
    Machine m(std::move(prog), MachineConfig{});
    RaceObserver obs(m.program());
    m.addObserver(&obs);
    const RunResult r = m.run(1000);
    ASSERT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(m.readReg(0), 7u); // the load saw the store
    EXPECT_TRUE(obs.events().empty());
}

TEST(RaceObserver, StuckSyncSignalTripsTheObserver)
{
    // Fault injection: SS0 stuck at DONE releases FU1's wait
    // immediately, so the load lands in the same cycle as the store —
    // a dynamic conflict the unperturbed program can never exhibit.
    Program prog = assembleString(kHandshake);
    Machine m(std::move(prog), MachineConfig{});
    RaceObserver obs(m.program());
    m.addObserver(&obs);
    m.core().forceSync(0, SyncVal::Done, 10);
    const RunResult r = m.run(1000);
    ASSERT_EQ(r.reason, StopReason::Halted);
    ASSERT_FALSE(obs.events().empty());
    const RaceObserver::Event &e = obs.events().front();
    EXPECT_EQ(e.kind, RaceObserver::LocKind::Mem);
    EXPECT_EQ(e.loc, 100u);
    EXPECT_NE(e.fuA, e.fuB);
    EXPECT_NE(e.toString().find("M[100]"), std::string::npos);

    // The fault may escape the static report (the contract only
    // binds unperturbed runs): this program is statically clean.
    EXPECT_TRUE(analysis::analyzeRaces(m.program()).clean());
}

TEST(RaceObserver, MinmaxEventsMatchStaticCoveredPairs)
{
    // The unperturbed cross-validation contract on a real workload:
    // every dynamic event appears in the static report's covered set
    // (minmax has no races, only benign lockstep read-old pairs).
    Program prog = assembleFile(std::string(XIMD_SOURCE_DIR) +
                                "/examples/programs/minmax.ximd");
    const analysis::RaceReport report = analysis::analyzeRaces(prog);
    ASSERT_TRUE(report.clean());

    Machine m(std::move(prog), MachineConfig{});
    RaceObserver obs(m.program());
    m.addObserver(&obs);
    const RunResult r = m.run(1000);
    ASSERT_EQ(r.reason, StopReason::Halted);
    EXPECT_FALSE(obs.events().empty());
    for (const RaceObserver::Event &e : obs.events()) {
        bool matched = false;
        for (const analysis::SitePair &p : report.covered) {
            const bool fwd = p.rowA == e.rowA &&
                             p.fuA == static_cast<int>(e.fuA) &&
                             p.rowB == e.rowB &&
                             p.fuB == static_cast<int>(e.fuB);
            const bool rev = p.rowA == e.rowB &&
                             p.fuA == static_cast<int>(e.fuB) &&
                             p.rowB == e.rowA &&
                             p.fuB == static_cast<int>(e.fuA);
            if (fwd || rev) {
                matched = true;
                break;
            }
        }
        EXPECT_TRUE(matched)
            << "dynamic event escaped the static report: "
            << e.toString();
    }
}

TEST(RaceObserver, EventsAreDedupedAcrossCycles)
{
    // Two decoupled loops hit the same store/load pair on M[100]
    // every other cycle; the observer must record the site pair once,
    // not once per iteration.
    Program prog = assembleString(
        ".fus 2\n"
        ".reg u 0\n"
        "L0: -> L1 ; nop             || -> L2 ; nop\n"
        "L1: -> L0 ; store #1,#100   || -> L2 ; nop\n"
        "L2: -> L3 ; nop             || -> L3 ; load #100,#0,u\n"
        "L3: -> L2 ; nop             || -> L2 ; nop\n");
    Machine m(std::move(prog), MachineConfig{});
    RaceObserver obs(m.program());
    m.addObserver(&obs);
    const RunResult r = m.run(40);
    ASSERT_EQ(r.reason, StopReason::MaxCycles);
    ASSERT_EQ(obs.events().size(), 1u);
    const RaceObserver::Event &e = obs.events().front();
    EXPECT_EQ(e.kind, RaceObserver::LocKind::Mem);
    EXPECT_EQ(e.loc, 100u);
}

} // namespace
} // namespace ximd
