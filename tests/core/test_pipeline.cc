/**
 * @file
 * Tests for the pipelined datapath (section 4.3's "3-stage Data Path
 * Pipeline" prototype feature, MachineConfig::resultLatency) and for
 * the latency-aware compiler support.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/vliw_machine.hh"
#include "core/ximd_machine.hh"
#include "sched/codegen.hh"
#include "support/logging.hh"
#include "support/random.hh"


namespace ximd {
namespace {

MachineConfig
latencyCfg(unsigned latency)
{
    MachineConfig cfg;
    cfg.resultLatency = latency;
    return cfg;
}

TEST(Pipeline, WriteInvisibleUntilLatencyElapses)
{
    // r0 := 7 issued at cycle 0; reads at cycles 1 and 2 capture what
    // they see. With latency 3, the write lands at the start of
    // cycle 3.
    const char *src =
        ".fus 1\n"
        "-> 1 ; iadd #7,#0,r0\n"
        "-> 2 ; mov r0,r1\n"   // cycle 1
        "-> 3 ; mov r0,r2\n"   // cycle 2
        "-> 4 ; mov r0,r3\n"   // cycle 3
        "halt ; nop\n";
    XimdMachine m(assembleString(src), latencyCfg(3));
    ASSERT_TRUE(m.run(100).ok());
    EXPECT_EQ(m.readReg(1), 0u); // stale
    EXPECT_EQ(m.readReg(2), 0u); // stale
    EXPECT_EQ(m.readReg(3), 7u); // visible at cycle 3
}

TEST(Pipeline, LatencyOneMatchesResearchModel)
{
    const char *src =
        ".fus 1\n"
        "-> 1 ; iadd #7,#0,r0\n"
        "halt ; mov r0,r1\n";
    XimdMachine m(assembleString(src), latencyCfg(1));
    ASSERT_TRUE(m.run(100).ok());
    EXPECT_EQ(m.readReg(1), 7u);
}

TEST(Pipeline, DrainsWritesAfterHalt)
{
    // The store issues in the halt cycle; with latency 3 the machine
    // must keep draining two more cycles after every FU halted.
    const char *src = ".fus 1\nhalt ; store #42,#50\n";
    XimdMachine m(assembleString(src), latencyCfg(3));
    const RunResult r = m.run(100);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(m.peekMem(50), 42u);
    EXPECT_EQ(r.cycles, 3u); // issue + 2 drain cycles
}

TEST(Pipeline, VliwDrainsWritesAfterHalt)
{
    const char *src = ".fus 2\nhalt ; store #42,#50 || halt ; nop\n";
    VliwMachine m(assembleString(src), latencyCfg(3));
    ASSERT_TRUE(m.run(100).ok());
    EXPECT_EQ(m.peekMem(50), 42u);
}

TEST(Pipeline, CcWritesAreDelayedToo)
{
    // Compare at cycle 0; with latency 2 the branch at cycle 1 still
    // sees the old (false) cc0, the branch at cycle 2 sees TRUE.
    const char *src =
        ".fus 1\n"
        "-> 1 ; eq #1,#1\n"
        "if cc0 9 2 ; nop\n"       // stale: falls through
        "if cc0 3 9 ; nop\n"       // visible: taken
        "halt ; iadd #5,#0,r0\n"
        "halt ; nop\n"             // 4
        "halt ; nop\n"             // 5
        "halt ; nop\n"             // 6
        "halt ; nop\n"             // 7
        "halt ; nop\n"             // 8
        "halt ; iadd #9,#0,r0\n";  // 9: wrong path
    XimdMachine m(assembleString(src), latencyCfg(2));
    ASSERT_TRUE(m.run(100).ok());
    EXPECT_EQ(m.readReg(0), 5u);
}

TEST(Pipeline, WawRetiresInIssueOrder)
{
    const char *src =
        ".fus 1\n"
        "-> 1 ; iadd #1,#0,r0\n"
        "-> 2 ; iadd #2,#0,r0\n"
        "halt ; nop\n";
    XimdMachine m(assembleString(src), latencyCfg(3));
    ASSERT_TRUE(m.run(100).ok());
    EXPECT_EQ(m.readReg(0), 2u);
}

TEST(Pipeline, SameCycleWritebackRaceFaults)
{
    // Two FUs write the same register in the same cycle: the race
    // surfaces at write-back time regardless of latency.
    const char *src =
        ".fus 2\n"
        "halt ; iadd #1,#0,r5 || halt ; iadd #2,#0,r5\n";
    XimdMachine m(assembleString(src), latencyCfg(3));
    EXPECT_EQ(m.run(100).reason, StopReason::Fault);
}

TEST(Pipeline, SchedulerStretchesSchedulesWithLatency)
{
    using namespace sched;
    IrBuilder b;
    b.startBlock("entry");
    IrValue x = b.emit(Opcode::Iadd, IrValue::immInt(1),
                       IrValue::immInt(2));
    IrValue y = b.emit(Opcode::Imult, x, IrValue::immInt(3));
    b.emitStore(y, IrValue::immInt(60));
    b.halt();
    IrProgram ir = b.finish();

    const auto r1 = valueOrFatal(generateCodeChecked(ir, {.width = 4, .rawLatency = 1}));
    const auto r3 = valueOrFatal(generateCodeChecked(ir, {.width = 4, .rawLatency = 3}));
    EXPECT_GT(r3.program.size(), r1.program.size());

    XimdMachine m1(r1.program, latencyCfg(1));
    XimdMachine m3(r3.program, latencyCfg(3));
    ASSERT_TRUE(m1.run(1000).ok());
    ASSERT_TRUE(m3.run(1000).ok());
    EXPECT_EQ(m1.peekMem(60), 9u);
    EXPECT_EQ(m3.peekMem(60), 9u);
}

TEST(Pipeline, ResearchModelCodeBreaksOnPrototypePipe)
{
    // The hazard the paper's section 2.3 warns about: latency-1 code
    // is NOT correct on the pipelined prototype. (The simulator still
    // executes it deterministically; the values are stale.)
    using namespace sched;
    IrBuilder b;
    b.startBlock("entry");
    IrValue x = b.emit(Opcode::Iadd, IrValue::immInt(1),
                       IrValue::immInt(2));
    IrValue y = b.emit(Opcode::Imult, x, IrValue::immInt(3));
    b.emitStore(y, IrValue::immInt(60));
    b.halt();
    IrProgram ir = b.finish();

    const auto r1 = valueOrFatal(generateCodeChecked(ir, {.width = 4, .rawLatency = 1}));
    XimdMachine m(r1.program, latencyCfg(3));
    ASSERT_TRUE(m.run(1000).ok());
    EXPECT_NE(m.peekMem(60), 9u); // stale x: 0 * 3
}

/** Random diamond programs: codegen at latency L on a latency-L
 *  machine must match the IR interpreter, for L in {1, 2, 3}. */
class PipelineCodegenProperty
    : public ::testing::TestWithParam<
          std::tuple<unsigned, int, std::uint64_t>>
{
};

TEST_P(PipelineCodegenProperty, MatchesInterpreter)
{
    using namespace sched;
    const auto [latency, width, seed] = GetParam();
    Rng rng(seed);

    IrBuilder b;
    std::vector<IrValue> vals;
    auto randVal = [&]() {
        if (!vals.empty() && rng.chance(0.7))
            return vals[static_cast<std::size_t>(
                rng.range(0, static_cast<int>(vals.size()) - 1))];
        return IrValue::immInt(static_cast<SWord>(rng.range(-9, 9)));
    };
    static const Opcode kOps[] = {Opcode::Iadd, Opcode::Isub,
                                  Opcode::Imult, Opcode::Xor};

    b.startBlock("entry");
    for (int i = 0; i < 8; ++i)
        vals.push_back(
            b.emit(kOps[rng.range(0, 3)], randVal(), randVal()));
    const int cmp =
        b.emitCompare(Opcode::Lt, randVal(), randVal());
    b.branch(cmp, "then", "else");
    b.startBlock("then");
    vals.push_back(b.emit(Opcode::Iadd, randVal(), randVal()));
    b.emitStore(vals.back(), IrValue::immInt(70));
    b.jump("join");
    b.startBlock("else");
    b.emitStore(randVal(), IrValue::immInt(70));
    b.jump("join");
    b.startBlock("join");
    vals.push_back(b.emit(Opcode::Xor, randVal(), randVal()));
    b.emitStore(vals.back(), IrValue::immInt(71));
    b.halt();
    IrProgram ir = b.finish();

    std::vector<Word> refMem(1024, 0);
    const auto refVregs = interpretIr(ir, refMem);

    const auto code = valueOrFatal(generateCodeChecked(
        ir,
        {.width = static_cast<FuId>(width), .rawLatency = latency}));
    MachineConfig cfg = latencyCfg(latency);
    cfg.memWords = 1024;
    XimdMachine m(code.program, cfg);
    const RunResult r = m.run(100000);
    ASSERT_TRUE(r.ok()) << r.faultMessage;

    EXPECT_EQ(m.peekMem(70), refMem[70]);
    EXPECT_EQ(m.peekMem(71), refMem[71]);
    for (VregId v = 0; v < ir.numVregs; ++v)
        EXPECT_EQ(m.readReg(static_cast<RegId>(v)),
                  refVregs[static_cast<std::size_t>(v)])
            << "vreg " << v;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineCodegenProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(2, 8),
                       ::testing::Values(5u, 6u, 7u, 8u)));

} // namespace
} // namespace ximd
