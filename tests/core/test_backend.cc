/**
 * @file
 * Execution-backend tier: selection, demotion, and equivalence.
 *
 * MachineCore::demotionReason() is the contract between the fast
 * threaded backend and everything observing the machine: any
 * configuration the block backend cannot serve with full fidelity
 * must name the first violated requirement and fall back to the
 * interpreter. These tests pin that contract, the reporting plumbing
 * (effectiveBackendName, RunStats::json backend fields), and the
 * architectural equivalence of the two backends on the paper kernels.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/observer.hh"
#include "core/partition.hh"
#include "sim/io_port.hh"
#include "snapshot/fault.hh"
#include "workloads/kernels.hh"

namespace {

using namespace ximd;

/** Minimal observer that insists on per-cycle onCycle delivery. */
class PerCycleObserver : public CycleObserver
{
  public:
    const char *observerName() const override { return "per-cycle"; }
    void onCycle(const MachineCore &core) override { (void)core; }
};

/**
 * Minimal observer content with folded per-block delivery. Cycles the
 * backend steps per-cycle (e.g. to seed the SSET grouping) arrive via
 * onCycle as usual, so a block observer counts both channels.
 */
class BlockObserver : public CycleObserver
{
  public:
    const char *observerName() const override { return "blocky"; }
    bool acceptsBlocks() const override { return true; }
    void onCycle(const MachineCore &core) override
    {
        (void)core;
        ++cycles;
    }
    void onBlock(const MachineCore &core,
                 const BlockStats &blk) override
    {
        (void)core;
        cycles += blk.cycles;
    }
    Cycle cycles = 0;
};

TEST(Backend, DefaultConfigSelectsThreadedAndRunsIt)
{
    Machine m(workloads::minmaxPaper(true));
    EXPECT_EQ(m.core().selectedBackend(), Backend::Threaded);
    EXPECT_EQ(m.core().demotionReason(), "");
    EXPECT_EQ(m.core().effectiveBackend(), Backend::Threaded);
    EXPECT_STREQ(m.core().effectiveBackendName(), "threaded");
}

TEST(Backend, InterpSelectionIsHonored)
{
    Machine m(workloads::minmaxPaper(true),
              MachineConfig{}.withBackend(Backend::Interp));
    EXPECT_EQ(m.core().effectiveBackend(), Backend::Interp);
    EXPECT_STREQ(m.core().effectiveBackendName(), "interp");
    EXPECT_EQ(m.core().demotionReason(), "");
}

TEST(Backend, BackendNameIsStable)
{
    EXPECT_STREQ(backendName(Backend::Interp), "interp");
    EXPECT_STREQ(backendName(Backend::Threaded), "threaded");
}

TEST(Backend, TraceObserverDemotes)
{
    Machine m(workloads::minmaxPaper(true),
              MachineConfig{}.withTrace());
    EXPECT_EQ(m.core().selectedBackend(), Backend::Threaded);
    EXPECT_EQ(m.core().demotionReason(),
              "observer 'trace' requires per-cycle fidelity");
    EXPECT_EQ(m.core().effectiveBackend(), Backend::Interp);
    EXPECT_STREQ(m.core().effectiveBackendName(), "interp");
}

TEST(Backend, CustomPerCycleObserverDemotesByName)
{
    Machine m(workloads::minmaxPaper(true));
    PerCycleObserver obs;
    m.addObserver(&obs);
    EXPECT_EQ(m.core().demotionReason(),
              "observer 'per-cycle' requires per-cycle fidelity");
}

TEST(Backend, PerturbingObserverDemotes)
{
    snapshot::FaultPlan plan;
    snapshot::FaultInjector injector(plan.expandTrial(1, 4));
    Machine m(workloads::minmaxPaper(true));
    m.addObserver(&injector);
    EXPECT_EQ(m.core().demotionReason(),
              "observer 'fault-injector' schedules perturbations");
}

TEST(Backend, ResultLatencyDemotes)
{
    Machine m(workloads::minmaxPaper(true),
              MachineConfig{}.withResultLatency(3));
    EXPECT_EQ(m.core().demotionReason(),
              "result latency > 1 keeps the write pipeline in "
              "flight");
}

TEST(Backend, RegisteredSyncDemotes)
{
    Machine m(workloads::bitcount1Paper(
                  std::vector<Word>(16, 1)),
              MachineConfig{}.withRegisteredSync());
    EXPECT_EQ(m.core().demotionReason(),
              "registered sync distribution needs per-cycle "
              "stepping");
}

TEST(Backend, MappedDeviceDemotes)
{
    OutputPort port("out");
    Machine m(workloads::minmaxPaper(true));
    m.attachDevice(4000, 4000, &port);
    EXPECT_EQ(m.core().demotionReason(),
              "memory-mapped devices need per-cycle access ordering");
}

TEST(Backend, StockStatsAndPartitionObserversAcceptBlocks)
{
    // The default observer set (stats + partitions, no trace) must not
    // demote — that is the whole point of the block protocol.
    Machine m(workloads::minmaxPaper(true), MachineConfig{});
    EXPECT_EQ(m.core().demotionReason(), "");
}

TEST(Backend, BlockObserverSeesEveryCycleOnce)
{
    BlockObserver blocks;
    Machine threaded(workloads::minmaxPaper(true), MachineConfig{});
    threaded.addObserver(&blocks);
    ASSERT_EQ(threaded.core().demotionReason(), "");
    const RunResult run = threaded.run(1000);
    EXPECT_EQ(run.reason, StopReason::Halted);
    EXPECT_EQ(blocks.cycles, run.cycles);
}

TEST(Backend, ThreadedMatchesInterpObservables)
{
    // Same program, same observers, both backends: identical cycle
    // count, architectural state, statistics and partition history.
    const Program prog = workloads::minmaxPaper(true);
    Machine interp(prog,
                   MachineConfig{}.withBackend(Backend::Interp));
    Machine threaded(prog,
                     MachineConfig{}.withBackend(Backend::Threaded));
    const RunResult ri = interp.run(1000);
    const RunResult rt = threaded.run(1000);
    EXPECT_EQ(ri.reason, rt.reason);
    EXPECT_EQ(ri.cycles, rt.cycles);
    EXPECT_EQ(interp.archStateHash(), threaded.archStateHash());
    EXPECT_EQ(interp.stats().formatted(),
              threaded.stats().formatted());
    EXPECT_EQ(interp.partitions().formatted(),
              threaded.partitions().formatted());
}

TEST(Backend, SetAssignmentsOverwritesPartition)
{
    PartitionTracker tracker(4);
    tracker.setAssignments({0, 0, 1, -1});
    EXPECT_EQ(tracker.numSsets(), 2u);
    EXPECT_TRUE(tracker.sameSset(0, 1));
    EXPECT_FALSE(tracker.sameSset(0, 2));
    EXPECT_EQ(tracker.ssetOf(3), -1);
    EXPECT_EQ(tracker.formatted(), "{0,1}{2}");
}

TEST(Backend, StatsJsonNamesBackendAndPredecode)
{
    RunStats stats(4);
    const std::string threaded = stats.json(10.0, "threaded");
    EXPECT_NE(threaded.find("\"backend\": \"threaded\""),
              std::string::npos);
    EXPECT_NE(threaded.find("\"predecode\": \"flat\""),
              std::string::npos);

    const std::string interp = stats.json(10.0, "interp");
    EXPECT_NE(interp.find("\"backend\": \"interp\""),
              std::string::npos);
    EXPECT_NE(interp.find("\"predecode\": \"decoded\""),
              std::string::npos);

    // Callers that do not name a backend get the legacy document.
    const std::string bare = stats.json(10.0);
    EXPECT_EQ(bare.find("\"backend\""), std::string::npos);
    EXPECT_EQ(bare.find("\"predecode\""), std::string::npos);
}

} // namespace
