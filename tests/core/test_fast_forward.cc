/**
 * @file
 * Busy-wait fast-forward: equivalence with cycle-by-cycle stepping.
 *
 * run() may skip ahead in O(1) only when the machine state provably
 * maps to itself every remaining cycle (all live FUs spinning on nop
 * self-loops, empty write-back pipeline, no devices). These tests pin
 * the soundness contract: for every observable — stop reason, cycle
 * count, statistics, traces, architectural state — a fast-forwarded
 * run is indistinguishable from a fully stepped one.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/observer.hh"
#include "core/ximd_machine.hh"
#include "workloads/kernels.hh"

namespace {

using namespace ximd;

std::string
example(const char *file)
{
    return std::string(XIMD_SOURCE_DIR "/examples/programs/") + file;
}

/** Everything observable about a finished machine, as one string. */
std::string
fingerprint(const XimdMachine &m, const RunResult &r)
{
    std::string s;
    s += "reason=" + std::to_string(static_cast<int>(r.reason));
    s += " cycles=" + std::to_string(r.cycles);
    s += " machineCycle=" + std::to_string(m.cycle());
    for (FuId fu = 0; fu < m.numFus(); ++fu) {
        s += " fu" + std::to_string(fu) + "=";
        s += m.halted(fu) ? "H" : std::to_string(m.pc(fu));
    }
    for (RegId reg = 0; reg < 16; ++reg)
        s += " r" + std::to_string(reg) + "=" +
             std::to_string(m.readReg(reg));
    s += "\n" + m.stats().formatted();
    s += "partition=" + m.partitions().formatted() + "\n";
    s += m.trace().compact();
    return s;
}

/** Run @p program under @p config with and without fast-forward and
 *  require identical observables. Returns the common fingerprint. */
std::string
expectEquivalent(const Program &program, MachineConfig config,
                 Cycle maxCycles)
{
    config.fastForward = true;
    XimdMachine fast(program, config);
    const RunResult rf = fast.run(maxCycles);

    config.fastForward = false;
    XimdMachine slow(program, config);
    const RunResult rs = slow.run(maxCycles);

    const std::string f = fingerprint(fast, rf);
    EXPECT_EQ(f, fingerprint(slow, rs));
    return f;
}

TEST(FastForward, DeadlockedSpinMatchesStepping)
{
    const Program p = assembleFile(example("deadlock.ximd"));
    const std::string f = expectEquivalent(p, {}, 5000);
    EXPECT_NE(f.find("reason=1"), std::string::npos); // MaxCycles
    EXPECT_NE(f.find("cycles=5000"), std::string::npos);
}

TEST(FastForward, DeadlockedSpinMatchesSteppingWithTrace)
{
    const Program p = assembleFile(example("deadlock.ximd"));
    MachineConfig config;
    config.recordTrace = true;
    expectEquivalent(p, config, 200);
}

TEST(FastForward, DeadlockedSpinMatchesSteppingRegisteredSync)
{
    const Program p = assembleFile(example("deadlock.ximd"));
    MachineConfig config;
    config.registeredSync = true;
    expectEquivalent(p, config, 5000);
}

TEST(FastForward, TerminatingBarrierUnaffected)
{
    // barrier.ximd halts on its own; its FUs busy-wait while the
    // other side is still working, so no cycle is a whole-machine
    // fixpoint and run() must step every one of the 23 cycles.
    const Program p = assembleFile(example("barrier.ximd"));
    const std::string f = expectEquivalent(p, {}, 0);
    EXPECT_NE(f.find("reason=0"), std::string::npos); // Halted
    EXPECT_NE(f.find("cycles=23"), std::string::npos);
}

TEST(FastForward, MinmaxContinueSpinMatchesStepping)
{
    // The paper-faithful minmax listing ends in "Continue." — an
    // unconditional self-loop — so a capped run fast-forwards.
    const Program p = workloads::minmaxPaper(false);
    const std::string f = expectEquivalent(p, {}, 100);
    EXPECT_NE(f.find("cycles=100"), std::string::npos);
}

/** Observer that records how the core reported its cycles. */
struct CountingObserver : CycleObserver
{
    Cycle stepped = 0;
    Cycle skipped = 0;
    int halts = 0;

    void onCycle(const MachineCore &) override { ++stepped; }
    void
    onFastForward(const MachineCore &, Cycle n,
                  const std::vector<FuEvent> &events) override
    {
        skipped += n;
        // Every skipped cycle is a live busy-wait: some FU executed.
        bool anyExecuted = false;
        for (const FuEvent &e : events)
            anyExecuted |= e.executed;
        EXPECT_TRUE(anyExecuted);
    }
    void onHalt(const MachineCore &) override { ++halts; }
};

TEST(FastForward, SkipsInsteadOfStepping)
{
    XimdMachine m(assembleFile(example("deadlock.ximd")));
    CountingObserver counter;
    m.addObserver(&counter);

    const RunResult r = m.run(100000);

    EXPECT_EQ(r.reason, StopReason::MaxCycles);
    EXPECT_EQ(counter.stepped + counter.skipped, 100000u);
    // The spin is entered within a few cycles; everything after is
    // skipped in one bulk notification.
    EXPECT_LE(counter.stepped, 10u);
    EXPECT_GE(counter.skipped, 99990u);
    EXPECT_EQ(counter.halts, 0);
}

TEST(FastForward, HaltNotificationFiresOnce)
{
    XimdMachine m(assembleFile(example("barrier.ximd")));
    CountingObserver counter;
    m.addObserver(&counter);

    const RunResult r = m.run(0);

    EXPECT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(counter.stepped, 23u);
    EXPECT_EQ(counter.skipped, 0u);
    EXPECT_EQ(counter.halts, 1);
}

TEST(FastForward, DisabledObservationMatchesArchitecturalState)
{
    // The bare-interpreter configuration (no observers at all) must
    // compute the same architectural results.
    const Program p = workloads::minmaxPaper(true);

    XimdMachine observed(p);
    const RunResult ro = observed.run();

    MachineConfig bare;
    bare.collectStats = false;
    bare.trackPartitions = false;
    bare.recordTrace = false;
    XimdMachine unobserved(p, bare);
    const RunResult ru = unobserved.run();

    EXPECT_EQ(ro.reason, ru.reason);
    EXPECT_EQ(ro.cycles, ru.cycles);
    EXPECT_EQ(observed.readRegByName("min"),
              unobserved.readRegByName("min"));
    EXPECT_EQ(observed.readRegByName("max"),
              unobserved.readRegByName("max"));
    // And the unobserved run really recorded nothing.
    EXPECT_EQ(unobserved.stats().cycles(), 0u);
    EXPECT_TRUE(unobserved.trace().empty());
}

} // namespace
