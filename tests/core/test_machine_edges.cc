/**
 * @file
 * Edge-case and failure-injection tests for the machines: fault
 * isolation, configuration extremes, and observation API guards.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/vliw_machine.hh"
#include "core/ximd_machine.hh"
#include "support/logging.hh"

namespace ximd {
namespace {

TEST(MachineEdges, FaultPreservesPriorArchitecturalState)
{
    // Cycle 0 commits r1 := 5; cycle 1 faults (divide by zero). The
    // committed state survives; the faulting cycle's writes do not.
    auto m = XimdMachine(assembleString(
        ".fus 2\n"
        "-> 1 ; iadd #5,#0,r1 || -> 1 ; nop\n"
        "halt ; idiv #1,#0,r2 || halt ; iadd #7,#0,r3\n"));
    const RunResult r = m.run();
    ASSERT_EQ(r.reason, StopReason::Fault);
    EXPECT_EQ(m.readReg(1), 5u); // committed before the fault
    EXPECT_EQ(m.readReg(3), 0u); // same-cycle write squashed
    EXPECT_EQ(r.cycles, 1u);     // fault cycle did not complete
}

TEST(MachineEdges, StepAfterFaultDoesNothing)
{
    auto m = XimdMachine(assembleString(
        ".fus 1\nhalt ; idiv #1,#0,r0\n"));
    EXPECT_EQ(m.run().reason, StopReason::Fault);
    EXPECT_FALSE(m.step());
    EXPECT_EQ(m.cycle(), 0u);
    EXPECT_TRUE(m.faulted());
    EXPECT_FALSE(m.faultMessage().empty());
}

TEST(MachineEdges, RunAfterHaltIsIdempotent)
{
    auto m = XimdMachine(assembleString(".fus 1\nhalt ; nop\n"));
    EXPECT_TRUE(m.run().ok());
    const Cycle c = m.cycle();
    const RunResult again = m.run();
    EXPECT_TRUE(again.ok());
    EXPECT_EQ(again.cycles, c);
}

TEST(MachineEdges, MaximumWidthMachine)
{
    Program p(kMaxFus);
    InstRow row;
    for (FuId fu = 0; fu < kMaxFus; ++fu)
        row.push_back(Parcel(
            ControlOp::halt(),
            DataOp::make(Opcode::Iadd, Operand::immInt(
                             static_cast<SWord>(fu)),
                         Operand::immInt(1),
                         static_cast<RegId>(fu))));
    p.addRow(std::move(row));
    XimdMachine m(p);
    EXPECT_TRUE(m.run().ok());
    for (FuId fu = 0; fu < kMaxFus; ++fu)
        EXPECT_EQ(m.readReg(static_cast<RegId>(fu)), fu + 1);
}

TEST(MachineEdges, PartitionTrackingCanBeDisabled)
{
    MachineConfig cfg;
    cfg.trackPartitions = false;
    auto m = XimdMachine(
        assembleString(".fus 2\nhalt ; nop || halt ; nop\n"), cfg);
    EXPECT_TRUE(m.run().ok());
    EXPECT_TRUE(m.stats().partitionHistogram().empty());
    EXPECT_EQ(m.stats().meanStreams(), 0.0);
}

TEST(MachineEdges, UnknownRegisterNameThrows)
{
    auto m = XimdMachine(assembleString(".fus 1\nhalt ; nop\n"));
    m.run();
    EXPECT_THROW(m.readRegByName("nonesuch"), FatalError);
}

TEST(MachineEdges, SmallMemoryBoundsEnforced)
{
    MachineConfig cfg;
    cfg.memWords = 16;
    auto m = XimdMachine(
        assembleString(".fus 1\nhalt ; store #1,#16\n"), cfg);
    const RunResult r = m.run();
    EXPECT_EQ(r.reason, StopReason::Fault);
    EXPECT_NE(r.faultMessage.find("out of range"), std::string::npos);
}

TEST(MachineEdges, DeviceWindowAtTopOfMemory)
{
    MachineConfig cfg;
    cfg.memWords = 64;
    auto m = XimdMachine(
        assembleString(".fus 1\nhalt ; store #9,#63\n"), cfg);
    OutputPort port("top");
    m.attachDevice(63, 63, &port);
    EXPECT_TRUE(m.run().ok());
    ASSERT_EQ(port.records().size(), 1u);
    EXPECT_EQ(port.records()[0].value, 9u);
    // And one past the end is rejected at attach time.
    OutputPort beyond("beyond");
    EXPECT_THROW(m.attachDevice(64, 64, &beyond), FatalError);
}

TEST(MachineEdges, MemInitOutOfRangeFaultsAtConstruction)
{
    Program p = assembleString(".fus 1\n.word 100 1\nhalt ; nop\n");
    MachineConfig cfg;
    cfg.memWords = 50;
    EXPECT_THROW(XimdMachine(p, cfg), FatalError);
}

TEST(MachineEdges, VliwFaultPathMirrorsXimd)
{
    auto m = VliwMachine(assembleString(
        ".fus 2\n"
        "-> 1 ; iadd #5,#0,r1 || -> 1 ; nop\n"
        "halt ; imod #1,#0,r2 || halt ; nop\n"));
    const RunResult r = m.run();
    EXPECT_EQ(r.reason, StopReason::Fault);
    EXPECT_EQ(m.readReg(1), 5u);
    EXPECT_FALSE(m.step());
}

TEST(MachineEdges, ConflictPolicyLowestFuWins)
{
    MachineConfig cfg;
    cfg.conflictPolicy = ConflictPolicy::LowestFuWins;
    auto m = XimdMachine(
        assembleString(".fus 2\n"
                       "halt ; iadd #1,#0,r5 || halt ; iadd #2,#0,r5\n"),
        cfg);
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(m.readReg(5), 1u); // FU0's write wins deterministically
}

TEST(MachineEdges, LargeImmediateRoundTrip)
{
    auto m = XimdMachine(assembleString(
        ".fus 1\n"
        "-> 1 ; iadd #0x7fffffff,#1,r0\n" // wraps to INT_MIN
        "halt ; store r0,#40\n"));
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(m.peekMem(40), 0x80000000u);
}

TEST(MachineEdges, AssemblerRejectsOversizedLiterals)
{
    EXPECT_THROW(assembleString(".fus 1\nhalt ; iadd #4294967296,#0,r0\n"),
                 FatalError);
    EXPECT_THROW(assembleString(".fus 1\n.word 0 4294967296\nhalt\n"),
                 FatalError);
    EXPECT_NO_THROW(
        assembleString(".fus 1\nhalt ; iadd #4294967295,#0,r0\n"));
    EXPECT_NO_THROW(
        assembleString(".fus 1\nhalt ; iadd #-2147483648,#0,r0\n"));
}

TEST(MachineEdges, SelfBarrierSingleFuReleasesImmediately)
{
    // An ALL barrier on a 1-FU machine: the FU's own DONE satisfies
    // it the first cycle.
    auto m = XimdMachine(assembleString(
        ".fus 1\n"
        "if all 1 0 ; nop ; done\n"
        "halt ; nop\n"));
    EXPECT_TRUE(m.run(10).ok());
    EXPECT_EQ(m.cycle(), 2u);
}

} // namespace
} // namespace ximd
