#include "core/partition.hh"

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace ximd {
namespace {

using FuControl = PartitionTracker::FuControl;

FuControl
uncond(InstAddr next)
{
    FuControl c;
    c.live = true;
    c.op = ControlOp::jump(next);
    c.nextPc = next;
    return c;
}

FuControl
onCc(unsigned cc, InstAddr t1, InstAddr t2, InstAddr next)
{
    FuControl c;
    c.live = true;
    c.op = ControlOp::onCc(cc, t1, t2);
    c.nextPc = next;
    return c;
}

FuControl
haltedFu()
{
    FuControl c;
    c.live = true;
    c.halted = true;
    return c;
}

TEST(Partition, InitiallyOneSset)
{
    PartitionTracker t(4);
    EXPECT_EQ(t.numSsets(), 1u);
    EXPECT_EQ(t.formatted(), "{0,1,2,3}");
    EXPECT_TRUE(t.sameSset(0, 3));
}

TEST(Partition, IdenticalUnconditionalsStayTogether)
{
    PartitionTracker t(4);
    t.update({uncond(5), uncond(5), uncond(5), uncond(5)});
    EXPECT_EQ(t.formatted(), "{0,1,2,3}");
}

TEST(Partition, DifferentTargetsSplit)
{
    PartitionTracker t(4);
    t.update({uncond(5), uncond(5), uncond(7), uncond(7)});
    EXPECT_EQ(t.formatted(), "{0,1}{2,3}");
    EXPECT_EQ(t.numSsets(), 2u);
    EXPECT_FALSE(t.sameSset(0, 2));
}

TEST(Partition, DistinctConditionSourcesSplitEvenWithSamePc)
{
    // Figure 10, cycle 9: all four FUs sit at 03: but remain
    // {0,1}{2}{3} because FU2/FU3 arrived through data-dependent
    // branches on different condition codes.
    PartitionTracker t(4);
    t.update({uncond(3), uncond(3), onCc(0, 4, 3, 3), onCc(1, 4, 3, 3)});
    EXPECT_EQ(t.formatted(), "{0,1}{2}{3}");
}

TEST(Partition, IdenticalConditionalKeysStayTogether)
{
    // "if cc2 08:|02:" executed by every FU keeps one SSET no matter
    // the outcome (the condition is a globally shared signal).
    PartitionTracker t(4);
    t.update({onCc(2, 8, 2, 2), onCc(2, 8, 2, 2), onCc(2, 8, 2, 2),
              onCc(2, 8, 2, 2)});
    EXPECT_EQ(t.formatted(), "{0,1,2,3}");
}

TEST(Partition, UnconditionalRejoinsSplitStreams)
{
    PartitionTracker t(4);
    t.update({uncond(3), uncond(3), onCc(0, 4, 3, 4), onCc(1, 4, 3, 4)});
    EXPECT_EQ(t.numSsets(), 3u);
    t.update({uncond(5), uncond(5), uncond(5), uncond(5)});
    EXPECT_EQ(t.formatted(), "{0,1,2,3}");
}

TEST(Partition, BarrierControlJoins)
{
    PartitionTracker t(4);
    t.update({uncond(1), uncond(2), uncond(3), uncond(4)});
    EXPECT_EQ(t.numSsets(), 4u);
    // Everyone executes the identical ALL-sync barrier op.
    FuControl bar;
    bar.live = true;
    bar.op = ControlOp::onAllSync(11, 10);
    bar.nextPc = 11;
    t.update({bar, bar, bar, bar});
    EXPECT_EQ(t.formatted(), "{0,1,2,3}");
}

TEST(Partition, DifferentMasksSplit)
{
    PartitionTracker t(4);
    FuControl a;
    a.live = true;
    a.op = ControlOp::onAllSync(1, 0, 0b0011);
    a.nextPc = 1;
    FuControl b = a;
    b.op = ControlOp::onAllSync(1, 0, 0b1100);
    t.update({a, a, b, b});
    EXPECT_EQ(t.formatted(), "{0,1}{2,3}");
}

TEST(Partition, HaltedFusLeaveThePartition)
{
    PartitionTracker t(4);
    t.update({uncond(1), haltedFu(), uncond(1), haltedFu()});
    EXPECT_EQ(t.formatted(), "{0,2}");
    EXPECT_EQ(t.numSsets(), 1u);
    EXPECT_EQ(t.ssetOf(1), -1);
    EXPECT_FALSE(t.sameSset(0, 1));
}

TEST(Partition, PaperNotationOrdering)
{
    PartitionTracker t(8);
    // Build the paper's example partition {0,1}{2}{3,6,7}{4,5}.
    t.update({uncond(1), uncond(1), uncond(2), uncond(3), uncond(4),
              uncond(4), uncond(3), uncond(3)});
    EXPECT_EQ(t.formatted(), "{0,1}{2}{3,6,7}{4,5}");
}

TEST(Partition, ControlVectorSizeMismatchPanics)
{
    PartitionTracker t(4);
    EXPECT_THROW(t.update({uncond(1)}), PanicError);
}

} // namespace
} // namespace ximd
