#include "core/vliw_machine.hh"

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "support/logging.hh"

namespace ximd {
namespace {

VliwMachine
makeMachine(const char *src, MachineConfig cfg = {})
{
    return VliwMachine(assembleString(src), cfg);
}

TEST(VliwMachine, SingleStreamExecutesAllLanes)
{
    auto m = makeMachine(
        ".fus 4\n"
        "halt ; iadd #1,#0,r0 || halt ; iadd #2,#0,r1 "
        "|| halt ; iadd #3,#0,r2 || halt ; iadd #4,#0,r3\n");
    EXPECT_TRUE(m.run().ok());
    for (RegId r = 0; r < 4; ++r)
        EXPECT_EQ(m.readReg(r), r + 1u);
}

TEST(VliwMachine, ControlComesFromLaneZero)
{
    // Lane 1 carries a different (never-consulted) branch target; only
    // lane 0's control drives the machine.
    Program p = assembleString(
        ".fus 2\n"
        "-> 2 ; nop || -> 1 ; nop\n"
        "halt ; iadd #7,#0,r0 || halt ; nop\n"
        "halt ; iadd #9,#0,r0 || halt ; nop\n");
    VliwMachine m(p);
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(m.readReg(0), 9u);
}

TEST(VliwMachine, AnyLaneConditionCodeReachesSequencer)
{
    // The compare runs on lane 2; the single sequencer tests cc2.
    auto m = makeMachine(
        ".fus 3\n"
        "-> 1 ; nop || -> 1 ; nop || -> 1 ; lt #1,#2\n"
        "if cc2 2 3 ; nop || if cc2 2 3 ; nop || if cc2 2 3 ; nop\n"
        "halt ; iadd #1,#0,r0 || halt ; nop || halt ; nop\n"
        "halt ; iadd #2,#0,r0 || halt ; nop || halt ; nop\n");
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(m.readReg(0), 1u);
}

TEST(VliwMachine, RejectsSyncConditions)
{
    Program p = assembleString(
        ".fus 2\n"
        "if all 0 0 ; nop || -> 0 ; nop\n");
    EXPECT_THROW(VliwMachine{p}, FatalError);
}

TEST(VliwMachine, RejectsSyncFields)
{
    Program p = assembleString(
        ".fus 2\n"
        "halt ; nop ; done || halt ; nop\n");
    EXPECT_THROW(VliwMachine{p}, FatalError);
}

TEST(VliwMachine, WriteConflictFaults)
{
    auto m = makeMachine(
        ".fus 2\n"
        "halt ; iadd #1,#0,r9 || halt ; iadd #2,#0,r9\n");
    EXPECT_EQ(m.run().reason, StopReason::Fault);
}

TEST(VliwMachine, MaxCyclesStopsLoop)
{
    auto m = makeMachine(".fus 1\nL: -> L ; nop\n");
    EXPECT_EQ(m.run(64).reason, StopReason::MaxCycles);
    EXPECT_EQ(m.cycle(), 64u);
}

TEST(VliwMachine, LoopComputesSum)
{
    // sum = 1 + 2 + ... + 10
    auto m = makeMachine(
        ".fus 2\n.reg i\n.reg sum\n"
        "L: -> 1 ; iadd i,#1,i      || -> 1 ; iadd sum,i,sum\n"
        "-> 2 ; eq i,#10            || -> 2 ; nop\n"
        "if cc0 3 0 ; nop           || if cc0 3 0 ; nop\n"
        "halt ; nop                 || halt ; nop\n");
    EXPECT_TRUE(m.run().ok());
    // sum accumulates the pre-increment i each pass: 0+1+...+9 plus
    // nothing else; check against that closed form.
    EXPECT_EQ(m.readRegByName("sum"), 45u);
}

TEST(VliwMachine, StatsTrackSingleStream)
{
    auto m = makeMachine(
        ".fus 2\n-> 1 ; iadd #1,#1,r0 || -> 1 ; nop\nhalt || halt\n");
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(m.stats().partitionHistogram().at(1), m.stats().cycles());
    EXPECT_EQ(m.stats().meanStreams(), 1.0);
}

TEST(VliwMachine, TraceShowsLockstepPcs)
{
    MachineConfig cfg;
    cfg.recordTrace = true;
    auto m = makeMachine(".fus 3\n-> 1 ; nop || ; || ;\nhalt||halt||halt\n",
                         cfg);
    EXPECT_TRUE(m.run().ok());
    ASSERT_EQ(m.trace().size(), 2u);
    const TraceEntry &e = m.trace().entry(1);
    EXPECT_EQ(e.pcs, std::vector<InstAddr>(3, 1));
    EXPECT_EQ(e.partition, "{0,1,2}");
}

} // namespace
} // namespace ximd
