#include "core/trace.hh"

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace ximd {
namespace {

TraceEntry
entry(Cycle c, std::vector<InstAddr> pcs, std::string ccs,
      std::string part)
{
    TraceEntry e;
    e.cycle = c;
    e.live.assign(pcs.size(), true);
    e.pcs = std::move(pcs);
    e.condCodes = std::move(ccs);
    e.partition = std::move(part);
    return e;
}

TEST(Trace, EmptyFormat)
{
    Trace t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.formatted(), "(empty trace)\n");
}

TEST(Trace, Figure10StyleRow)
{
    Trace t;
    t.append(entry(3, {3, 3, 4, 4}, "TTFX", "{0,1}{2}{3}"));
    const std::string s = t.formatted();
    EXPECT_NE(s.find("Cycle 3"), std::string::npos);
    EXPECT_NE(s.find("03:"), std::string::npos);
    EXPECT_NE(s.find("04:"), std::string::npos);
    EXPECT_NE(s.find("TTFX"), std::string::npos);
    EXPECT_NE(s.find("{0,1}{2}{3}"), std::string::npos);
    EXPECT_NE(s.find("FU0"), std::string::npos);
}

TEST(Trace, CompactFormat)
{
    Trace t;
    t.append(entry(0, {0, 0}, "XX", "{0,1}"));
    auto e = entry(1, {1, 0}, "TF", "{0}{1}");
    e.live[1] = false;
    t.append(e);
    EXPECT_EQ(t.compact(),
              "0 | 00 00 | XX | {0,1}\n"
              "1 | 01 -- | TF | {0}{1}\n");
}

TEST(Trace, EntryAccessChecksRange)
{
    Trace t;
    t.append(entry(0, {0}, "X", "{0}"));
    EXPECT_EQ(t.entry(0).cycle, 0u);
    EXPECT_THROW(t.entry(1), PanicError);
}

TEST(Trace, ClearEmpties)
{
    Trace t;
    t.append(entry(0, {0}, "X", "{0}"));
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.size(), 0u);
}

TEST(Trace, HaltedFusShownAsDashes)
{
    Trace t;
    auto e = entry(2, {5, 9}, "TF", "{0}");
    e.live[1] = false;
    t.append(e);
    EXPECT_NE(t.formatted().find("--"), std::string::npos);
}

} // namespace
} // namespace ximd
