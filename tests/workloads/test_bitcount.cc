#include "workloads/bitcount.hh"

#include <gtest/gtest.h>

#include "core/vliw_machine.hh"
#include "core/ximd_machine.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "workloads/reference.hh"

namespace ximd::workloads {
namespace {

std::vector<Word>
randomData(std::size_t n, double density, std::uint64_t seed)
{
    // Each element gets its bits set with probability `density`.
    Rng rng(seed);
    std::vector<Word> data(n);
    for (auto &v : data) {
        v = 0;
        for (int bit = 0; bit < 20; ++bit)
            if (rng.chance(density))
                v |= 1u << bit;
    }
    return data;
}

void
checkCumulative(auto &machine, const std::vector<Word> &data)
{
    const Word b0 = machine.program().symbolOrDie("B0");
    const auto expect = referenceBitcountCumulative(data);
    for (std::size_t i = 0; i <= data.size(); ++i)
        ASSERT_EQ(machine.peekMem(b0 + i), expect[i]) << "B[" << i
                                                      << "]";
}

TEST(BitcountXimd, MatchesReference)
{
    const auto data = randomData(16, 0.4, 1);
    XimdMachine m(bitcountXimd(data));
    ASSERT_TRUE(m.run().ok());
    checkCumulative(m, data);
}

TEST(BitcountXimd, AllZeroElements)
{
    std::vector<Word> data(8, 0);
    XimdMachine m(bitcountXimd(data));
    ASSERT_TRUE(m.run().ok());
    checkCumulative(m, data);
}

TEST(BitcountXimd, DenseElements)
{
    std::vector<Word> data(8, 0xFFFFFu);
    XimdMachine m(bitcountXimd(data));
    ASSERT_TRUE(m.run().ok());
    checkCumulative(m, data);
}

TEST(BitcountXimd, MinimumSizeFourElements)
{
    std::vector<Word> data = {1, 2, 3, 4};
    XimdMachine m(bitcountXimd(data));
    ASSERT_TRUE(m.run().ok());
    checkCumulative(m, data);
}

TEST(BitcountXimd, RejectsBadSizes)
{
    EXPECT_THROW(bitcountXimd(std::vector<Word>(3, 1)), FatalError);
    EXPECT_THROW(bitcountXimd(std::vector<Word>(9, 1)), FatalError);
}

TEST(BitcountVliwSerial, MatchesReference)
{
    const auto data = randomData(11, 0.3, 2); // any n works
    VliwMachine m(bitcountVliwSerial(data));
    ASSERT_TRUE(m.run().ok());
    checkCumulative(m, data);
}

TEST(BitcountVliwSerial, SingleElement)
{
    std::vector<Word> data = {0xDEADu};
    VliwMachine m(bitcountVliwSerial(data));
    ASSERT_TRUE(m.run().ok());
    checkCumulative(m, data);
}

TEST(BitcountVliwLockstep, MatchesReference)
{
    const auto data = randomData(16, 0.5, 3);
    VliwMachine m(bitcountVliwLockstep(data));
    ASSERT_TRUE(m.run().ok());
    checkCumulative(m, data);
}

TEST(BitcountVliwLockstep, SkewedGroup)
{
    // One long element per group forces the lockstep loop to run to
    // the group maximum.
    std::vector<Word> data = {0x80000u, 1, 0, 1, 1, 0, 0x80000u, 1};
    VliwMachine m(bitcountVliwLockstep(data));
    ASSERT_TRUE(m.run().ok());
    checkCumulative(m, data);
}

TEST(Bitcount, XimdBeatsSerialVliw)
{
    const auto data = randomData(32, 0.5, 4);
    XimdMachine x(bitcountXimd(data));
    VliwMachine v(bitcountVliwSerial(data));
    ASSERT_TRUE(x.run().ok());
    ASSERT_TRUE(v.run().ok());
    // Four concurrent inner loops vs one: expect a substantial win.
    const double speedup = static_cast<double>(v.cycle()) /
                           static_cast<double>(x.cycle());
    EXPECT_GT(speedup, 2.0);
}

TEST(Bitcount, XimdBeatsLockstepVliw)
{
    const auto data = randomData(32, 0.5, 5);
    XimdMachine x(bitcountXimd(data));
    VliwMachine v(bitcountVliwLockstep(data));
    ASSERT_TRUE(x.run().ok());
    ASSERT_TRUE(v.run().ok());
    EXPECT_LT(x.cycle(), v.cycle());
}

TEST(Bitcount, ReferencePaperVsCumulativeDiffer)
{
    // The as-printed listing resets its accumulator between groups of
    // four; the cumulative variant does not. Their outputs agree only
    // on the first group.
    std::vector<Word> data(12, 0x3);
    const auto paper = referenceBitcount1Paper(data);
    const auto cumulative = referenceBitcountCumulative(data);
    EXPECT_EQ(paper[4], cumulative[4]);
    EXPECT_NE(paper[5], cumulative[5]);
}

} // namespace
} // namespace ximd::workloads
