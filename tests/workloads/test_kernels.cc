#include "workloads/kernels.hh"

#include <gtest/gtest.h>

#include "core/vliw_machine.hh"
#include "core/ximd_machine.hh"
#include "isa/disasm.hh"
#include "support/logging.hh"
#include "workloads/reference.hh"

namespace ximd::workloads {
namespace {

TEST(Tproc, MatchesReference)
{
    const SWord a = 3, b = -4, c = 7, d = 11;
    XimdMachine m(tprocPaper(a, b, c, d));
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(wordToInt(m.readRegByName("f")),
              referenceTproc(a, b, c, d));
}

TEST(Tproc, RunsIdenticallyOnVliw)
{
    // Example 1 is VLIW-style code: same program, same result, same
    // cycle count on both machines.
    XimdMachine x(tprocPaper(1, 2, 3, 4));
    VliwMachine v(tprocPaper(1, 2, 3, 4));
    EXPECT_TRUE(x.run().ok());
    EXPECT_TRUE(v.run().ok());
    EXPECT_EQ(x.cycle(), v.cycle());
    EXPECT_EQ(x.readRegByName("f"), v.readRegByName("f"));
}

TEST(Tproc, SweepAgainstReference)
{
    for (SWord a : {-7, 0, 5})
        for (SWord b : {-1, 9})
            for (SWord c : {2, -3})
                for (SWord d : {0, 100}) {
                    XimdMachine m(tprocPaper(a, b, c, d));
                    ASSERT_TRUE(m.run().ok());
                    EXPECT_EQ(wordToInt(m.readRegByName("f")),
                              referenceTproc(a, b, c, d))
                        << a << "," << b << "," << c << "," << d;
                }
}

TEST(Tproc, TakesFiveCyclesPlusHalt)
{
    XimdMachine m(tprocPaper(1, 1, 1, 1));
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(m.cycle(), 6u);
}

TEST(MinmaxPaper, SampleDataResults)
{
    XimdMachine m(minmaxPaper());
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(wordToInt(m.readRegByName("min")), 3);
    EXPECT_EQ(wordToInt(m.readRegByName("max")), 7);
}

TEST(MinmaxPaper, ArbitraryData)
{
    const std::vector<SWord> data = {9, -2, 14, 3, 3, -2, 8};
    XimdMachine m(minmaxPaperData(data));
    EXPECT_TRUE(m.run().ok());
    const auto [lo, hi] = referenceMinmax(data);
    EXPECT_EQ(wordToInt(m.readRegByName("min")), lo);
    EXPECT_EQ(wordToInt(m.readRegByName("max")), hi);
}

TEST(MinmaxPaper, SingleElement)
{
    XimdMachine m(minmaxPaperData({42}));
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(wordToInt(m.readRegByName("min")), 42);
    EXPECT_EQ(wordToInt(m.readRegByName("max")), 42);
}

TEST(MinmaxPaper, NonTerminatingVariantSpins)
{
    XimdMachine m(minmaxPaper(/*terminate=*/false));
    EXPECT_EQ(m.run(50).reason, StopReason::MaxCycles);
}

TEST(Bitcount1Paper, AsPrintedSemantics)
{
    const std::vector<Word> data = {0x3, 0xFF, 0x0, 0x10,
                                    0x7, 0x1,  0xF, 0xF0,
                                    0x5, 0xAA, 0x1, 0x80000001};
    XimdMachine m(bitcount1Paper(data));
    ASSERT_TRUE(m.run().ok());
    const Word b0 = m.program().symbolOrDie("B0");
    const auto expect = referenceBitcount1Paper(data);
    for (std::size_t i = 0; i <= data.size(); ++i)
        EXPECT_EQ(m.peekMem(b0 + i), expect[i]) << "B[" << i << "]";
}

TEST(Bitcount1Paper, RejectsUnsupportedSizes)
{
    EXPECT_THROW(bitcount1Paper(std::vector<Word>(8, 1)), FatalError);
    EXPECT_THROW(bitcount1Paper(std::vector<Word>(13, 1)), FatalError);
}

TEST(Bitcount1Paper, UsesMultipleStreams)
{
    std::vector<Word> data(12);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<Word>(1) << (i % 20);
    XimdMachine m(bitcount1Paper(data));
    ASSERT_TRUE(m.run().ok());
    const auto &hist = m.stats().partitionHistogram();
    // The inner loops diverge: some cycles must show > 1 stream.
    bool multi = false;
    for (const auto &[streams, cycles] : hist)
        if (streams > 1 && cycles > 0)
            multi = true;
    EXPECT_TRUE(multi);
    EXPECT_GT(m.stats().busyWaitCycles(), 0u);
}

TEST(Loop12Naive, MatchesReference)
{
    const std::vector<float> y = {1.0f, 4.0f, 2.5f, 2.5f, -1.0f, 7.0f};
    XimdMachine m(loop12Naive(y));
    ASSERT_TRUE(m.run().ok());
    const Word x0 = m.program().symbolOrDie("X0");
    const auto expect = referenceLoop12(y);
    for (std::size_t k = 0; k < expect.size(); ++k)
        EXPECT_FLOAT_EQ(wordToFloat(m.peekMem(x0 + 1 + k)), expect[k])
            << "X(" << k + 1 << ")";
}

TEST(Loop12Naive, ThreeCyclesPerIteration)
{
    std::vector<float> y(11, 1.0f); // n = 10
    XimdMachine m(loop12Naive(y));
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(m.cycle(), 3u * 10u + 1u); // + halt row
}

TEST(Loop12Naive, WiderMachinePadsWithNops)
{
    const std::vector<float> y = {0.0f, 1.0f, 3.0f};
    XimdMachine m(loop12Naive(y, 8));
    ASSERT_TRUE(m.run().ok());
    const Word x0 = m.program().symbolOrDie("X0");
    EXPECT_FLOAT_EQ(wordToFloat(m.peekMem(x0 + 1)), 1.0f);
    EXPECT_FLOAT_EQ(wordToFloat(m.peekMem(x0 + 2)), 2.0f);
}

TEST(Loop12Naive, SameOnVliw)
{
    const std::vector<float> y = {1.0f, 2.0f, 4.0f, 8.0f};
    XimdMachine x(loop12Naive(y));
    VliwMachine v(loop12Naive(y));
    EXPECT_TRUE(x.run().ok());
    EXPECT_TRUE(v.run().ok());
    EXPECT_EQ(x.cycle(), v.cycle());
}

TEST(Kernels, DisassembleCleanly)
{
    // Every paper kernel must produce a listing that names its
    // symbolic registers and uses the paper's notation.
    const std::string minmax = formatProgram(minmaxPaper());
    EXPECT_NE(minmax.find("lt tz,#2147483647"), std::string::npos);
    EXPECT_NE(minmax.find("if cc2 08:|02:"), std::string::npos);
    EXPECT_NE(minmax.find("iadd tz,#0,min"), std::string::npos);

    const std::string bc =
        formatProgram(bitcount1Paper(std::vector<Word>(12, 1)));
    EXPECT_NE(bc.find("if all"), std::string::npos);
    EXPECT_NE(bc.find("; done"), std::string::npos);
    EXPECT_NE(bc.find("shr d0,#1,d0"), std::string::npos);

    const std::string tp = formatProgram(tprocPaper(1, 2, 3, 4));
    EXPECT_NE(tp.find("imult c,a,f"), std::string::npos);
    // VLIW-mode listing: no sync column at all.
    EXPECT_EQ(tp.find("busy"), std::string::npos);
}

TEST(Reference, Popcount)
{
    EXPECT_EQ(referencePopcount(0), 0u);
    EXPECT_EQ(referencePopcount(0xFF), 8u);
    EXPECT_EQ(referencePopcount(0x80000001), 2u);
    EXPECT_EQ(referencePopcount(~0u), 32u);
}

} // namespace
} // namespace ximd::workloads
