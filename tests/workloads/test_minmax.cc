#include "workloads/minmax.hh"

#include <gtest/gtest.h>

#include "core/vliw_machine.hh"
#include "core/ximd_machine.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "workloads/reference.hh"

namespace ximd::workloads {
namespace {

std::vector<SWord>
randomData(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<SWord> data(n);
    for (auto &v : data)
        v = static_cast<SWord>(rng.range(-1000, 1000));
    return data;
}

TEST(MinmaxVliw, MatchesReferenceOnSamples)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        const auto data = randomData(17, seed);
        VliwMachine m(minmaxVliw(data));
        ASSERT_TRUE(m.run().ok());
        const auto [lo, hi] = referenceMinmax(data);
        EXPECT_EQ(wordToInt(m.readRegByName("min")), lo);
        EXPECT_EQ(wordToInt(m.readRegByName("max")), hi);
    }
}

TEST(MinmaxVliw, SingleAndDoubleElement)
{
    for (const auto &data :
         {std::vector<SWord>{5}, std::vector<SWord>{5, -9},
          std::vector<SWord>{-9, 5}}) {
        VliwMachine m(minmaxVliw(data));
        ASSERT_TRUE(m.run().ok());
        const auto [lo, hi] = referenceMinmax(data);
        EXPECT_EQ(wordToInt(m.readRegByName("min")), lo);
        EXPECT_EQ(wordToInt(m.readRegByName("max")), hi);
    }
}

TEST(MinmaxXimd, BeatsVliwPerIteration)
{
    const auto data = randomData(256, 42);
    XimdMachine x(minmaxXimd(data));
    VliwMachine v(minmaxVliw(data));
    ASSERT_TRUE(x.run().ok());
    ASSERT_TRUE(v.run().ok());
    // XIMD: 3 cycles/element; VLIW: 5 cycles/element (both + O(1)).
    const double speedup = static_cast<double>(v.cycle()) /
                           static_cast<double>(x.cycle());
    EXPECT_GT(speedup, 1.5);
    EXPECT_LT(speedup, 1.8);
}

class MultiSearchParam
    : public ::testing::TestWithParam<std::tuple<unsigned, int>>
{
};

TEST_P(MultiSearchParam, XimdMatchesReference)
{
    const auto [searches, n] = GetParam();
    Rng rng(searches * 100 + n);
    std::vector<SWord> data(n);
    for (auto &v : data)
        v = static_cast<SWord>(rng.range(0, 5000));

    XimdMachine m(multiSearchXimd(searches, data));
    ASSERT_TRUE(m.run().ok());
    const auto expect = referenceMultiSearch(searches, data);
    for (unsigned s = 0; s < searches; ++s)
        EXPECT_EQ(m.readRegByName("c" + std::to_string(s)), expect[s])
            << "search " << s;
}

TEST_P(MultiSearchParam, VliwMatchesReference)
{
    const auto [searches, n] = GetParam();
    Rng rng(searches * 331 + n);
    std::vector<SWord> data(n);
    for (auto &v : data)
        v = static_cast<SWord>(rng.range(0, 5000));

    VliwMachine m(multiSearchVliw(searches, data));
    ASSERT_TRUE(m.run().ok());
    const auto expect = referenceMultiSearch(searches, data);
    for (unsigned s = 0; s < searches; ++s)
        EXPECT_EQ(m.readRegByName("c" + std::to_string(s)), expect[s])
            << "search " << s;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiSearchParam,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 6u),
                       ::testing::Values(1, 7, 64)));

TEST(MultiSearch, XimdIterationCostIndependentOfSearches)
{
    const auto data = randomData(100, 7);
    std::vector<SWord> nonneg;
    for (SWord v : data)
        nonneg.push_back(v < 0 ? -v : v);

    XimdMachine m1(multiSearchXimd(1, nonneg));
    XimdMachine m6(multiSearchXimd(6, nonneg));
    ASSERT_TRUE(m1.run().ok());
    ASSERT_TRUE(m6.run().ok());
    EXPECT_EQ(m1.cycle(), m6.cycle());
}

TEST(MultiSearch, VliwIterationCostGrowsWithSearches)
{
    const auto data = randomData(100, 8);
    std::vector<SWord> nonneg;
    for (SWord v : data)
        nonneg.push_back(v < 0 ? -v : v);

    VliwMachine m1(multiSearchVliw(1, nonneg));
    VliwMachine m6(multiSearchVliw(6, nonneg));
    ASSERT_TRUE(m1.run().ok());
    ASSERT_TRUE(m6.run().ok());
    // 2S+4 cycles per iteration: 6 vs 16.
    const double ratio = static_cast<double>(m6.cycle()) /
                         static_cast<double>(m1.cycle());
    EXPECT_GT(ratio, 2.3);
    EXPECT_LT(ratio, 2.9);
}

TEST(MultiSearch, ForkJoinVisibleInPartitionHistogram)
{
    std::vector<SWord> data = {6, 10, 15, 30, 7, 9};
    XimdMachine m(multiSearchXimd(3, data));
    ASSERT_TRUE(m.run().ok());
    const auto &hist = m.stats().partitionHistogram();
    EXPECT_TRUE(hist.count(1));
    bool forked = false;
    for (const auto &[streams, cycles] : hist)
        if (streams >= 3)
            forked = true;
    EXPECT_TRUE(forked);
}

TEST(MultiSearch, ArgumentValidation)
{
    EXPECT_THROW(multiSearchXimd(0, {1}), FatalError);
    EXPECT_THROW(multiSearchXimd(7, {1}), FatalError);
    EXPECT_THROW(multiSearchXimd(2, {}), FatalError);
    EXPECT_THROW(multiSearchXimd(2, {-1}), FatalError);
    EXPECT_THROW(multiSearchVliw(0, {1}), FatalError);
}

} // namespace
} // namespace ximd::workloads
