#include "workloads/nonblocking.hh"

#include <gtest/gtest.h>

#include "core/ximd_machine.hh"
#include "support/logging.hh"

namespace ximd::workloads {
namespace {

struct Harness
{
    explicit Harness(Program prog,
                     std::vector<Cycle> arrivalsA = {0, 0, 0},
                     std::vector<Cycle> arrivalsB = {0, 0, 0})
        : machine(std::move(prog)), inA("INA"), inB("INB"),
          outA("OUTA"), outB("OUTB")
    {
        const Word a[3] = {11, 12, 13}; // a, b, c
        const Word x[3] = {21, 22, 23}; // x, y, z
        for (unsigned i = 0; i < 3; ++i) {
            inA.schedule(arrivalsA[i], a[i]);
            inB.schedule(arrivalsB[i], x[i]);
        }
        attach();
    }

    void
    attach()
    {
        const auto &p = machine.program();
        machine.attachDevice(p.symbolOrDie("INA"),
                             p.symbolOrDie("INA"), &inA);
        machine.attachDevice(p.symbolOrDie("INB"),
                             p.symbolOrDie("INB"), &inB);
        machine.attachDevice(p.symbolOrDie("OUTA"),
                             p.symbolOrDie("OUTA"), &outA);
        machine.attachDevice(p.symbolOrDie("OUTB"),
                             p.symbolOrDie("OUTB"), &outB);
    }

    std::vector<Word>
    written(const OutputPort &port) const
    {
        std::vector<Word> vals;
        for (const auto &rec : port.records())
            vals.push_back(rec.value);
        return vals;
    }

    XimdMachine machine;
    ScriptedInputPort inA, inB;
    OutputPort outA, outB;
};

void
expectCorrectTransfer(Harness &h)
{
    ASSERT_TRUE(h.machine.run(100000).ok());
    EXPECT_EQ(h.written(h.outA), (std::vector<Word>{21, 22, 23}));
    EXPECT_EQ(h.written(h.outB), (std::vector<Word>{11, 12, 13}));
    EXPECT_TRUE(h.inA.drained());
    EXPECT_TRUE(h.inB.drained());
}

TEST(Nonblocking, TransfersAllValuesImmediateArrivals)
{
    Harness h(nonblockingXimd());
    expectCorrectTransfer(h);
}

TEST(Nonblocking, TransfersWithSkewedArrivals)
{
    Harness h(nonblockingXimd(), {5, 50, 55}, {40, 45, 90});
    expectCorrectTransfer(h);
}

TEST(Nonblocking, ProducerNotBlockedByConsumer)
{
    // a,b,c arrive early; x,y,z very late. P1 should finish all its
    // reads long before P2's data exists — the non-blocking property.
    Harness h(nonblockingXimd(), {0, 0, 0}, {200, 210, 220});
    ASSERT_TRUE(h.machine.run(100000).ok());
    // OUTB got a,b,c before x even arrived (FU7 waits only on SS0-2).
    ASSERT_EQ(h.outB.records().size(), 3u);
    EXPECT_LT(h.outB.records()[2].cycle, 200u);
}

TEST(Nonblocking, LatencyTracksSlowestChain)
{
    Harness fast(nonblockingXimd(), {0, 0, 0}, {0, 0, 0});
    ASSERT_TRUE(fast.machine.run(100000).ok());
    const Cycle base = fast.machine.cycle();

    Harness slow(nonblockingXimd(), {0, 0, 0}, {0, 0, 300});
    ASSERT_TRUE(slow.machine.run(100000).ok());
    // Finishing time is bounded by the late arrival plus a small
    // constant, not by the sum of arrivals.
    EXPECT_GT(slow.machine.cycle(), 300u);
    EXPECT_LT(slow.machine.cycle(), 300u + base + 10);
}

TEST(LockstepBarrier, TransfersAllValues)
{
    Harness h(lockstepBarrier());
    expectCorrectTransfer(h);
}

TEST(LockstepBarrier, TransfersWithSkewedArrivals)
{
    Harness h(lockstepBarrier(), {5, 50, 55}, {40, 45, 90});
    expectCorrectTransfer(h);
}

TEST(LockstepBarrier, SerializesStages)
{
    // b (stage 1) arrives at cycle 0 but cannot be consumed until the
    // stage-0 barrier passes, which waits for x at cycle 100.
    Harness h(lockstepBarrier(), {0, 0, 0}, {100, 100, 100});
    ASSERT_TRUE(h.machine.run(100000).ok());
    // All three x,y,z arrive at 100, so total only slightly above 100.
    EXPECT_GT(h.machine.cycle(), 100u);
    // But OUTB's first value is also delayed past 100 — the barrier
    // blocked it even though 'a' was ready at cycle 0.
    ASSERT_FALSE(h.outB.records().empty());
    EXPECT_GT(h.outB.records()[0].cycle, 100u);
}

TEST(MemoryFlag, TransfersAllValues)
{
    Harness h(memoryFlagXimd());
    expectCorrectTransfer(h);
}

TEST(MemoryFlag, TransfersWithSkewedArrivals)
{
    Harness h(memoryFlagXimd(), {5, 50, 55}, {40, 45, 90});
    expectCorrectTransfer(h);
}

TEST(MemoryFlag, SlowerThanSyncBits)
{
    // Same dataflow, same arrivals: the SS-bit version's 1-cycle tests
    // beat the 3-cycle memory-flag polls (the paper's section 3.4
    // claim).
    Harness ss(nonblockingXimd());
    Harness mf(memoryFlagXimd());
    ASSERT_TRUE(ss.machine.run(100000).ok());
    ASSERT_TRUE(mf.machine.run(100000).ok());
    EXPECT_LT(ss.machine.cycle(), mf.machine.cycle());
}

TEST(Nonblocking, UsesMultipleStreams)
{
    Harness h(nonblockingXimd(), {3, 9, 15}, {5, 11, 17});
    ASSERT_TRUE(h.machine.run(100000).ok());
    bool multi = false;
    for (const auto &[streams, cycles] :
         h.machine.stats().partitionHistogram())
        if (streams >= 4 && cycles > 0)
            multi = true;
    EXPECT_TRUE(multi);
}

} // namespace
} // namespace ximd::workloads
