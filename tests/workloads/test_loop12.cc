#include "workloads/loop12.hh"

#include <gtest/gtest.h>

#include "core/vliw_machine.hh"
#include "core/ximd_machine.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "workloads/kernels.hh"
#include "workloads/reference.hh"

namespace ximd::workloads {
namespace {

std::vector<float>
randomY(std::size_t m, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> y(m);
    for (auto &v : y)
        v = static_cast<float>(rng.range(-64, 64)) * 0.25f;
    return y;
}

void
checkX(auto &machine, const std::vector<float> &y)
{
    const Word x0 = machine.program().symbolOrDie("X0");
    const auto expect = referenceLoop12(y);
    for (std::size_t k = 0; k < expect.size(); ++k)
        ASSERT_FLOAT_EQ(wordToFloat(machine.peekMem(x0 + 1 + k)),
                        expect[k])
            << "X(" << k + 1 << ")";
}

TEST(Loop12Pipelined, MatchesReference)
{
    const auto y = randomY(13, 1);
    XimdMachine m(loop12Pipelined(y));
    ASSERT_TRUE(m.run().ok());
    checkX(m, y);
}

TEST(Loop12Pipelined, MinimumSize)
{
    const auto y = randomY(5, 2); // n = 4
    XimdMachine m(loop12Pipelined(y));
    ASSERT_TRUE(m.run().ok());
    checkX(m, y);
}

TEST(Loop12Pipelined, RejectsTinyInputs)
{
    EXPECT_THROW(loop12Pipelined(std::vector<float>(4, 0.0f)),
                 FatalError);
}

TEST(Loop12Pipelined, InitiationIntervalIsOne)
{
    const auto y = randomY(101, 3); // n = 100
    XimdMachine m(loop12Pipelined(y));
    ASSERT_TRUE(m.run().ok());
    // n + 2 pipeline cycles + 1 halt cycle.
    EXPECT_EQ(m.cycle(), 100u + 3u);
}

TEST(Loop12Pipelined, ThreeTimesFasterThanNaive)
{
    const auto y = randomY(201, 4); // n = 200
    XimdMachine pipe(loop12Pipelined(y));
    XimdMachine naive(loop12Naive(y, 8));
    ASSERT_TRUE(pipe.run().ok());
    ASSERT_TRUE(naive.run().ok());
    const double speedup = static_cast<double>(naive.cycle()) /
                           static_cast<double>(pipe.cycle());
    EXPECT_GT(speedup, 2.8);
    EXPECT_LT(speedup, 3.2);
}

TEST(Loop12Pipelined, IdenticalOnVliwAndXimd)
{
    // A software-pipelined loop is still one instruction stream: the
    // paper's "fully synchronous VLIW-style execution model".
    const auto y = randomY(33, 5);
    XimdMachine x(loop12Pipelined(y));
    VliwMachine v(loop12Pipelined(y));
    ASSERT_TRUE(x.run().ok());
    ASSERT_TRUE(v.run().ok());
    EXPECT_EQ(x.cycle(), v.cycle());
    checkX(x, y);
    checkX(v, y);
}

TEST(Loop12Pipelined, OneFlopPerCycleInSteadyState)
{
    const auto y = randomY(501, 6);
    XimdMachine m(loop12Pipelined(y));
    ASSERT_TRUE(m.run().ok());
    const double flops_per_cycle =
        static_cast<double>(m.stats().flops()) /
        static_cast<double>(m.cycle());
    EXPECT_GT(flops_per_cycle, 0.95);
}

} // namespace
} // namespace ximd::workloads
