/**
 * @file
 * Frontend tests: lexer, parser, and AST -> IR lowering
 * (src/frontend/, the xcc --input=c path).
 *
 * Semantics are pinned two ways: interpretIr on the lowered program
 * (the IR-level oracle), and full compiles through the pipeline run
 * on the machine where it matters (the Livermore kernels get that
 * treatment in the CLI tests; here we stay at the IR level so
 * failures point at the frontend, not the scheduler).
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "frontend/frontend.hh"
#include "frontend/lexer.hh"
#include "frontend/parser.hh"
#include "sched/ir_print.hh"
#include "support/types.hh"

namespace {

using namespace ximd;
using namespace ximd::frontend;
using sched::IrProgram;
using sched::interpretIr;

/** Compile or fail the test with the formatted diagnostic. */
IrProgram
compileOrDie(const std::string &src)
{
    auto r = compileC(src);
    EXPECT_TRUE(r.hasValue())
        << (r.hasValue() ? "" : r.error().format());
    return std::move(r).value();
}

/** Lower and interpret: returns data memory (4096 words). */
std::vector<Word>
runC(const std::string &src)
{
    IrProgram ir = compileOrDie(src);
    std::vector<Word> mem(4096, 0);
    interpretIr(ir, mem);
    return mem;
}

// ---------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------

TEST(Lexer, TokenizesOperatorsAndLiterals)
{
    auto r = lex("int a = 1; a = a * 2 + 3.5; // trailing\n"
                 "/* block\n comment */ a = a / 2;");
    ASSERT_TRUE(r.hasValue());
    const auto &toks = r.value();
    EXPECT_EQ(toks.front().kind, Tok::KwInt);
    bool sawFloat = false;
    for (const Token &t : toks)
        if (t.kind == Tok::FloatLit) {
            sawFloat = true;
            EXPECT_FLOAT_EQ(t.floatVal, 3.5f);
        }
    EXPECT_TRUE(sawFloat);
    EXPECT_EQ(toks.back().kind, Tok::Eof);
    // The post-comment statement carries line 3.
    EXPECT_EQ(toks[toks.size() - 2].line, 3);
}

TEST(Lexer, RejectsUnknownCharacter)
{
    auto r = lex("int a = 1 @ 2;");
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().pass, "c-parse");
    EXPECT_EQ(r.error().line, 1);
}

TEST(Lexer, RejectsUnterminatedComment)
{
    auto r = lex("int a;\n/* never closed");
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().pass, "c-parse");
}

TEST(Lexer, RejectsBareBang)
{
    auto r = lex("int a = !1;");
    ASSERT_FALSE(r.hasValue());
}

// ---------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------

TEST(Parser, BuildsDeclAndLoopAst)
{
    auto toks = lex("int n = 4;\n"
                    "float x[8];\n"
                    "int k;\n"
                    "for (k = 0; k < n; k = k + 1) { x[k] = 1.0; }");
    ASSERT_TRUE(toks.hasValue());
    auto prog = parse(toks.value());
    ASSERT_TRUE(prog.hasValue());
    const CProgram &p = prog.value();
    ASSERT_EQ(p.stmts.size(), 4u);
    EXPECT_EQ(p.stmts[0]->kind, Stmt::Kind::Decl);
    EXPECT_FALSE(p.stmts[0]->isFloat);
    EXPECT_EQ(p.stmts[1]->arraySize, 8);
    EXPECT_TRUE(p.stmts[1]->isFloat);
    EXPECT_EQ(p.stmts[3]->kind, Stmt::Kind::For);
    ASSERT_NE(p.stmts[3]->thenStmt, nullptr);
    EXPECT_EQ(p.stmts[3]->thenStmt->kind, Stmt::Kind::Block);
}

TEST(Parser, ErrorNamesLineAndToken)
{
    auto toks = lex("int a = 1;\nint b = ;");
    ASSERT_TRUE(toks.hasValue());
    auto prog = parse(toks.value());
    ASSERT_FALSE(prog.hasValue());
    EXPECT_EQ(prog.error().pass, "c-parse");
    EXPECT_EQ(prog.error().line, 2);
}

TEST(Parser, RejectsArrayInitializer)
{
    auto toks = lex("float x[4] = 1.0;");
    ASSERT_TRUE(toks.hasValue());
    EXPECT_FALSE(parse(toks.value()).hasValue());
}

TEST(Parser, RejectsNonPositiveArraySize)
{
    auto toks = lex("float x[0];");
    ASSERT_TRUE(toks.hasValue());
    EXPECT_FALSE(parse(toks.value()).hasValue());
}

TEST(Parser, RejectsConditionOutsideControlHead)
{
    auto toks = lex("int a;\na = 1 < 2;");
    ASSERT_TRUE(toks.hasValue());
    EXPECT_FALSE(parse(toks.value()).hasValue());
}

// ---------------------------------------------------------------
// Lowering: shapes.
// ---------------------------------------------------------------

TEST(Lower, TopLevelLiteralInitsBecomeVinit)
{
    IrProgram ir = compileOrDie("int a = 7;\nfloat f = 2.5;\n"
                                "int b;\nb = a;");
    // Two .vinit entries, no Mov for them.
    EXPECT_EQ(ir.vregInit.size(), 2u);
    const std::string text = sched::printIr(ir);
    EXPECT_NE(text.find(".vinit"), std::string::npos);
    EXPECT_EQ(ir.blocks.front().name, "entry");
}

TEST(Lower, OpsCarrySourceLines)
{
    IrProgram ir = compileOrDie("int a;\n"
                                "a = 1 + 2;\n"
                                "a = a * 3;\n");
    ASSERT_FALSE(ir.blocks.empty());
    std::vector<int> lines;
    for (const auto &op : ir.blocks.front().ops)
        lines.push_back(op.line);
    ASSERT_GE(lines.size(), 2u);
    EXPECT_EQ(lines[0], 2);
    EXPECT_EQ(lines[1], 3);
}

TEST(Lower, IntLiteralFoldsToFloatBitExactly)
{
    // 3 folds to 3.0f at compile time; the datapath's Itof is
    // static_cast<float>, so folding and converting agree.
    auto mem = runC("float f[1];\nfloat g;\ng = 3 * 0.5;\n"
                    "f[0] = g;");
    EXPECT_FLOAT_EQ(wordToFloat(mem[1024]), 1.5f);
}

TEST(Lower, FloatToIntConversionTruncates)
{
    auto mem = runC("int r[1];\nint i;\nfloat f = 7.9;\n"
                    "i = f;\nr[0] = i;");
    EXPECT_EQ(static_cast<SWord>(mem[1024]), 7);
}

// ---------------------------------------------------------------
// Lowering: semantics via the IR interpreter.
// ---------------------------------------------------------------

TEST(Lower, ScalarArithmetic)
{
    auto mem = runC("int r[4];\nint a = 10;\nint b = 3;\n"
                    "r[0] = a + b;\nr[1] = a - b;\n"
                    "r[2] = a * b;\nr[3] = a / b;");
    EXPECT_EQ(mem[1024], 13u);
    EXPECT_EQ(mem[1025], 7u);
    EXPECT_EQ(mem[1026], 30u);
    EXPECT_EQ(mem[1027], 3u);
}

TEST(Lower, ModuloAndUnaryMinus)
{
    auto mem = runC("int r[2];\nint a = 17;\n"
                    "r[0] = a % 5;\nr[1] = 0 - (0 - a);");
    EXPECT_EQ(mem[1024], 2u);
    EXPECT_EQ(mem[1025], 17u);
}

TEST(Lower, IfElseTakesBothArms)
{
    const char *src = "int r[2];\nint a = 5;\n"
                      "if (a > 3) { r[0] = 1; } else { r[0] = 2; }\n"
                      "if (a > 9) { r[1] = 1; } else { r[1] = 2; }";
    auto mem = runC(src);
    EXPECT_EQ(mem[1024], 1u);
    EXPECT_EQ(mem[1025], 2u);
}

TEST(Lower, WhileLoopRuns)
{
    auto mem = runC("int r[1];\nint i = 0;\nint s = 0;\n"
                    "while (i < 10) { i = i + 1; s = s + i; }\n"
                    "r[0] = s;");
    EXPECT_EQ(mem[1024], 55u);
}

TEST(Lower, ForOverArrayIndices)
{
    auto mem = runC("int n = 8;\nint x[8];\nint k;\n"
                    "for (k = 0; k < n; k = k + 1) { x[k] = k * k; }");
    for (unsigned k = 0; k < 8; ++k)
        EXPECT_EQ(mem[1024 + k], k * k);
}

TEST(Lower, NestedLoopsAndDynamicIndexing)
{
    // x[i*4 + j] = i + j over a 4x4 grid.
    auto mem = runC(
        "int x[16];\nint i;\nint j;\n"
        "for (i = 0; i < 4; i = i + 1) {\n"
        "  for (j = 0; j < 4; j = j + 1) { x[i * 4 + j] = i + j; }\n"
        "}");
    for (unsigned i = 0; i < 4; ++i)
        for (unsigned j = 0; j < 4; ++j)
            EXPECT_EQ(mem[1024 + i * 4 + j], i + j);
}

TEST(Lower, ArraysPackContiguously)
{
    auto mem = runC("int a[2];\nint b[3];\n"
                    "a[0] = 1; a[1] = 2;\n"
                    "b[0] = 3; b[1] = 4; b[2] = 5;");
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(mem[1024 + i], i + 1);
}

TEST(Lower, FloatReduction)
{
    auto mem = runC("float r[1];\nfloat q = 0.0;\nint k;\n"
                    "float z[4];\n"
                    "for (k = 0; k < 4; k = k + 1) {"
                    "  z[k] = 1.0 + k * 0.5; }\n"
                    "for (k = 0; k < 4; k = k + 1) {"
                    "  q = q + z[k]; }\n"
                    "r[0] = q;");
    EXPECT_FLOAT_EQ(wordToFloat(mem[1024]), 1.0f + 1.5f + 2.0f + 2.5f);
}

// ---------------------------------------------------------------
// Lowering: structured errors.
// ---------------------------------------------------------------

TEST(LowerErrors, UnknownVariable)
{
    auto r = compileC("int a;\na = ghost + 1;");
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().pass, "c-lower");
    EXPECT_EQ(r.error().line, 2);
}

TEST(LowerErrors, Redeclaration)
{
    auto r = compileC("int a;\nfloat a;");
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().pass, "c-lower");
}

TEST(LowerErrors, IndexingAScalar)
{
    auto r = compileC("int a;\na[0] = 1;");
    ASSERT_FALSE(r.hasValue());
}

TEST(LowerErrors, ArrayUsedAsScalar)
{
    auto r = compileC("int a[4];\nint b;\nb = a;");
    ASSERT_FALSE(r.hasValue());
}

TEST(LowerErrors, FloatModulo)
{
    auto r = compileC("float f = 1.5;\nfloat g;\ng = f % 2.0;");
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().pass, "c-lower");
}

// ---------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------

TEST(Frontend, CompilationIsDeterministic)
{
    const char *src = "int n = 8;\nfloat x[8];\nint k;\n"
                      "for (k = 0; k < n; k = k + 1) {"
                      "  x[k] = 0.5 + k * 2.0; }";
    EXPECT_EQ(sched::printIr(compileOrDie(src)),
              sched::printIr(compileOrDie(src)));
}

} // namespace
