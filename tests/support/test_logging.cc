#include "support/logging.hh"

#include <gtest/gtest.h>

namespace ximd {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad thing ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug ", 7), PanicError);
}

TEST(Logging, FatalMessageContainsArguments)
{
    try {
        fatal("register r", 12, " out of range");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("register r12 out of range"),
                  std::string::npos);
    }
}

TEST(Logging, PanicIsNotAFatalError)
{
    try {
        panic("x");
        FAIL();
    } catch (const FatalError &) {
        FAIL() << "panic should not be catchable as FatalError";
    } catch (const PanicError &) {
        SUCCEED();
    }
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(XIMD_ASSERT(1 + 1 == 2, "math works"));
}

TEST(Logging, AssertThrowsOnFalse)
{
    EXPECT_THROW(XIMD_ASSERT(false, "broken"), PanicError);
}

TEST(Logging, AssertMessageNamesCondition)
{
    try {
        XIMD_ASSERT(2 < 1, "ordering");
        FAIL();
    } catch (const PanicError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("2 < 1"), std::string::npos);
        EXPECT_NE(msg.find("ordering"), std::string::npos);
    }
}

} // namespace
} // namespace ximd
