#include "support/json.hh"

#include <string>

#include <gtest/gtest.h>

namespace ximd::json {
namespace {

Value
parseOk(std::string_view text)
{
    auto r = parse(text);
    EXPECT_TRUE(r.hasValue()) << (r.hasValue()
                                      ? ""
                                      : r.error().formatted());
    return r.hasValue() ? std::move(r.value()) : Value();
}

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_EQ(parseOk("true").asBool(), true);
    EXPECT_EQ(parseOk("false").asBool(), false);
    EXPECT_EQ(parseOk("42").asInt(), 42);
    EXPECT_EQ(parseOk("-7").asInt(), -7);
    EXPECT_DOUBLE_EQ(parseOk("2.5e1").asNumber(), 25.0);
    EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesStringEscapes)
{
    EXPECT_EQ(parseOk(R"("a\"b\\c\nd")").asString(), "a\"b\\c\nd");
    EXPECT_EQ(parseOk(R"("A")").asString(), "A");
}

TEST(Json, ParsesNestedStructure)
{
    const Value v = parseOk(
        R"({"runs": [{"n": [1, 2]}, {"mode": "vliw"}], "x": {}})");
    ASSERT_TRUE(v.isObject());
    const Value *runs = v.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_TRUE(runs->isArray());
    ASSERT_EQ(runs->items().size(), 2u);
    const Value *n = runs->items()[0].find("n");
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->items().size(), 2u);
    EXPECT_EQ(runs->items()[1].find("mode")->asString(), "vliw");
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_FALSE(parse("").hasValue());
    EXPECT_FALSE(parse("{").hasValue());
    EXPECT_FALSE(parse("[1,]").hasValue());
    EXPECT_FALSE(parse("{\"a\" 1}").hasValue());
    EXPECT_FALSE(parse("nul").hasValue());
    EXPECT_FALSE(parse("1 2").hasValue()); // trailing junk
    EXPECT_FALSE(parse("'single'").hasValue());
}

TEST(Json, ParseErrorCarriesOffset)
{
    auto r = parse("[1, !]");
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().offset, 4u);
    EXPECT_NE(r.error().formatted().find("byte 4"),
              std::string::npos);
}

TEST(Json, DumpIsInsertionOrdered)
{
    Value o = Value::object();
    o.set("zeta", 1);
    o.set("alpha", 2);
    o.set("zeta", 3); // replaces in place, keeps position
    EXPECT_EQ(o.dump(), "{\"zeta\":3,\"alpha\":2}");
}

TEST(Json, IntegersRoundTripExactly)
{
    const std::string text = "[0,1,-1,9007199254740992,123456789]";
    EXPECT_EQ(parseOk(text).dump(), text);
}

TEST(Json, DoublesUseShortestForm)
{
    Value v(0.421001);
    EXPECT_EQ(v.dump(), "0.421001");
}

TEST(Json, RoundTripStable)
{
    // dump(parse(dump(x))) == dump(x): the reports the farm writes
    // re-parse to the same document.
    Value o = Value::object();
    o.set("name", "minmax/ximd");
    o.set("ok", true);
    o.set("cycles", std::uint64_t{769});
    Value arr = Value::array();
    arr.push(1);
    arr.push(2.5);
    arr.push("s");
    o.set("items", std::move(arr));
    const std::string once = o.dump(2);
    EXPECT_EQ(parseOk(once).dump(2), once);
}

TEST(Json, QuoteEscapes)
{
    EXPECT_EQ(quote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(quote("tab\t"), "\"tab\\t\"");
}

} // namespace
} // namespace ximd::json
