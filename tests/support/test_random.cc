#include "support/random.hh"

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace ximd {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool differed = false;
    for (int i = 0; i < 16 && !differed; ++i)
        differed = a.next64() != b.next64();
    EXPECT_TRUE(differed);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.range(-5, 17);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 17);
    }
}

TEST(Rng, RangeSingletonAlwaysReturnsIt)
{
    Rng r(9);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(r.range(42, 42), 42);
}

TEST(Rng, RangeCoversAllValuesEventually)
{
    Rng r(11);
    bool seen[4] = {};
    for (int i = 0; i < 1000; ++i)
        seen[r.range(0, 3)] = true;
    EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng r(19);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.25);
    EXPECT_GT(hits, 2000);
    EXPECT_LT(hits, 3000);
}

TEST(Rng, BadRangeThrows)
{
    Rng r(21);
    EXPECT_THROW(r.range(3, 2), PanicError);
}

} // namespace
} // namespace ximd
