#include "support/result.hh"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace ximd {
namespace {

struct Err
{
    std::string message;
};

TEST(Result, ValueArm)
{
    Result<int, Err> r = 42;
    EXPECT_TRUE(r.hasValue());
    EXPECT_TRUE(static_cast<bool>(r));
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(*r, 42);
    EXPECT_EQ(r.valueOr(7), 42);
}

TEST(Result, ErrorArm)
{
    Result<int, Err> r{errTag, Err{"boom"}};
    EXPECT_FALSE(r.hasValue());
    EXPECT_FALSE(static_cast<bool>(r));
    EXPECT_EQ(r.error().message, "boom");
    EXPECT_EQ(r.valueOr(7), 7);
}

TEST(Result, ImplicitConstructionFromValue)
{
    auto make = [](bool ok) -> Result<std::string, Err> {
        if (ok)
            return std::string("fine");
        return {errTag, Err{"nope"}};
    };
    EXPECT_TRUE(make(true).hasValue());
    EXPECT_EQ(make(true).value(), "fine");
    EXPECT_EQ(make(false).error().message, "nope");
}

TEST(Result, MoveOnlyValueMovesOut)
{
    Result<std::unique_ptr<int>, Err> r = std::make_unique<int>(5);
    ASSERT_TRUE(r.hasValue());
    std::unique_ptr<int> taken = std::move(r).value();
    ASSERT_NE(taken, nullptr);
    EXPECT_EQ(*taken, 5);
}

TEST(Result, ArrowOperator)
{
    Result<std::string, Err> r = std::string("abc");
    EXPECT_EQ(r->size(), 3u);
}

} // namespace
} // namespace ximd
