#include "support/str.hh"

#include <gtest/gtest.h>

namespace ximd {
namespace {

TEST(Str, TrimRemovesSurroundingWhitespace)
{
    EXPECT_EQ(trim("  abc \t"), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" a b "), "a b");
}

TEST(Str, SplitKeepsEmptyFields)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(Str, SplitSingleField)
{
    auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Str, SplitTrailingSeparatorYieldsEmpty)
{
    auto parts = split("a,", ',');
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[1], "");
}

TEST(Str, SplitOnMultiChar)
{
    auto parts = splitOn("p0 || p1 || p2", "||");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(trim(parts[0]), "p0");
    EXPECT_EQ(trim(parts[1]), "p1");
    EXPECT_EQ(trim(parts[2]), "p2");
}

TEST(Str, SplitOnNoMatch)
{
    auto parts = splitOn("abc", "||");
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Str, ToLower)
{
    EXPECT_EQ(toLower("IAdd R3"), "iadd r3");
}

TEST(Str, StartsWith)
{
    EXPECT_TRUE(startsWith("ccall", "cc"));
    EXPECT_FALSE(startsWith("c", "cc"));
    EXPECT_TRUE(startsWith("x", ""));
}

TEST(Str, Hex2Formatting)
{
    EXPECT_EQ(hex2(0), "00");
    EXPECT_EQ(hex2(10), "0a");
    EXPECT_EQ(hex2(255), "ff");
    EXPECT_EQ(hex2(256), "100");
}

TEST(Str, Padding)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcdef", 4), "abcdef");
}

TEST(Str, FixedDigits)
{
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(2.0, 0), "2");
}

} // namespace
} // namespace ximd
