/**
 * @file
 * Schema pinning: every machine-readable JSON document the simulator
 * emits carries `"schema": kStatsJsonSchema`, and each document's key
 * set is pinned here so service clients can rely on it. If one of
 * these tests fails, you changed a wire format: bump kStatsJsonSchema
 * and update the pin together.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/stats.hh"
#include "farm/batch_runner.hh"
#include "farm/campaign.hh"
#include "farm/farm.hh"
#include "farm/suite.hh"
#include "support/json.hh"

namespace ximd::farm {
namespace {

std::vector<std::string>
keysOf(const json::Value &v)
{
    std::vector<std::string> keys;
    for (const auto &[k, _] : v.members())
        keys.push_back(k);
    return keys;
}

json::Value
parseOrDie(const std::string &text)
{
    auto parsed = json::parse(text);
    EXPECT_TRUE(parsed.hasValue()) << text;
    return parsed.hasValue() ? std::move(parsed.value())
                             : json::Value();
}

std::uint64_t
schemaOf(const json::Value &v)
{
    const json::Value *s = v.find("schema");
    EXPECT_NE(s, nullptr);
    return s ? static_cast<std::uint64_t>(s->asInt()) : 0;
}

TEST(Schema, StatsJsonKeySetIsPinned)
{
    const json::Value v =
        parseOrDie(RunStats(4).json(85.0, "threaded"));
    EXPECT_EQ(schemaOf(v), kStatsJsonSchema);
    EXPECT_EQ(keysOf(v),
              (std::vector<std::string>{
                  "schema", "backend", "predecode", "cycles",
                  "parcels", "data_ops", "int_alu", "int_compare",
                  "float_alu", "float_compare", "convert", "loads",
                  "stores", "nops", "cond_branches",
                  "taken_branches", "busy_wait_fu_cycles",
                  "utilization", "mean_streams", "mips", "mflops",
                  "partition_histogram"}));
}

TEST(Schema, StatsJsonWithoutBackendDropsOnlyBackendKeys)
{
    const json::Value v = parseOrDie(RunStats(4).json(85.0));
    EXPECT_EQ(schemaOf(v), kStatsJsonSchema);
    EXPECT_EQ(v.find("backend"), nullptr);
    EXPECT_EQ(v.find("predecode"), nullptr);
    EXPECT_NE(v.find("cycles"), nullptr);
}

TEST(Schema, PredecodeNamesTheDispatchRepresentation)
{
    EXPECT_NE(RunStats(1).json(0.0, "interp").find(
                  "\"predecode\": \"decoded\""),
              std::string::npos);
    EXPECT_NE(RunStats(1).json(0.0, "threaded").find(
                  "\"predecode\": \"flat\""),
              std::string::npos);
    EXPECT_NE(RunStats(1).json(0.0, "batch").find(
                  "\"predecode\": \"flat\""),
              std::string::npos);
}

TEST(Schema, XfarmReportKeySetIsPinned)
{
    SuiteOptions so;
    so.n = 16;
    std::vector<RunSpec> specs = builtinSuite(so);
    specs.resize(2);
    const BatchResult batch = BatchRunner::run(specs, 1, 4);

    const json::Value v = parseOrDie(batch.json(false));
    EXPECT_EQ(schemaOf(v), kStatsJsonSchema);
    EXPECT_EQ(keysOf(v),
              (std::vector<std::string>{"schema", "job_count",
                                        "failures", "jobs",
                                        "merged"}));

    ASSERT_TRUE(v.find("jobs")->isArray());
    const json::Value &job = v.find("jobs")->items().front();
    EXPECT_EQ(keysOf(job),
              (std::vector<std::string>{"name", "ok", "stop",
                                        "backend", "cycles",
                                        "stats"}));
    // The nested per-job stats carry the schema stamp too.
    EXPECT_EQ(schemaOf(*job.find("stats")), kStatsJsonSchema);
}

TEST(Schema, CampaignReportCarriesSchema)
{
    CampaignResult camp;
    camp.planSummary = "empty";
    const json::Value v = parseOrDie(camp.json());
    EXPECT_EQ(schemaOf(v), kStatsJsonSchema);
    EXPECT_EQ(keysOf(v),
              (std::vector<std::string>{"schema", "plan", "jobs",
                                        "summary"}));
}

TEST(Schema, RoundTripPreservesEveryValue)
{
    // Dump -> parse -> dump is a fixpoint: the subset emitter and the
    // parser agree on every value kind the reports use.
    SuiteOptions so;
    so.n = 16;
    std::vector<RunSpec> specs = builtinSuite(so);
    specs.resize(2);
    const std::string report =
        BatchRunner::run(specs, 1, 4).json(false);
    const json::Value v = parseOrDie(report);
    const json::Value v2 = parseOrDie(v.dump(2));
    EXPECT_EQ(v.dump(2), v2.dump(2));
}

} // namespace
} // namespace ximd::farm
