#include "farm/sweep.hh"

#include <cstdio>
#include <fstream>
#include <string>

#include "farm/farm.hh"

#include <gtest/gtest.h>

namespace ximd::farm {
namespace {

std::vector<RunSpec>
expandOk(std::string_view text)
{
    auto r = parseSweep(text);
    EXPECT_TRUE(r.hasValue())
        << (r.hasValue() ? "" : r.error().message);
    return r.hasValue() ? std::move(r.value())
                        : std::vector<RunSpec>{};
}

std::string
expandErr(std::string_view text)
{
    auto r = parseSweep(text);
    EXPECT_FALSE(r.hasValue());
    return r.hasValue() ? "" : r.error().message;
}

TEST(Sweep, SingleRunNoAxes)
{
    const auto specs = expandOk(
        R"({"runs": [{"workload": "minmax", "n": 64, "seed": 7}]})");
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].name, "minmax/ximd/n=64/seed=7");
    EXPECT_EQ(specs[0].config.mode, Mode::Ximd);
    EXPECT_EQ(specs[0].config.seed, 7u);
    EXPECT_FALSE(specs[0].loadError.has_value());
}

TEST(Sweep, CartesianExpansion)
{
    const auto specs = expandOk(R"({
        "runs": [{
            "workload": "minmax",
            "mode": ["ximd", "vliw"],
            "n": [32, 64, 128],
            "seed": [1, 2]
        }]
    })");
    EXPECT_EQ(specs.size(), 12u); // 2 modes * 3 sizes * 2 seeds
    // Stable nesting order: mode varies slowest of the three.
    EXPECT_EQ(specs[0].name, "minmax/ximd/n=32/seed=1");
    EXPECT_EQ(specs[1].name, "minmax/ximd/n=32/seed=2");
    EXPECT_EQ(specs[2].name, "minmax/ximd/n=64/seed=1");
    EXPECT_EQ(specs[6].name, "minmax/vliw/n=32/seed=1");
}

TEST(Sweep, DefaultsApplyAndEntriesOverride)
{
    const auto specs = expandOk(R"({
        "defaults": {"n": 99, "seed": 5, "registered_sync": true},
        "runs": [
            {"workload": "minmax"},
            {"workload": "minmax", "n": 7, "registered_sync": false}
        ]
    })");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].name, "minmax/ximd/n=99/seed=5");
    EXPECT_TRUE(specs[0].config.registeredSync);
    EXPECT_EQ(specs[1].name, "minmax/ximd/n=7/seed=5");
    EXPECT_FALSE(specs[1].config.registeredSync);
}

TEST(Sweep, DefaultsCanCarryAnAxis)
{
    const auto specs = expandOk(R"({
        "defaults": {"seed": [1, 2, 3]},
        "runs": [{"workload": "tproc"}]
    })");
    EXPECT_EQ(specs.size(), 3u);
}

TEST(Sweep, ConfigAxesReachTheMachineConfig)
{
    const auto specs = expandOk(R"({
        "runs": [{
            "workload": "tproc",
            "fast_forward": false,
            "result_latency": 3,
            "max_cycles": 1234
        }]
    })");
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_FALSE(specs[0].config.fastForward);
    EXPECT_EQ(specs[0].config.resultLatency, 3u);
    EXPECT_EQ(specs[0].maxCycles, 1234u);
}

TEST(Sweep, BackendAxisExpandsAndValidates)
{
    const auto specs = expandOk(R"({
        "runs": [{
            "workload": "minmax",
            "backend": ["interp", "threaded"]
        }]
    })");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].config.backend, Backend::Interp);
    EXPECT_EQ(specs[1].config.backend, Backend::Threaded);

    EXPECT_NE(expandErr(R"({"runs": [{"workload": "minmax",
                                      "backend": "jit"}]})")
                  .find("'backend' must be"),
              std::string::npos);
}

TEST(Sweep, StructuralErrorsFailTheLoad)
{
    EXPECT_NE(expandErr("not json").find("sweep:"),
              std::string::npos);
    EXPECT_NE(expandErr(R"({"runs": [{"n": 4}]})")
                  .find("exactly one of"),
              std::string::npos);
    EXPECT_NE(expandErr(R"({"runs": [{"workload": "minmax",
                                      "typo_key": 1}]})")
                  .find("unknown key"),
              std::string::npos);
    EXPECT_NE(expandErr(R"({"runs": [{"workload": "nope"}]})")
                  .find("unknown workload"),
              std::string::npos);
    EXPECT_NE(expandErr(R"({"runs": [{"workload": "minmax",
                                      "program": "x.ximd"}]})")
                  .find("exactly one of"),
              std::string::npos);
    EXPECT_NE(expandErr(R"({"nope": 1, "runs": []})")
                  .find("top-level"),
              std::string::npos);
    EXPECT_NE(expandErr(R"({"runs": [{"workload": "minmax",
                                      "mode": "mimd"}]})")
                  .find("mode"),
              std::string::npos);
}

TEST(Sweep, InvalidModeComboBecomesPerJobFailure)
{
    // Sweeping bitcount-lockstep over both modes: the vliw leg runs,
    // the ximd leg fails structurally without sinking the sweep.
    const auto specs = expandOk(R"({
        "runs": [{"workload": "bitcount-lockstep",
                  "mode": ["ximd", "vliw"], "n": 16}]
    })");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_TRUE(specs[0].loadError.has_value());
    EXPECT_FALSE(specs[1].loadError.has_value());

    const BatchResult batch = Farm::run(specs, 2);
    EXPECT_EQ(batch.failures(), 1u);
    EXPECT_FALSE(batch.jobs[0].ok());
    EXPECT_TRUE(batch.jobs[1].ok());
}

TEST(Sweep, ProgramFileJobsAssembleAndShare)
{
    const std::string path =
        testing::TempDir() + "sweep_prog_ok.ximd";
    {
        std::ofstream out(path);
        out << ".fus 2\nhalt || halt\n";
    }
    const auto specs = expandOk(
        R"({"runs": [{"program": ")" + path +
        R"(", "seed": [1, 2]}]})");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_FALSE(specs[0].loadError.has_value());
    // Both seed legs share the one assembled program.
    EXPECT_EQ(specs[0].program.get(), specs[1].program.get());

    const BatchResult batch = Farm::run(specs, 2);
    EXPECT_EQ(batch.failures(), 0u);
    std::remove(path.c_str());
}

TEST(Sweep, BadProgramFileIsPerJobFailure)
{
    const std::string path =
        testing::TempDir() + "sweep_prog_bad.ximd";
    {
        std::ofstream out(path);
        out << ".fus 2\nhalt\n"; // wrong parcel count
    }
    const auto specs = expandOk(R"({
        "runs": [
            {"program": ")" + path + R"("},
            {"program": "/missing/file.ximd"},
            {"workload": "tproc"}
        ]
    })");
    ASSERT_EQ(specs.size(), 3u);
    ASSERT_TRUE(specs[0].loadError.has_value());
    EXPECT_EQ(specs[0].loadError->check, analysis::Check::AsmParse);
    ASSERT_TRUE(specs[1].loadError.has_value());
    EXPECT_EQ(specs[1].loadError->check, analysis::Check::LoadFailed);

    const BatchResult batch = Farm::run(specs, 2);
    EXPECT_EQ(batch.failures(), 2u);
    EXPECT_TRUE(batch.jobs[2].ok());
    std::remove(path.c_str());
}

TEST(Sweep, SweepRunsAreDeterministicAcrossThreads)
{
    const std::string text = R"({
        "defaults": {"n": 32},
        "runs": [
            {"workload": "minmax", "mode": ["ximd", "vliw"],
             "seed": [1, 2]},
            {"workload": "nonblocking", "seed": [3, 4]},
            {"workload": "bitcount", "fast_forward": [true, false]}
        ]
    })";
    const auto specs1 = expandOk(text);
    const auto specs2 = expandOk(text);
    const BatchResult a = Farm::run(specs1, 1);
    const BatchResult b = Farm::run(specs2, 8);
    EXPECT_EQ(a.json(false), b.json(false));
}

} // namespace
} // namespace ximd::farm
