/**
 * @file
 * The xfarm service protocol, driven in process through
 * Service::handleLine — exactly the path the --serve daemon wraps in
 * a socket. Includes the satellite byte-identity property: a batch's
 * results stream is a pure function of its submission, so -j1 and
 * -jN submissions answer byte-identical lines.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "farm/service.hh"
#include "support/json.hh"

namespace ximd::farm {
namespace {

std::vector<std::string>
request(Service &service, const std::string &line,
        Service::Action expect = Service::Action::Continue)
{
    std::vector<std::string> out;
    const Service::Action action = service.handleLine(
        line, [&](const std::string &l) { out.push_back(l); });
    EXPECT_EQ(action, expect) << line;
    return out;
}

bool
lineSays(const std::string &line, const std::string &key,
         const std::string &value)
{
    auto parsed = json::parse(line);
    if (!parsed.hasValue())
        return false;
    const json::Value *v = parsed.value().find(key);
    return v && v->isString() && v->asString() == value;
}

TEST(Service, PongsAndStampsSchema)
{
    Service service;
    const auto out = request(service, R"({"cmd":"ping"})");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(lineSays(out[0], "event", "pong"));
    EXPECT_NE(out[0].find("\"schema\""), std::string::npos);
}

TEST(Service, RejectsGarbageAndUnknownCommands)
{
    Service service;
    auto out = request(service, "not json at all");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NE(out[0].find("\"ok\":false"), std::string::npos)
        << out[0];

    out = request(service, R"({"cmd":"frobnicate"})");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NE(out[0].find("unknown cmd"), std::string::npos);

    out = request(service, R"({"cmd":"submit"})");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NE(out[0].find("\"ok\":false"), std::string::npos);
}

std::vector<std::string>
submitAndStream(Service &service, const std::string &submit)
{
    const auto sub = request(service, submit);
    EXPECT_EQ(sub.size(), 1u);
    EXPECT_TRUE(lineSays(sub[0], "event", "submitted")) << sub[0];
    auto parsed = json::parse(sub[0]);
    const std::size_t id = static_cast<std::size_t>(
        parsed.value().find("batch")->asInt());
    return request(service,
                   R"({"cmd":"results","batch":)" +
                       std::to_string(id) + R"(,"wait":true})");
}

TEST(Service, SuiteSubmissionStreamsJobsInSpecOrder)
{
    Service service;
    const auto lines = submitAndStream(
        service,
        R"({"cmd":"submit","suite":{"n":16,"filter":["minmax"]},)"
        R"("threads":1})");
    ASSERT_GE(lines.size(), 2u);
    for (std::size_t i = 0; i + 1 < lines.size(); ++i)
        EXPECT_TRUE(lineSays(lines[i], "event", "job")) << lines[i];
    EXPECT_TRUE(lineSays(lines.back(), "event", "done"));
    EXPECT_NE(lines.back().find("\"failures\":0"),
              std::string::npos)
        << lines.back();
    // Batched execution is the default path for eligible jobs.
    EXPECT_NE(lines[0].find("\"backend\":\"batch\""),
              std::string::npos)
        << lines[0];
}

TEST(Service, InlineSweepSubmissionRuns)
{
    Service service;
    const auto lines = submitAndStream(
        service,
        R"({"cmd":"submit","sweep":{"runs":[{"workload":"minmax",)"
        R"("n":16,"seed":[1,2]}]},"threads":1})");
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_TRUE(lineSays(lines[2], "event", "done"));
}

TEST(Service, ResultsStreamIsByteIdenticalAcrossThreadCounts)
{
    // The satellite property: j1 vs jN submissions of the same work
    // answer byte-identical result streams (no timing fields, spec
    // order, pure-function jobs).
    const char *submitJ1 =
        R"({"cmd":"submit","suite":{"n":32},"threads":1})";
    const char *submitJ8 =
        R"({"cmd":"submit","suite":{"n":32},"threads":8})";
    Service s1;
    Service s8;
    const auto lines1 = submitAndStream(s1, submitJ1);
    const auto lines8 = submitAndStream(s8, submitJ8);
    ASSERT_EQ(lines1.size(), lines8.size());
    for (std::size_t i = 0; i < lines1.size(); ++i)
        EXPECT_EQ(lines1[i], lines8[i]) << "line " << i;
}

TEST(Service, ScalarFallbackMatchesBatchedResults)
{
    // "batch":false forces the scalar farm; the result stream must
    // agree with the batched one everywhere except the backend name.
    Service sBatch;
    Service sScalar;
    auto batched = submitAndStream(
        sBatch,
        R"({"cmd":"submit","suite":{"n":16,"filter":["bitcount"]},)"
        R"("threads":1})");
    auto scalar = submitAndStream(
        sScalar,
        R"({"cmd":"submit","suite":{"n":16,"filter":["bitcount"]},)"
        R"("threads":1,"batch":false})");
    ASSERT_EQ(batched.size(), scalar.size());
    const auto normalized = [](const std::string &line) {
        auto parsed = json::parse(line);
        EXPECT_TRUE(parsed.hasValue()) << line;
        if (!parsed.hasValue())
            return line;
        json::Value v = std::move(parsed.value());
        if (v.find("backend"))
            v.set("backend", "X");
        if (const json::Value *stats = v.find("stats")) {
            json::Value s = *stats;
            if (s.find("backend"))
                s.set("backend", "X");
            v.set("stats", std::move(s));
        }
        return v.dump(0);
    };
    for (std::size_t i = 0; i < batched.size(); ++i)
        EXPECT_EQ(normalized(batched[i]), normalized(scalar[i]))
            << "line " << i;
}

TEST(Service, StatusTracksBatchLifecycle)
{
    Service service;
    auto out = request(service, R"({"cmd":"status"})");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NE(out[0].find("\"batches\":0"), std::string::npos);

    (void)submitAndStream(
        service,
        R"({"cmd":"submit","suite":{"n":16,"filter":["minmax/ximd"]},)"
        R"("threads":1})");
    out = request(service, R"({"cmd":"status","batch":0})");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(lineSays(out[0], "state", "done")) << out[0];
    EXPECT_NE(out[0].find("\"failures\":0"), std::string::npos);

    out = request(service, R"({"cmd":"status","batch":99})");
    EXPECT_NE(out[0].find("no such batch"), std::string::npos);
}

TEST(Service, DrainRefusesNewWorkAndShutdownAsksExit)
{
    Service service;
    auto out = request(service, R"({"cmd":"drain"})");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(lineSays(out[0], "event", "drained"));

    out = request(
        service,
        R"({"cmd":"submit","suite":{"n":16,"filter":["minmax"]}})");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NE(out[0].find("draining"), std::string::npos);

    out = request(service, R"({"cmd":"shutdown"})",
                  Service::Action::Shutdown);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(lineSays(out[0], "event", "bye"));
}

} // namespace
} // namespace ximd::farm
