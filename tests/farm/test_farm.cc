#include "farm/farm.hh"

#include <set>

#include "farm/suite.hh"
#include "workloads/kernels.hh"

#include <gtest/gtest.h>

namespace ximd::farm {
namespace {

/** Run the built-in suite at a given thread count. */
BatchResult
runSuite(unsigned threads, SuiteOptions opts = {})
{
    return Farm::run(builtinSuite(opts), threads);
}

TEST(Farm, SuiteAllPasses)
{
    const BatchResult batch = runSuite(2);
    EXPECT_EQ(batch.failures(), 0u) << batch.json();
    EXPECT_TRUE(batch.allOk());
    EXPECT_EQ(batch.jobs.size(), builtinSuite().size());
}

TEST(Farm, ResultsAreInSpecOrderAtAnyThreadCount)
{
    const std::vector<RunSpec> specs = builtinSuite();
    for (unsigned threads : {1u, 3u, 8u}) {
        const BatchResult batch = Farm::run(specs, threads);
        ASSERT_EQ(batch.jobs.size(), specs.size());
        for (std::size_t i = 0; i < specs.size(); ++i)
            EXPECT_EQ(batch.jobs[i].name, specs[i].name)
                << "threads=" << threads;
    }
}

TEST(Farm, StatsAreByteIdenticalAcrossThreadCounts)
{
    // The tentpole determinism guarantee: every job's statsJson is a
    // pure function of its spec. The suite includes the nonblocking
    // workloads, whose scripted-I/O arrival times come from the
    // per-run seed — the classic source of batch nondeterminism.
    const BatchResult serial = runSuite(1);
    const BatchResult parallel = runSuite(8);
    ASSERT_EQ(serial.jobs.size(), parallel.jobs.size());
    for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
        EXPECT_EQ(serial.jobs[i].statsJson,
                  parallel.jobs[i].statsJson)
            << serial.jobs[i].name;
        EXPECT_EQ(serial.jobs[i].run.cycles,
                  parallel.jobs[i].run.cycles);
    }
    // And the whole untimed report is byte-identical.
    EXPECT_EQ(serial.json(false), parallel.json(false));
}

TEST(Farm, SeedChangesNonblockingSchedule)
{
    SuiteOptions a;
    a.seed = 1;
    SuiteOptions b;
    b.seed = 99;
    const BatchResult ra = runSuite(2, a);
    const BatchResult rb = runSuite(2, b);
    ASSERT_EQ(ra.jobs.size(), rb.jobs.size());
    bool anyDiffer = false;
    for (std::size_t i = 0; i < ra.jobs.size(); ++i) {
        if (ra.jobs[i].name.find("nonblocking") != std::string::npos &&
            ra.jobs[i].run.cycles != rb.jobs[i].run.cycles)
            anyDiffer = true;
    }
    EXPECT_TRUE(anyDiffer)
        << "different seeds should move I/O arrival times";
}

TEST(Farm, ManySpecsShareOnePreparedProgram)
{
    // 16 jobs over one shared immutable program, all threads at once.
    auto shared =
        PreparedProgram::make(workloads::tprocPaper(3, -4, 7, 11));
    std::vector<RunSpec> specs;
    for (int i = 0; i < 16; ++i) {
        RunSpec s;
        s.name = "tproc#" + std::to_string(i);
        s.program = shared;
        s.config =
            MachineConfig::ximd().withSeed(static_cast<unsigned>(i));
        specs.push_back(std::move(s));
    }
    const BatchResult batch = Farm::run(specs, 8);
    EXPECT_EQ(batch.failures(), 0u);
    for (const JobResult &j : batch.jobs)
        EXPECT_EQ(j.run.cycles, batch.jobs[0].run.cycles);
}

TEST(Farm, LoadErrorFailsOneJobNotTheBatch)
{
    std::vector<RunSpec> specs = builtinSuite();
    RunSpec broken;
    broken.name = "broken/load";
    broken.loadError = analysis::Diagnostic{
        analysis::Severity::Error, analysis::Check::LoadFailed, 0, -1,
        "no such file"};
    specs.insert(specs.begin() + 1, std::move(broken));

    const BatchResult batch = Farm::run(specs, 4);
    EXPECT_EQ(batch.failures(), 1u);
    EXPECT_EQ(batch.jobs[1].name, "broken/load");
    EXPECT_FALSE(batch.jobs[1].ran);
    ASSERT_TRUE(batch.jobs[1].error.has_value());
    EXPECT_EQ(batch.jobs[1].error->check,
              analysis::Check::LoadFailed);
    // Neighbours are unaffected.
    EXPECT_TRUE(batch.jobs[0].ok());
    EXPECT_TRUE(batch.jobs[2].ok());
}

TEST(Farm, WedgedJobReportsCycleBudget)
{
    WorkloadRequest req;
    req.workload = "minmax";
    req.n = 64;
    auto spec = makeWorkloadSpec(req);
    ASSERT_TRUE(spec.hasValue());
    spec.value().maxCycles = 3; // far too few to finish
    const JobResult j = Farm::runOne(spec.value());
    EXPECT_TRUE(j.ran);
    EXPECT_FALSE(j.ok());
    ASSERT_TRUE(j.error.has_value());
    EXPECT_EQ(j.error->check, analysis::Check::RunFailed);
    EXPECT_NE(j.error->message.find("cycle budget"),
              std::string::npos);
}

TEST(Farm, MergedEqualsSerialAccumulation)
{
    const BatchResult batch = runSuite(4);
    RunStats byHand(1);
    for (const JobResult &j : batch.jobs)
        if (j.ran)
            byHand.merge(j.stats);
    EXPECT_EQ(batch.merged().json(0.0), byHand.json(0.0));
    // Sanity: the merge actually accumulated something.
    EXPECT_GT(batch.merged().cycles(), 0u);
}

TEST(Farm, SuiteSharesModeInvariantPrograms)
{
    const std::vector<RunSpec> specs = builtinSuite();
    const RunSpec *tx = nullptr;
    const RunSpec *tv = nullptr;
    for (const RunSpec &s : specs) {
        if (s.name.rfind("tproc/ximd", 0) == 0)
            tx = &s;
        if (s.name.rfind("tproc/vliw", 0) == 0)
            tv = &s;
    }
    ASSERT_NE(tx, nullptr);
    ASSERT_NE(tv, nullptr);
    // tproc emits identical machine code for both modes, so the grid
    // shares one PreparedProgram between them.
    EXPECT_EQ(tx->program.get(), tv->program.get());
}

TEST(Farm, ZeroThreadsPicksSomethingSane)
{
    std::vector<RunSpec> specs = builtinSuite();
    specs.resize(2);
    const BatchResult batch = Farm::run(specs, 0);
    EXPECT_GE(batch.threads, 1u);
    EXPECT_LE(batch.threads, 2u);
    EXPECT_EQ(batch.failures(), 0u);
}

TEST(Farm, RegisteredSyncAxisAddsAblationJobs)
{
    SuiteOptions opts;
    opts.registeredSyncAxis = true;
    const std::vector<RunSpec> specs = builtinSuite(opts);
    std::set<std::string> names;
    for (const RunSpec &s : specs)
        names.insert(s.name);
    EXPECT_EQ(names.size(), specs.size()) << "job names must be unique";
    bool sawRegsync = false;
    for (const std::string &n : names)
        sawRegsync = sawRegsync || n.find("/regsync") != std::string::npos;
    EXPECT_TRUE(sawRegsync);
    const BatchResult batch = Farm::run(specs, 4);
    EXPECT_EQ(batch.failures(), 0u) << batch.json();
}

} // namespace
} // namespace ximd::farm
