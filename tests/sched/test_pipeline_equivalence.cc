/**
 * The refactor's byte-identity pin: every golden case compiled
 * through the new pass pipeline must serialize exactly as the
 * pre-refactor stage entry points did (captured in
 * golden/pipeline_equivalence.golden before the pipeline existed).
 */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "pipeline_golden.hh"
#include "sched/pipeline.hh"

using namespace ximd;
using namespace ximd::sched;

namespace {

std::string
compileThroughPipeline(const GoldenCase &c)
{
    PipelineOptions po;
    switch (c.kind) {
      case GoldenCase::Kind::Block: {
        po.width = c.opts.width;
        po.alloc = c.opts.alloc;
        po.nameVregs = c.opts.nameVregs;
        po.rawLatency = c.opts.rawLatency;
        Compiler cc(po);
        auto r = cc.compile(c.ir);
        EXPECT_TRUE(r.hasValue())
            << c.name << ": " << r.error().format();
        return serializeForGolden(c.name, r.value().program);
      }
      case GoldenCase::Kind::Loop: {
        po.width = c.width;
        Compiler cc(po);
        auto r = cc.compileLoop(c.loop);
        EXPECT_TRUE(r.hasValue())
            << c.name << ": " << r.error().format();
        return serializeForGolden(c.name, r.value());
      }
      case GoldenCase::Kind::Compose: {
        po.width = c.width;
        Compiler cc(po);
        auto r = cc.compose(c.threads, c.strategy);
        EXPECT_TRUE(r.hasValue())
            << c.name << ": " << r.error().format();
        return serializeForGolden(c.name, r.value().program);
      }
    }
    ADD_FAILURE() << "unreachable case kind";
    return "";
}

TEST(PipelineEquivalence, PipelineMatchesLegacyPerCase)
{
    for (const GoldenCase &c : goldenCases())
        EXPECT_EQ(compileThroughPipeline(c),
                  serializeForGolden(c.name, compileGoldenCase(c)))
            << c.name;
}

TEST(PipelineEquivalence, PipelineMatchesPreRefactorCapture)
{
    std::ifstream in(XIMD_SOURCE_DIR
                     "/tests/sched/golden/pipeline_equivalence.golden");
    ASSERT_TRUE(in) << "missing golden capture";
    std::ostringstream want;
    want << in.rdbuf();

    std::ostringstream got;
    for (const GoldenCase &c : goldenCases())
        got << compileThroughPipeline(c);
    EXPECT_EQ(got.str(), want.str())
        << "pipeline output drifted from the pre-refactor capture; "
           "if the change is intentional, rerun regen_pipeline_golden";
}

TEST(PipelineEquivalence, VerifyBetweenDoesNotPerturbOutput)
{
    // The inter-pass verifier must be an observer, not a transform.
    for (const GoldenCase &c : goldenCases()) {
        if (c.kind != GoldenCase::Kind::Block)
            continue;
        PipelineOptions po;
        po.width = c.opts.width;
        po.alloc = c.opts.alloc;
        po.nameVregs = c.opts.nameVregs;
        po.rawLatency = c.opts.rawLatency;
        po.verifyBetween = true;
        po.verify = true;
        Compiler cc(po);
        auto r = cc.compile(c.ir);
        ASSERT_TRUE(r.hasValue())
            << c.name << ": " << r.error().format();
        EXPECT_EQ(serializeForGolden(c.name, r.value().program),
                  serializeForGolden(c.name, compileGoldenCase(c)))
            << c.name;
    }
}

} // namespace
