/**
 * Edge-of-the-envelope sched tests: latency-3 code generation
 * executing on a latency-3 machine, the compiled-latency stamp,
 * packer overflow, single-FU tiling, and structured modulo errors.
 */

#include <gtest/gtest.h>

#include "core/latency_check.hh"
#include "core/machine.hh"
#include "sched/codegen.hh"
#include "sched/compose.hh"
#include "sched/modulo.hh"
#include "sched/packer.hh"
#include "sched/pipeline.hh"
#include "workloads/ir_threads.hh"


using namespace ximd;
using namespace ximd::sched;

namespace {

IrProgram
reduceIr()
{
    Rng rng(101);
    return workloads::reductionThread(0, 8, 3, rng);
}

Word
runAndReadMem(Program prog, unsigned latency, Addr addr)
{
    Machine m(std::move(prog),
              MachineConfig{}.withResultLatency(latency));
    const RunResult r = m.run();
    EXPECT_TRUE(r.ok()) << r.faultMessage;
    return m.peekMem(addr);
}

TEST(SchedEdges, Latency3CodeExecutesCorrectlyAtLatency3)
{
    CodegenOptions l1, l3;
    l3.rawLatency = 3;
    const Word want = runAndReadMem(
        valueOrFatal(generateCodeChecked(reduceIr(), l1)).program, 1, 2048);
    EXPECT_EQ(runAndReadMem(valueOrFatal(generateCodeChecked(reduceIr(), l3)).program, 3,
                            2048),
              want);
}

TEST(SchedEdges, Latency1CodeIsWrongAtLatency3AndStampSaysSo)
{
    // The silent failure the __rawlat stamp exists to catch: the
    // latency-1 schedule reads registers before the latency-3 pipe
    // has written them back, so the reduction misses addends.
    const Program prog = valueOrFatal(generateCodeChecked(reduceIr())).program;
    EXPECT_NE(runAndReadMem(prog, 3, 2048),
              runAndReadMem(prog, 1, 2048));

    const LatencyCheck check = checkCompiledLatency(prog, 3);
    EXPECT_TRUE(check.stamped);
    EXPECT_EQ(check.compiledFor, 1u);
    EXPECT_TRUE(check.mismatch());
    EXPECT_NE(check.message().find("stale"), std::string::npos);
}

TEST(SchedEdges, LatencyStampMatchesCodegenOptions)
{
    CodegenOptions o;
    o.rawLatency = 3;
    const Program prog = valueOrFatal(generateCodeChecked(reduceIr(), o)).program;
    EXPECT_EQ(prog.symbol(kRawLatencySymbol), std::optional<Word>{3});
    EXPECT_FALSE(checkCompiledLatency(prog, 3).mismatch());
    EXPECT_TRUE(checkCompiledLatency(prog, 1).mismatch());
}

TEST(SchedEdges, HandWrittenProgramsHaveNoStamp)
{
    const Program p(2);
    const LatencyCheck check = checkCompiledLatency(p, 3);
    EXPECT_FALSE(check.stamped);
    EXPECT_FALSE(check.mismatch());
    EXPECT_TRUE(check.message().empty());
}

TEST(SchedEdges, PackerRejectsColumnOverflow)
{
    TileSet set;
    set.threadId = 0;
    set.impls = {Tile{0, 4, 5}};
    set.heightAtWidth = {20, 10, 7, 5, 5, 5, 5, 5};

    PackResult packing;
    packing.strategy = "manual";
    packing.placements = {Placement{0, 4, 5, /*col=*/6, /*row=*/0}};
    packing.totalHeight = 5;

    auto v = validatePackingChecked(packing, {set}, 8);
    ASSERT_FALSE(v.hasValue());
    EXPECT_EQ(v.error().pass, "pack");
    EXPECT_NO_THROW((void)validatePackingChecked(packing, {set}, 8));
}

TEST(SchedEdges, PackerRejectsOverlappingPlacements)
{
    auto threads = workloads::reductionThreadSet(2, 42);
    auto tiles = generateTiles(threads, 8);
    PackResult packing;
    packing.strategy = "manual";
    packing.placements = {
        Placement{0, 4, tiles[0].heightAt(4), 0, 0},
        Placement{1, 4, tiles[1].heightAt(4), 2, 0}, // cols 2-5 overlap
    };
    packing.totalHeight =
        std::max(tiles[0].heightAt(4), tiles[1].heightAt(4));
    auto v = validatePackingChecked(packing, tiles, 8);
    ASSERT_FALSE(v.hasValue());
    EXPECT_EQ(v.error().pass, "pack");
}

TEST(SchedEdges, SingleFuTilesComposeAndRun)
{
    // Width-1 tiles are the degenerate end of Figure 13: every thread
    // serializes onto one FU, side by side.
    const auto threads = workloads::reductionThreadSet(2, 42);
    const auto tiles = generateTiles(threads, 1);
    for (const TileSet &s : tiles) {
        ASSERT_EQ(s.impls.size(), 1u);
        EXPECT_EQ(s.impls[0].width, 1);
        EXPECT_EQ(s.impls[0].height, s.heightAt(1));
    }

    PipelineOptions po;
    po.width = 2;
    Compiler cc(po);
    auto r = cc.compose(threads, "balanced-groups");
    ASSERT_TRUE(r.hasValue()) << r.error().format();
    for (const ComposedThread &t : r.value().threads)
        EXPECT_EQ(t.width, 1);

    Machine m(r.value().program, MachineConfig{});
    EXPECT_TRUE(m.run().ok());
    EXPECT_EQ(m.peekMem(2048), runAndReadMem(
        valueOrFatal(generateCodeChecked(threads[0])).program, 1, 2048));
}

TEST(SchedEdges, ModuloRejectsInfeasibleWidthStructurally)
{
    // 5 body ops + induction + compare = 7 slots; width 4 cannot
    // reach II = 1, which historically was a FatalError throw.
    const PipelineLoop loop = workloads::loop12Pipeline(20, 64, 128);
    CompileResult<Program> r = Program{1};
    EXPECT_NO_THROW(r = pipelineLoopChecked(loop, 4));
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().pass, "modulo");
}

TEST(SchedEdges, ModuloRejectsMissingDestStructurally)
{
    PipelineLoop loop = workloads::scalePipeline(8, 64, 128);
    loop.body[0].destLocal = -1; // a load with nowhere to land
    auto r = pipelineLoopChecked(loop, 8);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().pass, "modulo");
    EXPECT_EQ(r.error().op, 0);
    EXPECT_NE(r.error().message.find("destination"), std::string::npos);
}

TEST(SchedEdges, ModuloRejectsZeroTripCountStructurally)
{
    PipelineLoop loop = workloads::scalePipeline(8, 64, 128);
    loop.tripCount = 0;
    auto r = pipelineLoopChecked(loop, 8);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().pass, "modulo");
}

TEST(SchedEdges, RegallocWindowExhaustionIsStructured)
{
    CodegenOptions o;
    o.alloc.window.base = 253; // 4 vregs cannot fit above 253 of 256.
    auto r = generateCodeChecked(reduceIr(), o);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().pass, "regalloc");
    // The diagnostic reports the live-range pressure point and the
    // escape hatch.
    EXPECT_NE(r.error().message.find("peak live pressure"),
              std::string::npos);
    EXPECT_NE(r.error().message.find("--spill"), std::string::npos);
    EXPECT_FALSE(r.error().block.empty());
}

} // namespace
