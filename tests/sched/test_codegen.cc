#include "sched/codegen.hh"

#include <gtest/gtest.h>

#include "core/vliw_machine.hh"
#include "core/ximd_machine.hh"
#include "support/logging.hh"
#include "support/random.hh"


namespace ximd::sched {
namespace {

IrProgram
sumLoop(SWord n)
{
    IrBuilder b;
    const VregId i = b.newVreg();
    const VregId sum = b.newVreg();
    b.setInit(i, 0);
    b.setInit(sum, 0);
    b.startBlock("loop");
    b.emitTo(i, Opcode::Iadd, IrValue::reg(i), IrValue::immInt(1));
    b.emitTo(sum, Opcode::Iadd, IrValue::reg(sum), IrValue::reg(i));
    const int cmp =
        b.emitCompare(Opcode::Eq, IrValue::reg(i), IrValue::immInt(n));
    b.branch(cmp, "end", "loop");
    b.startBlock("end");
    b.emitStore(IrValue::reg(sum), IrValue::immInt(100));
    b.halt();
    return b.finish();
}

TEST(Codegen, SumLoopRunsOnBothMachines)
{
    IrProgram ir = sumLoop(10);
    CodegenResult code = valueOrFatal(generateCodeChecked(ir, {.width = 4}));

    XimdMachine x(code.program);
    ASSERT_TRUE(x.run().ok());
    EXPECT_EQ(x.peekMem(100), 55u);

    VliwMachine v(code.program);
    ASSERT_TRUE(v.run().ok());
    EXPECT_EQ(v.peekMem(100), 55u);
    EXPECT_EQ(x.cycle(), v.cycle());
}

TEST(Codegen, BlockAddressesAndLabels)
{
    IrProgram ir = sumLoop(3);
    CodegenResult code = valueOrFatal(generateCodeChecked(ir, {.width = 4}));
    ASSERT_TRUE(code.blockAddr.count("loop"));
    ASSERT_TRUE(code.blockAddr.count("end"));
    EXPECT_EQ(code.blockAddr.at("loop"), 0u);
    EXPECT_EQ(code.program.label("end"),
              std::optional<InstAddr>(code.blockAddr.at("end")));
}

TEST(Codegen, RegBaseOffsetsAllRegisters)
{
    IrProgram ir = sumLoop(4);
    CodegenResult code = valueOrFatal(generateCodeChecked(ir, {.width = 2, .alloc = {.window = {.base = 50}}}));
    XimdMachine m(code.program);
    ASSERT_TRUE(m.run().ok());
    // vreg 1 (sum) lives at r51.
    EXPECT_EQ(m.readReg(51), 10u);
    EXPECT_EQ(m.readRegByName("v1"), 10u);
    // Registers below the base untouched.
    for (RegId r = 0; r < 50; ++r)
        EXPECT_EQ(m.readReg(r), 0u);
}

TEST(Codegen, RegisterFileExhaustionCaught)
{
    IrBuilder b;
    b.startBlock("entry");
    for (int i = 0; i < 10; ++i)
        b.emit(Opcode::Iadd, IrValue::immInt(i), IrValue::immInt(1));
    b.halt();
    IrProgram ir = b.finish();
    EXPECT_THROW(valueOrFatal(generateCodeChecked(ir, {.width = 4, .alloc = {.window = {.base = 250}}})),
                 FatalError);
}

TEST(Codegen, WidthOneSerializes)
{
    IrBuilder b;
    b.startBlock("entry");
    IrValue x = b.emit(Opcode::Iadd, IrValue::immInt(1),
                       IrValue::immInt(2));
    IrValue y = b.emit(Opcode::Iadd, IrValue::immInt(3),
                       IrValue::immInt(4));
    IrValue z = b.emit(Opcode::Iadd, x, y);
    b.emitStore(z, IrValue::immInt(7));
    b.halt();
    IrProgram ir = b.finish();

    CodegenResult narrow = valueOrFatal(generateCodeChecked(ir, {.width = 1}));
    CodegenResult wide = valueOrFatal(generateCodeChecked(ir, {.width = 4}));
    EXPECT_GT(narrow.program.size(), wide.program.size());

    XimdMachine m1(narrow.program);
    XimdMachine m2(wide.program);
    ASSERT_TRUE(m1.run().ok());
    ASSERT_TRUE(m2.run().ok());
    EXPECT_EQ(m1.peekMem(7), 10u);
    EXPECT_EQ(m2.peekMem(7), 10u);
}

/** Random straight-line + diamond programs: simulator state must
 *  match the IR interpreter exactly. */
class CodegenProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
};

TEST_P(CodegenProperty, SimulatorMatchesInterpreter)
{
    const auto [width, seed] = GetParam();
    Rng rng(seed);

    IrBuilder b;
    std::vector<IrValue> vals;
    auto randVal = [&]() {
        if (!vals.empty() && rng.chance(0.7))
            return vals[static_cast<std::size_t>(
                rng.range(0, static_cast<int>(vals.size()) - 1))];
        return IrValue::immInt(static_cast<SWord>(rng.range(-20, 20)));
    };
    static const Opcode kOps[] = {Opcode::Iadd, Opcode::Isub,
                                  Opcode::Imult, Opcode::And,
                                  Opcode::Or, Opcode::Xor};

    b.startBlock("entry");
    for (int i = 0; i < 12; ++i)
        vals.push_back(b.emit(kOps[rng.range(0, 5)], randVal(),
                              randVal()));
    const int cmp = b.emitCompare(
        rng.chance(0.5) ? Opcode::Lt : Opcode::Ge, randVal(),
        randVal());
    b.branch(cmp, "then", "else");

    b.startBlock("then");
    for (int i = 0; i < 4; ++i)
        vals.push_back(b.emit(kOps[rng.range(0, 5)], randVal(),
                              randVal()));
    b.emitStore(vals.back(), IrValue::immInt(200));
    b.jump("join");

    b.startBlock("else");
    b.emitStore(randVal(), IrValue::immInt(200));
    b.jump("join");

    b.startBlock("join");
    for (int i = 0; i < 3; ++i)
        vals.push_back(b.emit(kOps[rng.range(0, 5)], randVal(),
                              randVal()));
    b.emitStore(vals.back(), IrValue::immInt(201));
    b.halt();

    IrProgram ir = b.finish();

    // Oracle.
    std::vector<Word> refMem(1024, 0);
    const auto refVregs = interpretIr(ir, refMem);

    // Machine.
    CodegenResult code =
        valueOrFatal(generateCodeChecked(ir, {.width = static_cast<FuId>(width)}));
    MachineConfig cfg;
    cfg.memWords = 1024;
    XimdMachine m(code.program, cfg);
    const RunResult r = m.run(100000);
    ASSERT_TRUE(r.ok()) << r.faultMessage;

    EXPECT_EQ(m.peekMem(200), refMem[200]);
    EXPECT_EQ(m.peekMem(201), refMem[201]);
    for (VregId v = 0; v < ir.numVregs; ++v)
        EXPECT_EQ(m.readReg(static_cast<RegId>(v)),
                  refVregs[static_cast<std::size_t>(v)])
            << "vreg " << v;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodegenProperty,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(7u, 14u, 21u, 28u, 35u, 42u)));

} // namespace
} // namespace ximd::sched
