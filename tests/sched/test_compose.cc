#include "sched/compose.hh"

#include <gtest/gtest.h>

#include "core/ximd_machine.hh"
#include "sched/tile.hh"
#include "support/logging.hh"
#include "support/random.hh"


namespace ximd::sched {
namespace {

/**
 * Thread t: load n values from its input region, accumulate
 * sum-of-(v*mult), store the result to its own output address.
 * Inputs at 1024 + t*64 + k (k = 1..n); output at 2048 + t.
 */
IrProgram
makeThread(int t, unsigned n, SWord mult, Rng &rng,
           std::vector<Word> &refMem)
{
    const Addr in = 1024 + static_cast<Addr>(t) * 64;
    const Addr out = 2048 + static_cast<Addr>(t);

    IrBuilder b;
    const VregId i = b.newVreg();
    const VregId sum = b.newVreg();
    b.setInit(i, 0);
    b.setInit(sum, 0);
    for (unsigned k = 1; k <= n; ++k) {
        const Word v = static_cast<Word>(rng.range(0, 1000));
        b.setMemInit(in + k, v);
        refMem[in + k] = v;
    }
    b.startBlock("loop");
    b.emitTo(i, Opcode::Iadd, IrValue::reg(i), IrValue::immInt(1));
    const IrValue v = b.emitLoad(IrValue::immRaw(in), IrValue::reg(i));
    const IrValue scaled =
        b.emit(Opcode::Imult, v, IrValue::immInt(mult));
    b.emitTo(sum, Opcode::Iadd, IrValue::reg(sum), scaled);
    const int cmp = b.emitCompare(Opcode::Eq, IrValue::reg(i),
                                  IrValue::immInt(
                                      static_cast<SWord>(n)));
    b.branch(cmp, "end", "loop");
    b.startBlock("end");
    b.emitStore(IrValue::reg(sum), IrValue::immRaw(out));
    b.halt();
    return b.finish();
}

struct Fixture
{
    explicit Fixture(int numThreads, std::uint64_t seed = 11)
        : rng(seed), refMem(4096, 0)
    {
        for (int t = 0; t < numThreads; ++t)
            threads.push_back(makeThread(
                t, static_cast<unsigned>(rng.range(3, 12)),
                static_cast<SWord>(rng.range(1, 9)), rng, refMem));
        // Oracle results.
        for (auto &th : threads) {
            std::vector<Word> mem = refMem;
            interpretIr(th, mem);
            for (Addr a = 2048; a < 2064; ++a)
                if (mem[a] != refMem[a])
                    expected[a] = mem[a];
        }
    }

    void
    runAndCheck(const Composed &comp)
    {
        MachineConfig cfg;
        cfg.memWords = 4096;
        XimdMachine m(comp.program, cfg);
        const RunResult r = m.run(100000);
        ASSERT_TRUE(r.ok()) << r.faultMessage;
        for (const auto &[addr, value] : expected)
            EXPECT_EQ(m.peekMem(addr), value) << "out addr " << addr;
        lastCycles = m.cycle();
        lastStats = m.stats().partitionHistogram();
    }

    Rng rng;
    std::vector<Word> refMem;
    std::vector<IrProgram> threads;
    std::map<Addr, Word> expected;
    Cycle lastCycles = 0;
    std::map<unsigned, Cycle> lastStats;
};

TEST(Compose, StackedPackingRunsSequentially)
{
    Fixture f(3);
    auto tiles = generateTiles(f.threads, 8);
    PackResult pack = packStacked(tiles, 8);
    Composed comp = valueOrFatal(composeThreadsChecked(f.threads, pack, 8));
    f.runAndCheck(comp);
}

TEST(Compose, BalancedGroupsRunConcurrently)
{
    Fixture f(4);
    auto tiles = generateTiles(f.threads, 8);
    PackResult pack = packBalancedGroups(tiles, 8);
    Composed comp = valueOrFatal(composeThreadsChecked(f.threads, pack, 8));
    f.runAndCheck(comp);
    // Multiple concurrent streams must appear.
    bool multi = false;
    for (const auto &[streams, cycles] : f.lastStats)
        if (streams >= 2 && cycles > 0)
            multi = true;
    EXPECT_TRUE(multi);
}

TEST(Compose, ConcurrentGroupsFasterThanStacked)
{
    Fixture f(4, 77);
    auto tiles = generateTiles(f.threads, 8);

    PackResult stacked = packStacked(tiles, 8);
    Composed compStacked = valueOrFatal(composeThreadsChecked(f.threads, stacked, 8));
    f.runAndCheck(compStacked);
    const Cycle stackedCycles = f.lastCycles;

    PackResult grouped = packBalancedGroups(tiles, 8);
    Composed compGrouped = valueOrFatal(composeThreadsChecked(f.threads, grouped, 8));
    f.runAndCheck(compGrouped);
    const Cycle groupedCycles = f.lastCycles;

    EXPECT_LT(groupedCycles, stackedCycles);
}

TEST(Compose, RejectsPartiallyOverlappingColumns)
{
    Fixture f(2);
    auto tiles = generateTiles(f.threads, 8);
    PackResult pack;
    pack.strategy = "manual-bad";
    Placement a;
    a.threadId = 0;
    a.width = 4;
    a.height = tiles[0].heightAt(4);
    a.col = 0;
    a.row = 0;
    Placement b;
    b.threadId = 1;
    b.width = 4;
    b.height = tiles[1].heightAt(4);
    b.col = 2; // overlaps columns 2-3 of thread 0
    b.row = a.height;
    pack.placements = {a, b};
    pack.totalHeight = b.row + b.height;
    EXPECT_THROW(valueOrFatal(composeThreadsChecked(f.threads, pack, 8)), FatalError);
}

TEST(Compose, ManualLaminarSideBySide)
{
    Fixture f(2, 5);
    auto tiles = generateTiles(f.threads, 8);
    PackResult pack;
    pack.strategy = "manual-laminar";
    Placement a;
    a.threadId = 0;
    a.width = 4;
    a.height = tiles[0].heightAt(4);
    a.col = 0;
    a.row = 0;
    Placement b;
    b.threadId = 1;
    b.width = 4;
    b.height = tiles[1].heightAt(4);
    b.col = 4;
    b.row = 0;
    pack.placements = {a, b};
    pack.totalHeight = std::max(a.height, b.height);
    Composed comp = valueOrFatal(composeThreadsChecked(f.threads, pack, 8));
    f.runAndCheck(comp);
    // Two threads side by side: some cycles with >= 2 streams.
    bool multi = false;
    for (const auto &[streams, cycles] : f.lastStats)
        if (streams >= 2 && cycles > 0)
            multi = true;
    EXPECT_TRUE(multi);
}

TEST(Compose, ThreadInfoDescribesLayout)
{
    Fixture f(2);
    auto tiles = generateTiles(f.threads, 8);
    PackResult pack = packStacked(tiles, 8);
    Composed comp = valueOrFatal(composeThreadsChecked(f.threads, pack, 8));
    ASSERT_EQ(comp.threads.size(), 2u);
    EXPECT_EQ(comp.threads[0].barrierRow, 1u);
    EXPECT_EQ(comp.threads[1].barrierRow, 2u);
    EXPECT_EQ(comp.threads[0].bodyStart, 3u); // 1 dispatch + 2 barriers
    EXPECT_EQ(comp.threads[0].regBase, 0);
    EXPECT_EQ(comp.threads[1].regBase, 24);
    EXPECT_EQ(comp.finalBarrier,
              3u + pack.totalHeight);
}

TEST(Compose, RegisterBudgetEnforced)
{
    Fixture f(1);
    auto tiles = generateTiles(f.threads, 8);
    PackResult pack = packStacked(tiles, 8);
    EXPECT_THROW(valueOrFatal(composeThreadsChecked(f.threads, pack, 8,
                                      ComposeOptions{.regsPerThread = 2})), FatalError);
}

TEST(Compose, ManyThreadsManySeeds)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        Fixture f(6, seed);
        auto tiles = generateTiles(f.threads, 8);
        for (auto pack : {packStacked, packBalancedGroups}) {
            Composed comp =
                valueOrFatal(composeThreadsChecked(f.threads, pack(tiles, 8), 8));
            f.runAndCheck(comp);
        }
    }
}

} // namespace
} // namespace ximd::sched
