/** Round-trip and error tests for the textual IR (sched/ir_print.hh). */

#include <gtest/gtest.h>

#include "asm/asm_writer.hh"
#include "sched/codegen.hh"
#include "sched/ir_print.hh"
#include "workloads/ir_threads.hh"


using namespace ximd;
using namespace ximd::sched;

namespace {

const char *kReduceText = R"(.vregs 4
.vinit v0 0
.vinit v1 0
.minit 1025 7
block loop:
  v0 = iadd v0, #1
  v2 = load #1024, v0
  v3 = imult v2, #3
  v1 = iadd v1, v3
  eq v0, #8
  branch 4 end loop
block end:
  store v1, #2048
  halt
)";

TEST(IrPrint, ParseThenPrintIsCanonical)
{
    auto p = parseIr(kReduceText);
    ASSERT_TRUE(p.hasValue()) << p.error().format();
    EXPECT_EQ(printIr(p.value()), kReduceText);
}

TEST(IrPrint, PrintThenParseReproducesProgram)
{
    Rng rng(101);
    const IrProgram orig = workloads::reductionThread(0, 8, 3, rng);
    auto back = parseIr(printIr(orig));
    ASSERT_TRUE(back.hasValue()) << back.error().format();
    // Same text again...
    EXPECT_EQ(printIr(back.value()), printIr(orig));
    // ...and the same compiled program, which is the bar that matters.
    EXPECT_EQ(writeAssembly(valueOrFatal(generateCodeChecked(back.value())).program),
              writeAssembly(valueOrFatal(generateCodeChecked(orig)).program));
}

TEST(IrPrint, MixedThreadRoundTrips)
{
    Rng rng(202);
    const IrProgram orig = workloads::mixedThread(0, rng);
    auto back = parseIr(printIr(orig));
    ASSERT_TRUE(back.hasValue()) << back.error().format();
    EXPECT_EQ(printIr(back.value()), printIr(orig));
}

TEST(IrPrint, CommentsAndBlankLinesIgnored)
{
    auto p = parseIr("// a comment\n\n.vregs 1\n"
                     "block b: // trailing\n  v0 = iadd #1, #2\n"
                     "  halt\n");
    ASSERT_TRUE(p.hasValue()) << p.error().format();
    EXPECT_EQ(p.value().blocks.size(), 1u);
    EXPECT_EQ(p.value().blocks[0].ops.size(), 1u);
}

TEST(IrPrint, RawImmediatesAreBitExact)
{
    // 0x40490FDB is pi as an IEEE-754 float; the round trip must not
    // go through a decimal that loses bits.
    auto p = parseIr(".vregs 1\nblock b:\n"
                     "  v0 = fadd #0x40490FDB, #0x40490FDB\n  halt\n");
    ASSERT_TRUE(p.hasValue()) << p.error().format();
    EXPECT_EQ(p.value().blocks[0].ops[0].a.imm, 0x40490FDBu);
    auto back = parseIr(printIr(p.value()));
    ASSERT_TRUE(back.hasValue());
    EXPECT_EQ(back.value().blocks[0].ops[0].a.imm, 0x40490FDBu);
}

struct BadCase
{
    const char *text;
    int line;          ///< Expected 1-based error line.
    const char *needle; ///< Substring of the message.
};

TEST(IrPrint, ErrorsCarryLineAndPass)
{
    const BadCase cases[] = {
        {".vregs 1\nblock b:\n  v0 = frobnicate v0\n  halt\n", 3,
         "unknown mnemonic"},
        {".vregs 1\n  v0 = iadd #1, #2\n", 2, "outside a block"},
        {".vregs 1\nblock b:\n  v0 = iadd #1\n  halt\n", 3,
         "wants 2 sources"},
        {".vregs 1\nblock b:\n  v0 = eq v0, #1\n  halt\n", 3,
         "cannot have a destination"},
        {".vregs 1\nblock b:\n  iadd #1, #2\n  halt\n", 3,
         "needs a destination"},
        {".vregs 1\nblock b:\n  v0 = iadd q3, #2\n  halt\n", 3,
         "bad value"},
        {".vregs 1\nblock b:\n  branch x end b\n  halt\n", 3,
         "bad branch compare index"},
        // Reported at end of input, where the terminator is missing.
        {".vregs 1\nblock b:\n  v0 = iadd #1, #2\n", 4,
         "not terminated"},
    };
    for (const BadCase &c : cases) {
        auto p = parseIr(c.text);
        ASSERT_FALSE(p.hasValue()) << c.text;
        EXPECT_EQ(p.error().pass, "ir-parse") << c.text;
        EXPECT_EQ(p.error().line, c.line) << c.text;
        EXPECT_NE(p.error().message.find(c.needle), std::string::npos)
            << p.error().format();
        // format() renders the line for tooling.
        EXPECT_NE(p.error().format().find("line"), std::string::npos);
    }
}

TEST(IrPrint, SemanticErrorsComeFromValidation)
{
    // Parses fine, but the branch targets a block that does not exist;
    // the validator's diagnostic is re-tagged to the parse pass.
    auto p = parseIr(".vregs 1\nblock b:\n  eq #1, #2\n"
                     "  branch 0 nowhere b\n");
    ASSERT_FALSE(p.hasValue());
    EXPECT_EQ(p.error().pass, "ir-parse");
    EXPECT_NE(p.error().message.find("nowhere"), std::string::npos)
        << p.error().format();
}

} // namespace
