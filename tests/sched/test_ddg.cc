#include "sched/ddg.hh"

#include <gtest/gtest.h>

namespace ximd::sched {
namespace {

IrBlock
block(std::vector<IrOp> ops)
{
    IrBlock b;
    b.name = "b";
    b.ops = std::move(ops);
    b.term.kind = Terminator::Kind::Halt;
    return b;
}

IrOp
add(VregId dest, IrValue a, IrValue b)
{
    IrOp op;
    op.op = Opcode::Iadd;
    op.a = a;
    op.b = b;
    op.dest = dest;
    return op;
}

IrOp
store(IrValue v, IrValue addr)
{
    IrOp op;
    op.op = Opcode::Store;
    op.a = v;
    op.b = addr;
    return op;
}

IrOp
load(VregId dest, IrValue a)
{
    IrOp op;
    op.op = Opcode::Load;
    op.a = a;
    op.b = IrValue::immInt(0);
    op.dest = dest;
    return op;
}

bool
hasEdge(const Ddg &g, int from, int to, int latency)
{
    for (const DdgEdge &e : g.edges())
        if (e.from == from && e.to == to && e.latency == latency)
            return true;
    return false;
}

TEST(Ddg, RawEdgeLatencyOne)
{
    Ddg g(block({add(0, IrValue::immInt(1), IrValue::immInt(2)),
                 add(1, IrValue::reg(0), IrValue::immInt(3))}));
    EXPECT_TRUE(hasEdge(g, 0, 1, 1));
    EXPECT_EQ(g.criticalPathLength(), 1);
}

TEST(Ddg, WarEdgeLatencyZero)
{
    // op0 reads v1; op1 writes v1 — same cycle is fine.
    Ddg g(block({add(0, IrValue::reg(1), IrValue::immInt(1)),
                 add(1, IrValue::immInt(2), IrValue::immInt(3))}));
    EXPECT_TRUE(hasEdge(g, 0, 1, 0));
}

TEST(Ddg, WawEdgeLatencyOne)
{
    Ddg g(block({add(0, IrValue::immInt(1), IrValue::immInt(1)),
                 add(0, IrValue::immInt(2), IrValue::immInt(2))}));
    EXPECT_TRUE(hasEdge(g, 0, 1, 1));
}

TEST(Ddg, IndependentOpsNoEdges)
{
    Ddg g(block({add(0, IrValue::immInt(1), IrValue::immInt(2)),
                 add(1, IrValue::immInt(3), IrValue::immInt(4))}));
    EXPECT_TRUE(g.edges().empty());
    EXPECT_EQ(g.criticalPathLength(), 0);
}

TEST(Ddg, MemoryStoreStoreSerializes)
{
    Ddg g(block({store(IrValue::immInt(1), IrValue::immInt(10)),
                 store(IrValue::immInt(2), IrValue::immInt(11))}));
    EXPECT_TRUE(hasEdge(g, 0, 1, 1));
}

TEST(Ddg, MemoryLoadAfterStoreSerializes)
{
    Ddg g(block({store(IrValue::immInt(1), IrValue::immInt(10)),
                 load(0, IrValue::immInt(10))}));
    EXPECT_TRUE(hasEdge(g, 0, 1, 1));
}

TEST(Ddg, StoreAfterLoadIsWarZero)
{
    Ddg g(block({load(0, IrValue::immInt(10)),
                 store(IrValue::immInt(1), IrValue::immInt(10))}));
    EXPECT_TRUE(hasEdge(g, 0, 1, 0));
}

TEST(Ddg, LoadsReorderFreely)
{
    Ddg g(block({load(0, IrValue::immInt(10)),
                 load(1, IrValue::immInt(11))}));
    EXPECT_TRUE(g.edges().empty());
}

TEST(Ddg, HeightsFollowChains)
{
    // 0 -> 1 -> 2 chain plus an independent op 3.
    Ddg g(block({add(0, IrValue::immInt(1), IrValue::immInt(1)),
                 add(1, IrValue::reg(0), IrValue::immInt(1)),
                 add(2, IrValue::reg(1), IrValue::immInt(1)),
                 add(3, IrValue::immInt(5), IrValue::immInt(5))}));
    EXPECT_EQ(g.heights()[0], 2);
    EXPECT_EQ(g.heights()[1], 1);
    EXPECT_EQ(g.heights()[2], 0);
    EXPECT_EQ(g.heights()[3], 0);
    EXPECT_EQ(g.criticalPathLength(), 2);
}

TEST(Ddg, PredsAndSuccsConsistent)
{
    Ddg g(block({add(0, IrValue::immInt(1), IrValue::immInt(1)),
                 add(1, IrValue::reg(0), IrValue::reg(0))}));
    ASSERT_EQ(g.succs(0).size(), 1u);
    ASSERT_EQ(g.preds(1).size(), 1u);
    EXPECT_EQ(g.succs(0)[0].to, 1);
    EXPECT_EQ(g.preds(1)[0].from, 0);
}

} // namespace
} // namespace ximd::sched
