#include "pipeline_golden.hh"

#include <sstream>

#include "asm/asm_writer.hh"
#include "sched/compose.hh"
#include "support/logging.hh"
#include "workloads/ir_threads.hh"

namespace ximd::sched {

namespace {

GoldenCase
blockCase(std::string name, IrProgram ir, FuId width,
          unsigned rawLatency, RegId regBase = 0, bool nameVregs = true)
{
    GoldenCase c;
    c.name = std::move(name);
    c.kind = GoldenCase::Kind::Block;
    c.ir = std::move(ir);
    c.opts.width = width;
    c.opts.rawLatency = rawLatency;
    c.opts.alloc.window.base = regBase;
    c.opts.nameVregs = nameVregs;
    return c;
}

GoldenCase
loopCase(std::string name, PipelineLoop loop, FuId width)
{
    GoldenCase c;
    c.name = std::move(name);
    c.kind = GoldenCase::Kind::Loop;
    c.loop = std::move(loop);
    c.width = width;
    return c;
}

GoldenCase
composeCase(std::string name, std::vector<IrProgram> threads,
            std::string strategy, FuId width)
{
    GoldenCase c;
    c.name = std::move(name);
    c.kind = GoldenCase::Kind::Compose;
    c.threads = std::move(threads);
    c.strategy = std::move(strategy);
    c.width = width;
    return c;
}

IrProgram
reduce101()
{
    Rng rng(101);
    return workloads::reductionThread(0, 8, 3, rng);
}

IrProgram
mixed202()
{
    Rng rng(202);
    return workloads::mixedThread(0, rng);
}

} // namespace

std::vector<GoldenCase>
goldenCases()
{
    std::vector<GoldenCase> cases;
    cases.push_back(blockCase("reduce_w4_l1", reduce101(), 4, 1));
    cases.push_back(blockCase("reduce_w8_l1", reduce101(), 8, 1));
    cases.push_back(blockCase("reduce_w2_l3", reduce101(), 2, 3));
    cases.push_back(
        blockCase("reduce_w8_l3_base16", reduce101(), 8, 3, 16, false));
    cases.push_back(blockCase("mixed_w8_l1", mixed202(), 8, 1));
    cases.push_back(blockCase("mixed_w4_l3", mixed202(), 4, 3));
    cases.push_back(blockCase("mixed_w1_l1", mixed202(), 1, 1));
    cases.push_back(loopCase(
        "loop12_w8", workloads::loop12Pipeline(20, 64, 128), 8));
    cases.push_back(loopCase(
        "loop12_w7", workloads::loop12Pipeline(20, 64, 128), 7));
    cases.push_back(
        loopCase("scale_w8", workloads::scalePipeline(12, 64, 128), 8));
    cases.push_back(composeCase("compose_stacked_6",
                                workloads::reductionThreadSet(6, 42),
                                "stacked", 8));
    cases.push_back(composeCase("compose_balanced_6",
                                workloads::reductionThreadSet(6, 42),
                                "balanced-groups", 8));
    return cases;
}

Program
compileGoldenCase(const GoldenCase &c)
{
    switch (c.kind) {
      case GoldenCase::Kind::Block:
        return valueOrFatal(generateCodeChecked(c.ir, c.opts))
            .program;
      case GoldenCase::Kind::Loop:
        return valueOrFatal(pipelineLoopChecked(c.loop, c.width));
      case GoldenCase::Kind::Compose: {
        auto tiles = generateTiles(c.threads, c.width);
        PackResult packing;
        if (c.strategy == "stacked")
            packing = packStacked(tiles, c.width);
        else if (c.strategy == "balanced-groups")
            packing = packBalancedGroups(tiles, c.width);
        else
            fatal("unknown golden pack strategy: ", c.strategy);
        return valueOrFatal(composeThreadsChecked(
                   c.threads, packing, c.width))
            .program;
      }
    }
    fatal("unreachable golden case kind");
}

std::string
serializeForGolden(const std::string &name, const Program &prog)
{
    std::ostringstream os;
    os << "== " << name << " ==\n";
    std::istringstream in(writeAssembly(prog));
    for (std::string line; std::getline(in, line);) {
        if (line.rfind(".const __", 0) == 0)
            continue;
        os << line << "\n";
    }
    return os.str();
}

} // namespace ximd::sched
