/**
 * @file
 * Regenerate tests/sched/golden/pipeline_equivalence.golden.
 *
 * Run by hand only when the sched output is *intentionally* changed;
 * the committed golden otherwise pins the compiler's exact output so
 * refactors of the pass pipeline stay byte-identical.
 */

#include <fstream>
#include <iostream>

#include "pipeline_golden.hh"

int
main(int argc, char **argv)
{
    using namespace ximd::sched;

    std::string path = std::string(XIMD_SOURCE_DIR) +
                       "/tests/sched/golden/pipeline_equivalence.golden";
    if (argc > 1)
        path = argv[1];

    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
    }
    for (const GoldenCase &c : goldenCases())
        out << serializeForGolden(c.name, compileGoldenCase(c));
    std::cout << "wrote " << path << "\n";
    return 0;
}
