/**
 * @file
 * Shared fixture for the pipeline-equivalence golden.
 *
 * goldenCases() enumerates deterministic compilation inputs — straight
 * IR programs at several widths/latencies, modulo-scheduled loops, and
 * packed multi-thread compositions. The regen tool compiled them with
 * the single-call stage entry points and committed the serialized
 * result (golden/pipeline_equivalence.golden); the equivalence test
 * recompiles the same cases through the pass pipeline and diffs.
 *
 * serializeForGolden() drops reserved "__"-prefixed symbols (e.g. the
 * stamped raw latency) so metadata added by the pipeline does not
 * perturb the pre-refactor capture.
 */

#ifndef XIMD_TESTS_SCHED_PIPELINE_GOLDEN_HH
#define XIMD_TESTS_SCHED_PIPELINE_GOLDEN_HH

#include <string>
#include <vector>

#include "sched/codegen.hh"
#include "sched/ir.hh"
#include "sched/modulo.hh"

namespace ximd::sched {

/** One deterministic compilation input. */
struct GoldenCase
{
    enum class Kind { Block, Loop, Compose };

    std::string name;
    Kind kind = Kind::Block;

    IrProgram ir;        ///< Kind::Block input.
    CodegenOptions opts; ///< Kind::Block options.

    PipelineLoop loop; ///< Kind::Loop input.

    std::vector<IrProgram> threads; ///< Kind::Compose inputs.
    std::string strategy;           ///< Pack strategy name.

    FuId width = 8; ///< Machine width for Loop/Compose.
};

/** The full deterministic case list (stable order and content). */
std::vector<GoldenCase> goldenCases();

/** Compile one case through the stage entry points. */
Program compileGoldenCase(const GoldenCase &c);

/**
 * Serialize for golden comparison: "== name ==" header plus the
 * program's assembly text, minus reserved "__"-prefixed constants.
 */
std::string serializeForGolden(const std::string &name,
                               const Program &prog);

} // namespace ximd::sched

#endif // XIMD_TESTS_SCHED_PIPELINE_GOLDEN_HH
