#include "sched/list_scheduler.hh"

#include <gtest/gtest.h>

#include "support/random.hh"


namespace ximd::sched {
namespace {

IrOp
add(VregId dest, IrValue a, IrValue b)
{
    IrOp op;
    op.op = Opcode::Iadd;
    op.a = a;
    op.b = b;
    op.dest = dest;
    return op;
}

/** Every-op-once, width respected, dependence latencies respected. */
void
checkSchedule(const IrBlock &block, const BlockSchedule &s, FuId width)
{
    std::vector<int> cycleOf(block.ops.size(), -1);
    for (std::size_t c = 0; c < s.cycles.size(); ++c) {
        ASSERT_LE(s.cycles[c].size(), width);
        for (int i : s.cycles[c]) {
            ASSERT_GE(i, 0);
            ASSERT_LT(i, static_cast<int>(block.ops.size()));
            ASSERT_EQ(cycleOf[static_cast<std::size_t>(i)], -1)
                << "op scheduled twice";
            cycleOf[static_cast<std::size_t>(i)] =
                static_cast<int>(c);
        }
    }
    for (int c : cycleOf)
        ASSERT_NE(c, -1) << "op missing from schedule";
    Ddg ddg(block);
    for (const DdgEdge &e : ddg.edges())
        ASSERT_GE(cycleOf[static_cast<std::size_t>(e.to)],
                  cycleOf[static_cast<std::size_t>(e.from)] +
                      e.latency);
}

TEST(ListScheduler, ParallelIndependentOps)
{
    IrBlock b;
    b.name = "b";
    for (VregId v = 0; v < 8; ++v)
        b.ops.push_back(add(v, IrValue::immInt(v), IrValue::immInt(1)));
    b.term.kind = Terminator::Kind::Halt;

    BlockSchedule s4 = valueOrFatal(scheduleBlockChecked(b, 4));
    checkSchedule(b, s4, 4);
    EXPECT_EQ(s4.numRows(), 2u);

    BlockSchedule s8 = valueOrFatal(scheduleBlockChecked(b, 8));
    EXPECT_EQ(s8.numRows(), 1u);

    BlockSchedule s1 = valueOrFatal(scheduleBlockChecked(b, 1));
    EXPECT_EQ(s1.numRows(), 8u);
}

TEST(ListScheduler, ChainForcesSequentialCycles)
{
    IrBlock b;
    b.name = "b";
    b.ops.push_back(add(0, IrValue::immInt(1), IrValue::immInt(1)));
    b.ops.push_back(add(1, IrValue::reg(0), IrValue::immInt(1)));
    b.ops.push_back(add(2, IrValue::reg(1), IrValue::immInt(1)));
    b.term.kind = Terminator::Kind::Halt;
    BlockSchedule s = valueOrFatal(scheduleBlockChecked(b, 8));
    checkSchedule(b, s, 8);
    EXPECT_EQ(s.numRows(), 3u);
}

TEST(ListScheduler, WarAllowsSameCycle)
{
    IrBlock b;
    b.name = "b";
    b.ops.push_back(add(0, IrValue::reg(1), IrValue::immInt(1)));
    b.ops.push_back(add(1, IrValue::immInt(2), IrValue::immInt(3)));
    b.term.kind = Terminator::Kind::Halt;
    BlockSchedule s = valueOrFatal(scheduleBlockChecked(b, 8));
    checkSchedule(b, s, 8);
    EXPECT_EQ(s.numRows(), 1u);
}

TEST(ListScheduler, EmptyBlockStillHasARow)
{
    IrBlock b;
    b.name = "b";
    b.term.kind = Terminator::Kind::Jump;
    b.term.taken = "b";
    BlockSchedule s = valueOrFatal(scheduleBlockChecked(b, 4));
    EXPECT_EQ(s.numRows(), 1u);
}

TEST(ListScheduler, CompareGetsACycleBeforeBranch)
{
    // A lone compare with a conditional terminator: the compare's CC
    // is registered, so the block needs two rows.
    IrBlock b;
    b.name = "b";
    IrOp cmp;
    cmp.op = Opcode::Eq;
    cmp.a = IrValue::immInt(1);
    cmp.b = IrValue::immInt(1);
    b.ops.push_back(cmp);
    b.term.kind = Terminator::Kind::CondBranch;
    b.term.compareIdx = 0;
    b.term.taken = "b";
    b.term.fallthrough = "b";
    BlockSchedule s = valueOrFatal(scheduleBlockChecked(b, 4));
    EXPECT_EQ(s.numRows(), 2u);
}

TEST(ListScheduler, CompareEarlyEnoughNeedsNoPadding)
{
    IrBlock b;
    b.name = "b";
    IrOp cmp;
    cmp.op = Opcode::Eq;
    cmp.a = IrValue::immInt(1);
    cmp.b = IrValue::immInt(1);
    b.ops.push_back(cmp); // cycle 0
    b.ops.push_back(add(0, IrValue::immInt(1), IrValue::immInt(1)));
    b.ops.push_back(add(1, IrValue::reg(0), IrValue::immInt(1)));
    b.term.kind = Terminator::Kind::CondBranch;
    b.term.compareIdx = 0;
    b.term.taken = "b";
    b.term.fallthrough = "b";
    BlockSchedule s = valueOrFatal(scheduleBlockChecked(b, 1));
    checkSchedule(b, s, 1);
    EXPECT_EQ(s.numRows(), 3u); // no extra padding row
}

class RandomBlockSchedule
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
};

TEST_P(RandomBlockSchedule, AlwaysLegal)
{
    const auto [width, seed] = GetParam();
    Rng rng(seed);
    IrBlock b;
    b.name = "b";
    const int n = static_cast<int>(rng.range(1, 30));
    int vregs = 0;
    for (int i = 0; i < n; ++i) {
        IrValue a = vregs > 0 && rng.chance(0.6)
                        ? IrValue::reg(static_cast<VregId>(
                              rng.range(0, vregs - 1)))
                        : IrValue::immInt(
                              static_cast<SWord>(rng.range(0, 9)));
        IrValue bb = vregs > 0 && rng.chance(0.4)
                         ? IrValue::reg(static_cast<VregId>(
                               rng.range(0, vregs - 1)))
                         : IrValue::immInt(1);
        b.ops.push_back(add(vregs++, a, bb));
    }
    b.term.kind = Terminator::Kind::Halt;
    BlockSchedule s = valueOrFatal(scheduleBlockChecked(b, static_cast<FuId>(width)));
    checkSchedule(b, s, static_cast<FuId>(width));
    // Lower bounds: critical path and resource pressure.
    Ddg ddg(b);
    EXPECT_GE(static_cast<int>(s.numRows()),
              ddg.criticalPathLength() + 1);
    EXPECT_GE(s.numRows() * static_cast<unsigned>(width),
              static_cast<unsigned>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomBlockSchedule,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(101u, 202u, 303u, 404u,
                                         505u)));

} // namespace
} // namespace ximd::sched
