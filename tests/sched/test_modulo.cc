#include "sched/modulo.hh"

#include <gtest/gtest.h>

#include "core/vliw_machine.hh"
#include "core/ximd_machine.hh"
#include "support/logging.hh"
#include "support/random.hh"


namespace ximd::sched {
namespace {

/** Loop 12 as a PipelineLoop: X(k) = Y(k+1) - Y(k). */
PipelineLoop
loop12(Word n, Addr y0, Addr x0)
{
    PipelineLoop loop;
    loop.numLocals = 4; // y0, y1, x, ax
    loop.tripCount = n;
    PipeOp ld0{Opcode::Load, PipeVal::immRaw(y0),
               PipeVal::induction(), 0};
    PipeOp ld1{Opcode::Load, PipeVal::immRaw(y0 + 1),
               PipeVal::induction(), 1};
    PipeOp ax{Opcode::Iadd, PipeVal::induction(),
              PipeVal::immRaw(x0), 3};
    PipeOp sub{Opcode::Fsub, PipeVal::localVal(1),
               PipeVal::localVal(0), 2};
    PipeOp st{Opcode::Store, PipeVal::localVal(2),
              PipeVal::localVal(3), -1};
    loop.body = {ld0, ld1, ax, sub, st};
    return loop;
}

/** Vector scale: Z(k) = 3 * A(k). Depth 2. */
PipelineLoop
scaleLoop(Word n, Addr a0, Addr z0)
{
    PipelineLoop loop;
    loop.numLocals = 3; // a, z, az
    loop.tripCount = n;
    loop.body = {
        {Opcode::Load, PipeVal::immRaw(a0), PipeVal::induction(), 0},
        {Opcode::Iadd, PipeVal::induction(), PipeVal::immRaw(z0), 2},
        {Opcode::Imult, PipeVal::localVal(0), PipeVal::immInt(3), 1},
        {Opcode::Store, PipeVal::localVal(1), PipeVal::localVal(2),
         -1},
    };
    return loop;
}

TEST(Modulo, Loop12MatchesReference)
{
    const Word n = 20;
    const Addr y0 = 64, x0 = 128;
    PipelineInfo info;
    Program p = valueOrFatal(pipelineLoopChecked(loop12(n, y0, x0), 8, &info));

    EXPECT_EQ(info.depth, 3u);
    EXPECT_EQ(info.expansion, 2u);

    XimdMachine m(p);
    std::vector<float> y(n + 1);
    for (Word k = 1; k <= n + 1; ++k) {
        y[k - 1] = 0.5f * static_cast<float>(k * k);
        m.memory().poke(y0 + k, floatToWord(y[k - 1]));
    }
    const RunResult r = m.run(10000);
    ASSERT_TRUE(r.ok()) << r.faultMessage;
    EXPECT_EQ(r.cycles, info.expectedCycles);
    for (Word k = 1; k <= n; ++k)
        EXPECT_FLOAT_EQ(wordToFloat(m.peekMem(x0 + k)),
                        y[k] - y[k - 1])
            << "X(" << k << ")";
}

TEST(Modulo, InitiationIntervalIsOne)
{
    const Word n = 500;
    PipelineInfo info;
    Program p = valueOrFatal(pipelineLoopChecked(loop12(n, 64, 1024), 8, &info));
    XimdMachine m(p);
    ASSERT_TRUE(m.run(10000).ok());
    EXPECT_EQ(m.cycle(), n + info.depth);
}

TEST(Modulo, RunsIdenticallyOnVliw)
{
    Program p = valueOrFatal(pipelineLoopChecked(scaleLoop(12, 64, 128), 8));
    XimdMachine x(p);
    VliwMachine v(p);
    for (Word k = 1; k <= 14; ++k) {
        x.memory().poke(64 + k, k * 10);
        v.memory().poke(64 + k, k * 10);
    }
    ASSERT_TRUE(x.run(1000).ok());
    ASSERT_TRUE(v.run(1000).ok());
    EXPECT_EQ(x.cycle(), v.cycle());
    for (Word k = 1; k <= 12; ++k)
        EXPECT_EQ(x.peekMem(128 + k), v.peekMem(128 + k));
}

TEST(Modulo, ScaleLoopDepthThree)
{
    // load (stage 0) -> mult (stage 1) -> store (sunk to stage 2).
    PipelineInfo info;
    Program p = valueOrFatal(pipelineLoopChecked(scaleLoop(10, 64, 128), 8, &info));
    EXPECT_EQ(info.depth, 3u);
    EXPECT_EQ(info.expansion, 2u);
    XimdMachine m(p);
    for (Word k = 1; k <= 13; ++k)
        m.memory().poke(64 + k, k);
    ASSERT_TRUE(m.run(1000).ok());
    for (Word k = 1; k <= 10; ++k)
        EXPECT_EQ(m.peekMem(128 + k), 3 * k);
    EXPECT_EQ(m.cycle(), 10u + 3u);
}

TEST(Modulo, TinyTripCounts)
{
    for (Word n : {1u, 2u, 3u, 4u}) {
        Program p = valueOrFatal(pipelineLoopChecked(loop12(n, 64, 128), 8));
        XimdMachine m(p);
        for (Word k = 1; k <= n + 3; ++k)
            m.memory().poke(64 + k, floatToWord(float(k * k)));
        const RunResult r = m.run(1000);
        ASSERT_TRUE(r.ok()) << "n=" << n << ": " << r.faultMessage;
        for (Word k = 1; k <= n; ++k)
            EXPECT_FLOAT_EQ(wordToFloat(m.peekMem(128 + k)),
                            float((k + 1) * (k + 1)) - float(k * k))
                << "n=" << n << " k=" << k;
    }
}

TEST(Modulo, RejectsTooManyOpsForWidth)
{
    PipelineLoop loop = loop12(10, 64, 128);
    EXPECT_THROW(valueOrFatal(pipelineLoopChecked(loop, 6)), FatalError); // 5 ops + 2 > 6
    EXPECT_NO_THROW(valueOrFatal(pipelineLoopChecked(loop, 7)));
}

TEST(Modulo, RejectsLateInductionRead)
{
    PipelineLoop loop;
    loop.numLocals = 2;
    loop.tripCount = 8;
    loop.body = {
        {Opcode::Iadd, PipeVal::immInt(1), PipeVal::immInt(2), 0},
        // Reads induction at stage 1: illegal.
        {Opcode::Iadd, PipeVal::localVal(0), PipeVal::induction(), 1},
    };
    EXPECT_THROW(valueOrFatal(pipelineLoopChecked(loop, 8)), FatalError);
}

TEST(Modulo, RejectsDoubleDefinedLocal)
{
    PipelineLoop loop;
    loop.numLocals = 1;
    loop.tripCount = 8;
    loop.body = {
        {Opcode::Iadd, PipeVal::immInt(1), PipeVal::immInt(2), 0},
        {Opcode::Iadd, PipeVal::immInt(3), PipeVal::immInt(4), 0},
    };
    EXPECT_THROW(valueOrFatal(pipelineLoopChecked(loop, 8)), FatalError);
}

TEST(Modulo, RejectsUseBeforeDef)
{
    PipelineLoop loop;
    loop.numLocals = 2;
    loop.tripCount = 8;
    loop.body = {
        {Opcode::Iadd, PipeVal::localVal(1), PipeVal::immInt(2), 0},
    };
    EXPECT_THROW(valueOrFatal(pipelineLoopChecked(loop, 8)), FatalError);
}

TEST(Modulo, FourTapFirDeepPipeline)
{
    // FIR filter y[k] = sum_j c_j * x[k - j], 4 taps, on a 16-FU
    // machine: 12 body ops + induction + exit = 14 <= 16. The
    // multiply-accumulate chain gives depth 6 and therefore register
    // expansion E = 5 — the deepest pipeline in the suite.
    constexpr Word n = 40;
    constexpr Addr x0 = 64;  // x[k] at x0 + k; x[-2..0] are zero pads
    constexpr Addr y0 = 512; // y[k] at y0 + k
    const SWord c[4] = {3, -2, 5, 7};

    PipelineLoop loop;
    loop.numLocals = 12; // 4 loads, 4 products, 3 partial sums, addr
    loop.tripCount = n;
    // Loads x[k], x[k-1], x[k-2], x[k-3] (bases shifted down).
    for (int j = 0; j < 4; ++j)
        loop.body.push_back({Opcode::Load,
                             PipeVal::immRaw(x0 - static_cast<Word>(j)),
                             PipeVal::induction(), j});
    loop.body.push_back({Opcode::Iadd, PipeVal::induction(),
                         PipeVal::immRaw(y0), 11});
    for (int j = 0; j < 4; ++j)
        loop.body.push_back({Opcode::Imult, PipeVal::localVal(j),
                             PipeVal::immInt(c[j]), 4 + j});
    loop.body.push_back({Opcode::Iadd, PipeVal::localVal(4),
                         PipeVal::localVal(5), 8});
    loop.body.push_back({Opcode::Iadd, PipeVal::localVal(8),
                         PipeVal::localVal(6), 9});
    loop.body.push_back({Opcode::Iadd, PipeVal::localVal(9),
                         PipeVal::localVal(7), 10});
    loop.body.push_back({Opcode::Store, PipeVal::localVal(10),
                         PipeVal::localVal(11), -1});

    PipelineInfo info;
    Program p = valueOrFatal(pipelineLoopChecked(loop, 16, &info));
    EXPECT_EQ(info.depth, 6u);
    EXPECT_EQ(info.expansion, 5u);

    MachineConfig cfg;
    XimdMachine m(p, cfg);
    Rng rng(2025);
    std::vector<SWord> x(n + 8, 0);
    for (Word k = 1; k <= n; ++k) {
        x[k] = static_cast<SWord>(rng.range(-100, 100));
        m.memory().poke(x0 + k, intToWord(x[k]));
    }
    const RunResult r = m.run(10000);
    ASSERT_TRUE(r.ok()) << r.faultMessage;
    EXPECT_EQ(r.cycles, info.expectedCycles);

    for (Word k = 1; k <= n; ++k) {
        SWord expect = 0;
        for (int j = 0; j < 4; ++j)
            expect += c[j] * (static_cast<SWord>(k) - j >= 1
                                  ? x[k - static_cast<Word>(j)]
                                  : 0);
        EXPECT_EQ(wordToInt(m.peekMem(y0 + k)), expect)
            << "y[" << k << "]";
    }
}

TEST(Modulo, RandomArithmeticPipelines)
{
    // Depth-3 integer pipeline: t0 = A(k)*5; t1 = t0 ^ 77; store.
    Rng rng(99);
    for (int trial = 0; trial < 5; ++trial) {
        const Word n = static_cast<Word>(rng.range(4, 60));
        PipelineLoop loop;
        loop.numLocals = 4;
        loop.tripCount = n;
        loop.body = {
            {Opcode::Load, PipeVal::immRaw(64), PipeVal::induction(),
             0},
            {Opcode::Iadd, PipeVal::induction(), PipeVal::immRaw(512),
             3},
            {Opcode::Imult, PipeVal::localVal(0), PipeVal::immInt(5),
             1},
            {Opcode::Xor, PipeVal::localVal(1), PipeVal::immInt(77),
             2},
            {Opcode::Store, PipeVal::localVal(2), PipeVal::localVal(3),
             -1},
        };
        PipelineInfo info;
        Program p = valueOrFatal(pipelineLoopChecked(loop, 8, &info));
        // load -> mult -> xor -> store: four stages.
        EXPECT_EQ(info.depth, 4u);

        XimdMachine m(p);
        std::vector<Word> a(n + 4);
        for (Word k = 1; k < a.size(); ++k) {
            a[k] = static_cast<Word>(rng.next64());
            m.memory().poke(64 + k, a[k]);
        }
        ASSERT_TRUE(m.run(10000).ok());
        for (Word k = 1; k <= n; ++k)
            EXPECT_EQ(m.peekMem(512 + k), (a[k] * 5u) ^ 77u)
                << "trial " << trial << " k " << k;
    }
}

} // namespace
} // namespace ximd::sched
