#include "sched/ir.hh"

#include <gtest/gtest.h>

#include "core/ximd_machine.hh"
#include "sched/codegen.hh"
#include "support/logging.hh"


namespace ximd::sched {
namespace {

IrProgram
sumLoop(SWord n)
{
    // sum = 1 + 2 + ... + n
    IrBuilder b;
    const VregId i = b.newVreg();
    const VregId sum = b.newVreg();
    b.setInit(i, 0);
    b.setInit(sum, 0);
    b.startBlock("loop");
    b.emitTo(i, Opcode::Iadd, IrValue::reg(i), IrValue::immInt(1));
    b.emitTo(sum, Opcode::Iadd, IrValue::reg(sum), IrValue::reg(i));
    const int cmp =
        b.emitCompare(Opcode::Eq, IrValue::reg(i), IrValue::immInt(n));
    b.branch(cmp, "end", "loop");
    b.startBlock("end");
    b.halt();
    return b.finish();
}

TEST(Ir, BuilderProducesValidProgram)
{
    IrProgram p = sumLoop(5);
    EXPECT_EQ(p.blocks.size(), 2u);
    EXPECT_EQ(p.numVregs, 2);
    EXPECT_TRUE(p.validateChecked().hasValue());
    EXPECT_NE(p.findBlock("loop"), nullptr);
    EXPECT_EQ(p.findBlock("nope"), nullptr);
}

TEST(Ir, InterpreterComputesSum)
{
    IrProgram p = sumLoop(10);
    std::vector<Word> mem(64, 0);
    const auto vregs = interpretIr(p, mem);
    EXPECT_EQ(vregs[1], 55u);
}

TEST(Ir, InterpreterMemoryOps)
{
    IrBuilder b;
    b.startBlock("entry");
    const IrValue v = b.emitLoad(IrValue::immInt(10), IrValue::immInt(0));
    const IrValue w =
        b.emit(Opcode::Imult, v, IrValue::immInt(3));
    b.emitStore(w, IrValue::immInt(11));
    b.halt();
    IrProgram p = b.finish();

    std::vector<Word> mem(64, 0);
    mem[10] = 7;
    interpretIr(p, mem);
    EXPECT_EQ(mem[11], 21u);
}

TEST(Ir, InterpreterFloatAgreesWithDatapath)
{
    IrBuilder b;
    b.startBlock("entry");
    const IrValue x = b.emit(Opcode::Fadd, IrValue::immFloat(1.5f),
                             IrValue::immFloat(2.25f));
    const IrValue y = b.emit(Opcode::Fmult, x, IrValue::immFloat(2.0f));
    b.emitStore(y, IrValue::immInt(5));
    b.halt();
    IrProgram p = b.finish();

    std::vector<Word> mem(16, 0);
    interpretIr(p, mem);
    EXPECT_FLOAT_EQ(wordToFloat(mem[5]), 7.5f);
}

TEST(Ir, ValidateRejectsUnknownBranchTarget)
{
    IrBuilder b;
    b.startBlock("entry");
    b.jump("missing");
    EXPECT_THROW(b.finish(), FatalError);
}

TEST(Ir, ValidateRejectsNonCompareCondition)
{
    IrProgram p;
    p.numVregs = 1;
    IrBlock blk;
    blk.name = "a";
    IrOp add;
    add.op = Opcode::Iadd;
    add.a = IrValue::immInt(1);
    add.b = IrValue::immInt(2);
    add.dest = 0;
    blk.ops.push_back(add);
    blk.term.kind = Terminator::Kind::CondBranch;
    blk.term.compareIdx = 0; // not a compare
    blk.term.taken = "a";
    blk.term.fallthrough = "a";
    p.blocks.push_back(blk);
    EXPECT_FALSE(p.validateChecked().hasValue());
}

TEST(Ir, ValidateRejectsDuplicateBlocks)
{
    IrBuilder b;
    b.startBlock("x");
    b.halt();
    b.startBlock("x"); // same name again
    b.halt();
    EXPECT_THROW(b.finish(), FatalError);
}

TEST(Ir, UnterminatedBlockRejected)
{
    IrBuilder b;
    b.startBlock("y");
    EXPECT_THROW(b.finish(), FatalError);
    IrBuilder b2;
    b2.startBlock("a");
    EXPECT_THROW(b2.startBlock("b"), FatalError);
}

TEST(Ir, InterpreterStepBudget)
{
    IrBuilder b;
    b.startBlock("spin");
    b.emit(Opcode::Iadd, IrValue::immInt(0), IrValue::immInt(0));
    b.jump("spin");
    IrProgram p = b.finish();
    std::vector<Word> mem(8, 0);
    EXPECT_THROW(interpretIr(p, mem, 1000), FatalError);
}

TEST(Ir, VregInitApplied)
{
    IrBuilder b;
    const VregId v = b.newVreg();
    b.setInit(v, 42);
    b.startBlock("entry");
    b.emitStore(IrValue::reg(v), IrValue::immInt(0));
    b.halt();
    IrProgram p = b.finish();
    std::vector<Word> mem(8, 0);
    interpretIr(p, mem);
    EXPECT_EQ(mem[0], 42u);
}

TEST(Ir, MergeStraightLineChains)
{
    // entry -> a -> b (all single-pred jumps): collapses to one block.
    IrBuilder b;
    b.startBlock("entry");
    IrValue x = b.emit(Opcode::Iadd, IrValue::immInt(1),
                       IrValue::immInt(2));
    b.jump("a");
    b.startBlock("a");
    IrValue y = b.emit(Opcode::Imult, x, IrValue::immInt(3));
    b.jump("b");
    b.startBlock("b");
    b.emitStore(y, IrValue::immInt(50));
    b.halt();
    IrProgram ir = b.finish();

    IrProgram merged = mergeStraightLineBlocks(ir);
    ASSERT_EQ(merged.blocks.size(), 1u);
    EXPECT_EQ(merged.blocks[0].ops.size(), 3u);
    EXPECT_EQ(merged.blocks[0].term.kind, Terminator::Kind::Halt);

    // Semantics preserved.
    std::vector<Word> m1(64, 0), m2(64, 0);
    interpretIr(ir, m1);
    interpretIr(merged, m2);
    EXPECT_EQ(m1[50], m2[50]);
    EXPECT_EQ(m1[50], 9u);
}

TEST(Ir, MergePreservesBranchCompareIndex)
{
    // entry (2 ops) -> body whose terminator branches on its own
    // compare: after the merge the compareIdx must shift by 2.
    IrBuilder b;
    b.startBlock("entry");
    b.emit(Opcode::Iadd, IrValue::immInt(1), IrValue::immInt(1));
    b.emit(Opcode::Iadd, IrValue::immInt(2), IrValue::immInt(2));
    b.jump("body");
    b.startBlock("body");
    const int cmp = b.emitCompare(Opcode::Lt, IrValue::immInt(1),
                                  IrValue::immInt(2));
    b.branch(cmp, "t", "f");
    b.startBlock("t");
    b.emitStore(IrValue::immInt(7), IrValue::immInt(40));
    b.halt();
    b.startBlock("f");
    b.emitStore(IrValue::immInt(8), IrValue::immInt(40));
    b.halt();
    IrProgram merged = mergeStraightLineBlocks(b.finish());

    EXPECT_EQ(merged.blocks.size(), 3u); // entry+body merged; t, f
    EXPECT_EQ(merged.blocks[0].term.compareIdx, 2);
    std::vector<Word> mem(64, 0);
    interpretIr(merged, mem);
    EXPECT_EQ(mem[40], 7u);
}

TEST(Ir, MergeKeepsLoopsIntact)
{
    // A loop header targeted by a backedge has two predecessors and
    // must not be merged away.
    IrBuilder b;
    const VregId i = b.newVreg();
    b.setInit(i, 0);
    b.startBlock("entry");
    b.jump("loop");
    b.startBlock("loop");
    b.emitTo(i, Opcode::Iadd, IrValue::reg(i), IrValue::immInt(1));
    const int cmp = b.emitCompare(Opcode::Eq, IrValue::reg(i),
                                  IrValue::immInt(5));
    b.branch(cmp, "end", "loop");
    b.startBlock("end");
    b.emitStore(IrValue::reg(i), IrValue::immInt(30));
    b.halt();
    IrProgram merged = mergeStraightLineBlocks(b.finish());

    // "loop" has predecessors entry and itself: survives. "end" is
    // single-pred but reached by a CondBranch, not a Jump: survives.
    EXPECT_EQ(merged.blocks.size(), 3u);
    std::vector<Word> mem(64, 0);
    interpretIr(merged, mem);
    EXPECT_EQ(mem[30], 5u);
}

TEST(Ir, MergeShrinksSchedules)
{
    // Chained blocks each pay scheduling overhead; merging lets the
    // list scheduler pack across the old boundaries.
    IrBuilder b;
    b.startBlock("e");
    std::vector<IrValue> vals;
    vals.push_back(b.emit(Opcode::Iadd, IrValue::immInt(1),
                          IrValue::immInt(2)));
    b.jump("m1");
    b.startBlock("m1");
    vals.push_back(b.emit(Opcode::Iadd, IrValue::immInt(3),
                          IrValue::immInt(4)));
    b.jump("m2");
    b.startBlock("m2");
    vals.push_back(b.emit(Opcode::Iadd, IrValue::immInt(5),
                          IrValue::immInt(6)));
    b.emitStore(vals[0], IrValue::immInt(41));
    b.emitStore(vals[1], IrValue::immInt(42));
    b.emitStore(vals[2], IrValue::immInt(43));
    b.halt();
    IrProgram ir = b.finish();
    IrProgram merged = mergeStraightLineBlocks(ir);

    const auto before = valueOrFatal(generateCodeChecked(ir, {.width = 8}));
    const auto after = valueOrFatal(generateCodeChecked(merged, {.width = 8}));
    EXPECT_LT(after.program.size(), before.program.size());

    XimdMachine m(after.program);
    ASSERT_TRUE(m.run(1000).ok());
    EXPECT_EQ(m.peekMem(41), 3u);
    EXPECT_EQ(m.peekMem(42), 7u);
    EXPECT_EQ(m.peekMem(43), 11u);
}

TEST(Ir, MemInitApplied)
{
    IrBuilder b;
    b.startBlock("entry");
    const IrValue v =
        b.emitLoad(IrValue::immInt(3), IrValue::immInt(0));
    b.emitStore(v, IrValue::immInt(4));
    b.halt();
    b.setMemInit(3, 99);
    IrProgram p = b.finish();
    std::vector<Word> mem(8, 0);
    interpretIr(p, mem);
    EXPECT_EQ(mem[4], 99u);
}

} // namespace
} // namespace ximd::sched
