/**
 * @file
 * Differential tests for the exact scheduler tier (sched/exact.hh).
 *
 * The exact tier is verified the way a fast kernel is verified
 * against a trusted oracle, from both sides:
 *
 *  - against the heuristic tier: for every paper kernel and >= 50
 *    random loop seeds, exact II <= heuristic II, a proven result
 *    never beats the MII lower bound, and the emitted program passes
 *    the inter-pass verifier and the static lint;
 *  - against the machine: exact- and heuristic-scheduled programs
 *    must reach the same final architectural state (archStateHash:
 *    registers, memory, per-FU condition codes) on both the
 *    interpreter and threaded-code backends — the schedules may
 *    differ, the computation may not;
 *  - against itself: deterministic search order makes compiled
 *    output bit-reproducible run to run, including node-capped
 *    (timed-out) searches.
 */

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asm/asm_writer.hh"
#include "core/machine.hh"
#include "farm/farm.hh"
#include "farm/suite.hh"
#include "sched/exact.hh"
#include "sched/ir_print.hh"
#include "sched/pipeline.hh"
#include "workloads/randprog.hh"

#ifndef XIMD_SOURCE_DIR
#error "XIMD_SOURCE_DIR must point at the repo root"
#endif

namespace {

using namespace ximd;
using namespace ximd::sched;

struct Kernel
{
    const char *name;
    FuId width;
};

/** The paper kernels and the widths their goldens are pinned at. */
const Kernel kKernels[] = {
    {"reduce", 4}, {"chain", 2}, {"scale", 8}, {"loop12", 4}};

IrProgram
loadKernel(const std::string &name)
{
    const std::string path = std::string(XIMD_SOURCE_DIR) +
                             "/examples/ir/" + name + ".ir";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    auto ir = parseIr(text.str());
    EXPECT_TRUE(ir.hasValue()) << path;
    return std::move(ir).value();
}

PipelineOptions
tierOptions(FuId width, ScheduleTier tier, unsigned rawLatency = 1)
{
    PipelineOptions po;
    po.width = width;
    po.rawLatency = rawLatency;
    po.schedule = tier;
    // Inter-pass verification + the final static verifier: every
    // exact schedule must clear the same bar the heuristic does.
    po.verifyBetween = true;
    po.verify = true;
    return po;
}

/** Compile and require success; returns the compiler for stats. */
Program
compileWith(Compiler &c, const IrProgram &ir)
{
    auto code = c.compile(ir);
    EXPECT_TRUE(code.hasValue())
        << (code.hasValue() ? "" : code.error().format());
    return code.value().program;
}

/** The crafted block where greedy height-priority provably loses a
 *  row: at width 1, issuing the branch compare second (not fourth)
 *  saves one of the compare-visibility pad rows. */
IrProgram
craftedWinIr()
{
    IrBuilder b;
    const VregId v0 = b.newVreg();
    b.setInit(v0, 0);
    b.startBlock("main");
    const IrValue a =
        b.emit(Opcode::Iadd, IrValue::reg(v0), IrValue::immInt(1));
    const IrValue c =
        b.emit(Opcode::Iadd, IrValue::reg(v0), IrValue::immInt(2));
    b.emit(Opcode::Iadd, c, IrValue::immInt(3));
    const int cmp = b.emitCompare(Opcode::Eq, a, IrValue::immInt(0));
    b.branch(cmp, "end", "main");
    b.startBlock("end");
    b.halt();
    return b.finish();
}

workloads::RandLoopOptions
corpusLoop(std::uint64_t seed)
{
    workloads::RandLoopOptions lo;
    lo.seed = seed;
    lo.bodyOps = 2 + static_cast<unsigned>(seed % 10);
    lo.tripCount = 3 + static_cast<unsigned>(seed % 4);
    return lo;
}

TEST(ExactSched, PaperKernelsProvenMinimalWithinDefaultBudget)
{
    for (const Kernel &k : kKernels) {
        const IrProgram ir = loadKernel(k.name);
        Compiler heuristic(
            tierOptions(k.width, ScheduleTier::Heuristic));
        Compiler exact(tierOptions(k.width, ScheduleTier::Exact));
        compileWith(heuristic, ir);
        compileWith(exact, ir);

        const auto &loops = exact.context().loopStats;
        ASSERT_FALSE(loops.empty()) << k.name;
        for (const ExactLoopStat &l : loops) {
            EXPECT_TRUE(l.proven) << k.name << "/" << l.block;
            EXPECT_FALSE(l.timedOut) << k.name << "/" << l.block;
            EXPECT_EQ(l.achievedIi, l.minimalIi)
                << k.name << "/" << l.block;
            EXPECT_LE(l.achievedIi, l.heuristicIi)
                << k.name << "/" << l.block;
            EXPECT_GE(l.achievedIi, l.mii)
                << k.name << "/" << l.block;
            EXPECT_EQ(l.optimalityGap(), 0u)
                << k.name << "/" << l.block;
        }
    }
}

TEST(ExactSched, BeatsHeuristicOnCraftedBlock)
{
    const IrProgram ir = craftedWinIr();
    ExactLoopStat st;
    auto s = exactScheduleBlockChecked(ir.blocks[0], 1, 1, {}, &st);
    ASSERT_TRUE(s.hasValue());
    EXPECT_EQ(st.heuristicIi, 5u);
    EXPECT_EQ(st.mii, 4u);
    EXPECT_EQ(st.achievedIi, 4u);
    EXPECT_EQ(st.minimalIi, 4u);
    EXPECT_EQ(st.tier, "exact");
    EXPECT_TRUE(st.proven);
    EXPECT_FALSE(st.timedOut);
    EXPECT_EQ(st.optimalityGap(), 0u);
    EXPECT_EQ(st.heuristicGap(), 1u);
    EXPECT_EQ(s.value().numRows(), 4u);

    // The strict win survives end-to-end compilation + verification.
    Compiler heuristic(tierOptions(1, ScheduleTier::Heuristic));
    Compiler exact(tierOptions(1, ScheduleTier::Exact));
    const Program ph = compileWith(heuristic, ir);
    const Program pe = compileWith(exact, ir);
    EXPECT_LT(pe.size(), ph.size());
}

TEST(ExactSched, NodeCapTimesOutAndFallsBackToHeuristic)
{
    const IrProgram ir = craftedWinIr();
    ExactOptions opts;
    opts.budgetMs = 0; // wall clock off: the cap alone must trip
    opts.maxNodes = 1;
    ExactLoopStat st;
    auto s =
        exactScheduleBlockChecked(ir.blocks[0], 1, 1, opts, &st);
    ASSERT_TRUE(s.hasValue());
    EXPECT_TRUE(st.timedOut);
    EXPECT_FALSE(st.proven);
    EXPECT_EQ(st.tier, "heuristic");
    EXPECT_EQ(st.achievedIi, st.heuristicIi);
    EXPECT_GE(st.minimalIi, st.mii);

    // The fallback is the heuristic schedule itself, cell for cell.
    auto h = scheduleBlockChecked(ir.blocks[0], 1, 1);
    ASSERT_TRUE(h.hasValue());
    EXPECT_EQ(s.value().cycles, h.value().cycles);
}

TEST(ExactSched, MatchesHeuristicByteForByteWhenHeuristicIsOptimal)
{
    // On the paper kernels the heuristic already achieves MII; the
    // exact tier must then emit the identical program, keeping the
    // pinned goldens valid for both tiers.
    for (const Kernel &k : kKernels) {
        const IrProgram ir = loadKernel(k.name);
        Compiler heuristic(
            tierOptions(k.width, ScheduleTier::Heuristic));
        Compiler exact(tierOptions(k.width, ScheduleTier::Exact));
        const Program ph = compileWith(heuristic, ir);
        const Program pe = compileWith(exact, ir);
        EXPECT_EQ(writeAssembly(ph), writeAssembly(pe)) << k.name;
    }
}

TEST(ExactSched, DifferentialRandomLoopCorpus)
{
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        const workloads::RandLoopOptions lo = corpusLoop(seed);
        const IrProgram ir = workloads::randomLoopIr(lo);
        const FuId width = static_cast<FuId>(1 + seed % 4);
        const unsigned rawLatency = seed % 3 == 0 ? 3 : 1;

        Compiler heuristic(tierOptions(
            width, ScheduleTier::Heuristic, rawLatency));
        Compiler exact(
            tierOptions(width, ScheduleTier::Exact, rawLatency));
        compileWith(heuristic, ir);
        const Program pe = compileWith(exact, ir);

        for (const ExactLoopStat &l : exact.context().loopStats) {
            EXPECT_LE(l.achievedIi, l.heuristicIi)
                << "seed " << seed << "/" << l.block;
            EXPECT_GE(l.achievedIi, l.mii)
                << "seed " << seed << "/" << l.block;
            if (l.proven) {
                EXPECT_EQ(l.achievedIi, l.minimalIi)
                    << "seed " << seed << "/" << l.block;
            }
        }

        // Deterministic search: recompiling is bit-reproducible.
        Compiler again(
            tierOptions(width, ScheduleTier::Exact, rawLatency));
        const Program pe2 = compileWith(again, ir);
        EXPECT_EQ(writeAssembly(pe), writeAssembly(pe2))
            << "seed " << seed;
    }
}

/** Run @p prog to completion and return its final arch-state hash. */
std::uint64_t
finalHash(const Program &prog, Mode mode, Backend backend)
{
    Machine m(prog,
              MachineConfig{}.withMode(mode).withBackend(backend));
    const RunResult r = m.run(1'000'000);
    EXPECT_EQ(r.reason, StopReason::Halted) << r.faultMessage;
    return m.archStateHash();
}

TEST(ExactParity, ArchStateHashMatchesHeuristicOnBothBackends)
{
    struct Case
    {
        std::string label;
        IrProgram ir;
        FuId width;
    };
    std::vector<Case> cases;
    for (const Kernel &k : kKernels)
        cases.push_back({k.name, loadKernel(k.name), k.width});
    for (std::uint64_t seed = 1; seed <= 50; ++seed)
        cases.push_back({"randloop/" + std::to_string(seed),
                         workloads::randomLoopIr(corpusLoop(seed)),
                         static_cast<FuId>(1 + seed % 4)});

    for (const Case &c : cases) {
        Compiler heuristic(
            tierOptions(c.width, ScheduleTier::Heuristic));
        Compiler exact(tierOptions(c.width, ScheduleTier::Exact));
        const Program ph = compileWith(heuristic, c.ir);
        const Program pe = compileWith(exact, c.ir);
        for (Mode mode : {Mode::Ximd, Mode::Vliw}) {
            for (Backend backend :
                 {Backend::Interp, Backend::Threaded}) {
                EXPECT_EQ(finalHash(ph, mode, backend),
                          finalHash(pe, mode, backend))
                    << c.label << "/" << modeName(mode);
            }
        }
    }
}

TEST(ExactSched, StatsJsonCarriesGapFieldsAtSchema2)
{
    const IrProgram ir = loadKernel("reduce");
    Compiler exact(tierOptions(4, ScheduleTier::Exact));
    compileWith(exact, ir);
    const std::string json = exact.statsJson();
    EXPECT_NE(json.find("\"schema\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"loops\""), std::string::npos);
    EXPECT_NE(json.find("\"achieved_ii\""), std::string::npos);
    EXPECT_NE(json.find("\"minimal_ii\""), std::string::npos);
    EXPECT_NE(json.find("\"optimality_gap\""), std::string::npos);
    EXPECT_NE(json.find("\"exact_timeouts\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"pass\": \"exact-schedule\""),
              std::string::npos);
}

TEST(ExactSched, FarmSweepAxisPairsTiersPerSeed)
{
    // The suite's randloop / randloop-exact pair is the
    // exact-vs-heuristic sweep axis: same (n, seed) must mean the
    // same computation, so paired jobs agree on the final
    // architectural hash and both pass their interpretIr reference
    // check.
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
        farm::WorkloadRequest rq;
        rq.mode = Mode::Vliw;
        rq.n = 17;
        rq.seed = seed;
        rq.workload = "randloop";
        auto a = farm::makeWorkloadSpec(rq, nullptr);
        rq.workload = "randloop-exact";
        auto b = farm::makeWorkloadSpec(rq, nullptr);
        ASSERT_TRUE(a.hasValue() && b.hasValue()) << seed;
        const farm::JobResult ra = farm::Farm::runOne(a.value());
        const farm::JobResult rb = farm::Farm::runOne(b.value());
        EXPECT_TRUE(ra.ok())
            << seed << ": "
            << (ra.error ? ra.error->message : "");
        EXPECT_TRUE(rb.ok())
            << seed << ": "
            << (rb.error ? rb.error->message : "");
        EXPECT_EQ(ra.archHash, rb.archHash) << seed;
    }
}

} // namespace
