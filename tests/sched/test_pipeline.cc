/** PassManager / Compiler facade tests (sched/pipeline.hh). */

#include <gtest/gtest.h>

#include "asm/asm_writer.hh"
#include "sched/compose.hh"
#include "sched/ir_print.hh"
#include "sched/pipeline.hh"
#include "workloads/ir_threads.hh"


using namespace ximd;
using namespace ximd::sched;

namespace {

IrProgram
reduceIr()
{
    Rng rng(101);
    return workloads::reductionThread(0, 8, 3, rng);
}

std::vector<std::string>
passSequence(const Compiler &cc)
{
    std::vector<std::string> names;
    for (const PassStat &s : cc.stats())
        names.push_back(s.pass);
    return names;
}

TEST(Pipeline, CompileMatchesLegacyEntryPoint)
{
    PipelineOptions po;
    po.width = 4;
    Compiler cc(po);
    auto r = cc.compile(reduceIr());
    ASSERT_TRUE(r.hasValue()) << r.error().format();

    CodegenOptions co;
    co.width = 4;
    EXPECT_EQ(writeAssembly(r.value().program),
              writeAssembly(valueOrFatal(generateCodeChecked(reduceIr(), co)).program));
}

TEST(Pipeline, StatsRecordEveryPassInOrder)
{
    Compiler cc;
    ASSERT_TRUE(cc.compile(reduceIr()).hasValue());
    EXPECT_EQ(passSequence(cc),
              (std::vector<std::string>{"validate-ir", "regalloc",
                                        "build-ddg", "list-schedule",
                                        "codegen"}));
    for (const PassStat &s : cc.stats())
        EXPECT_GE(s.wallMs, 0.0) << s.pass;
}

TEST(Pipeline, CountersReflectTheCompilation)
{
    Compiler cc;
    ASSERT_TRUE(cc.compile(reduceIr()).hasValue());
    const auto &stats = cc.stats();
    EXPECT_EQ(stats[0].counters.at("blocks"), 2);  // loop + end
    EXPECT_EQ(stats[0].counters.at("ops"), 6);
    EXPECT_EQ(stats[1].counters.at("regs_used"), 4);
    EXPECT_EQ(stats[1].counters.at("spilled_vregs"), 0);
    EXPECT_GT(stats[2].counters.at("edges"), 0);
    EXPECT_EQ(stats[3].counters.at("ops_scheduled"), 6);
    EXPECT_GT(stats[4].counters.at("rows"), 0);
    EXPECT_EQ(stats[4].counters.at("raw_latency"), 1);
}

TEST(Pipeline, OptionalPassesAppearWhenEnabled)
{
    PipelineOptions po;
    po.mergeBlocks = true;
    po.verify = true;
    Compiler cc(po);
    ASSERT_TRUE(cc.compile(reduceIr()).hasValue());
    EXPECT_EQ(passSequence(cc),
              (std::vector<std::string>{"validate-ir", "merge-blocks",
                                        "regalloc", "build-ddg",
                                        "list-schedule", "codegen",
                                        "verify"}));
}

TEST(Pipeline, DumpHookFiresAfterEveryPass)
{
    Compiler cc;
    std::vector<std::string> seen;
    cc.setAfterPass([&](const std::string &pass,
                        const CompileContext &cx) {
        seen.push_back(pass);
        // The context is live at hook time: by codegen the program
        // exists, before it only the IR does.
        if (pass == "codegen")
            EXPECT_TRUE(cx.hasProgram);
        if (pass == "validate-ir")
            EXPECT_FALSE(cx.hasProgram);
    });
    ASSERT_TRUE(cc.compile(reduceIr()).hasValue());
    EXPECT_EQ(seen,
              (std::vector<std::string>{"validate-ir", "regalloc",
                                        "build-ddg", "list-schedule",
                                        "codegen"}));
}

TEST(Pipeline, VerifyBetweenAcceptsAHealthyCompile)
{
    PipelineOptions po;
    po.verifyBetween = true;
    Compiler cc(po);
    auto r = cc.compile(reduceIr());
    EXPECT_TRUE(r.hasValue()) << r.error().format();
}

TEST(Pipeline, BadIrFailsStructurallyNotByThrow)
{
    IrProgram ir = reduceIr();
    ir.blocks[0].term.taken = "nowhere";
    Compiler cc;
    CompileResult<CodegenResult> r = CodegenResult{};
    EXPECT_NO_THROW(r = cc.compile(std::move(ir)));
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().pass, "validate-ir");
    EXPECT_EQ(r.error().block, "loop");
    EXPECT_NE(r.error().message.find("nowhere"), std::string::npos);
    // Only the failing pass ran; its stat entry is still recorded.
    EXPECT_EQ(passSequence(cc),
              (std::vector<std::string>{"validate-ir"}));
}

TEST(Pipeline, StatsJsonNamesPassesAndCounters)
{
    Compiler cc;
    ASSERT_TRUE(cc.compile(reduceIr()).hasValue());
    const std::string json = cc.statsJson();
    EXPECT_NE(json.find("\"passes\""), std::string::npos);
    EXPECT_NE(json.find("\"pass\": \"codegen\""), std::string::npos);
    EXPECT_NE(json.find("\"ops_scheduled\": 6"), std::string::npos);
    EXPECT_NE(json.find("\"wall_ms\""), std::string::npos);
}

TEST(Pipeline, LoopPathMatchesLegacyModulo)
{
    PipelineOptions po;
    po.width = 8;
    Compiler cc(po);
    auto r = cc.compileLoop(workloads::loop12Pipeline(20, 64, 128));
    ASSERT_TRUE(r.hasValue()) << r.error().format();
    EXPECT_EQ(
        writeAssembly(r.value()),
        writeAssembly(
            valueOrFatal(pipelineLoopChecked(workloads::loop12Pipeline(20, 64, 128), 8))));
    ASSERT_EQ(cc.stats().size(), 1u);
    EXPECT_EQ(cc.stats()[0].pass, "modulo");
    EXPECT_EQ(cc.stats()[0].counters.at("ii"), 1);
    EXPECT_GT(cc.stats()[0].counters.at("kernel_rows"), 0);
}

TEST(Pipeline, ComposePathMatchesLegacyCompose)
{
    const auto threads = workloads::reductionThreadSet(6, 42);
    PipelineOptions po;
    po.width = 8;
    Compiler cc(po);
    auto r = cc.compose(threads, "balanced-groups");
    ASSERT_TRUE(r.hasValue()) << r.error().format();

    auto tiles = generateTiles(threads, 8);
    auto packing = packBalancedGroups(tiles, 8);
    EXPECT_EQ(writeAssembly(r.value().program),
              writeAssembly(
                  valueOrFatal(composeThreadsChecked(threads, packing, 8)).program));
    EXPECT_EQ(passSequence(cc),
              (std::vector<std::string>{"tile", "pack", "compose"}));
    EXPECT_GT(cc.stats()[1].counters.at("utilization_pct"), 0.0);
}

TEST(Pipeline, UnknownPackStrategyIsAStructuredError)
{
    Compiler cc;
    auto r = cc.compose(workloads::reductionThreadSet(2, 42),
                        "best-effort");
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().pass, "pack");
    EXPECT_NE(r.error().message.find("unknown pack strategy"),
              std::string::npos);
    // The failing pass still left a stat entry (tile, then pack).
    EXPECT_EQ(passSequence(cc),
              (std::vector<std::string>{"tile", "pack"}));
}

TEST(Pipeline, PackStrategyLookupCoversAllFive)
{
    for (const char *name :
         {"stacked", "first-fit", "skyline", "balanced-groups",
          "exhaustive"})
        EXPECT_NE(packStrategyByName(name), nullptr) << name;
    EXPECT_EQ(packStrategyByName("quantum"), nullptr);
}

} // namespace
