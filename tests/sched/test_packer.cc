#include "sched/packer.hh"

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "support/random.hh"


namespace ximd::sched {
namespace {

/** Hand-built tile set (no compilation needed for packer tests). */
TileSet
makeSet(int id, std::vector<std::pair<FuId, unsigned>> shapes,
        FuId maxWidth)
{
    TileSet s;
    s.threadId = id;
    unsigned best = ~0u;
    std::vector<unsigned> heights(maxWidth, 0);
    // Fill heightAtWidth by treating `shapes` as exact compiles and
    // interpolating monotonically.
    for (FuId w = 1; w <= maxWidth; ++w) {
        unsigned h = 0;
        for (const auto &[sw, sh] : shapes)
            if (sw <= w)
                h = h == 0 ? sh : std::min(h, sh);
        if (h == 0)
            h = shapes.front().second; // narrower than any shape
        heights[w - 1] = h;
    }
    s.heightAtWidth = heights;
    for (FuId w = 1; w <= maxWidth; ++w) {
        const unsigned h = heights[w - 1];
        if (h < best) {
            best = h;
            Tile t;
            t.threadId = id;
            t.width = w;
            t.height = h;
            s.impls.push_back(t);
        }
    }
    return s;
}

std::vector<TileSet>
sampleSets(FuId maxWidth = 8)
{
    // Heights roughly inversely proportional to width.
    return {
        makeSet(0, {{1, 24}, {2, 12}, {4, 7}, {8, 5}}, maxWidth),
        makeSet(1, {{1, 16}, {2, 9}, {4, 5}, {8, 4}}, maxWidth),
        makeSet(2, {{1, 10}, {2, 6}, {4, 4}, {8, 3}}, maxWidth),
        makeSet(3, {{1, 8}, {2, 5}, {4, 3}, {8, 3}}, maxWidth),
    };
}

TEST(Packer, StackedBaselineHeightIsSum)
{
    auto sets = sampleSets();
    PackResult r = packStacked(sets, 8);
    valueOrFatal(validatePackingChecked(r, sets, 8));
    EXPECT_EQ(r.totalHeight, 5u + 4u + 3u + 3u);
    for (const Placement &p : r.placements)
        EXPECT_EQ(p.width, 8u);
}

TEST(Packer, FirstFitValidAndBeatsNothing)
{
    auto sets = sampleSets();
    PackResult r = packFirstFit(sets, 8);
    EXPECT_EQ(valueOrFatal(validatePackingChecked(r, sets, 8)), r.totalHeight);
}

TEST(Packer, SkylineValidAndCompetitive)
{
    auto sets = sampleSets();
    PackResult sky = packSkyline(sets, 8);
    valueOrFatal(validatePackingChecked(sky, sets, 8));
    PackResult stacked = packStacked(sets, 8);
    // Packing narrower tiles side by side must not lose to full-width
    // stacking on this tile family.
    EXPECT_LE(sky.totalHeight, stacked.totalHeight);
    EXPECT_GT(sky.utilization(8), 0.5);
}

TEST(Packer, ExhaustiveIsOptimalAmongStrategies)
{
    auto sets = sampleSets();
    PackResult ex = packExhaustive(sets, 8);
    valueOrFatal(validatePackingChecked(ex, sets, 8));
    EXPECT_LE(ex.totalHeight, packSkyline(sets, 8).totalHeight);
    EXPECT_LE(ex.totalHeight, packFirstFit(sets, 8).totalHeight);
    EXPECT_LE(ex.totalHeight, packStacked(sets, 8).totalHeight);
    EXPECT_LE(ex.totalHeight,
              packBalancedGroups(sets, 8).totalHeight);
}

TEST(Packer, BalancedGroupsIsLaminar)
{
    auto sets = sampleSets();
    PackResult r = packBalancedGroups(sets, 8);
    valueOrFatal(validatePackingChecked(r, sets, 8));
    for (std::size_t i = 0; i < r.placements.size(); ++i) {
        for (std::size_t j = i + 1; j < r.placements.size(); ++j) {
            const Placement &a = r.placements[i];
            const Placement &b = r.placements[j];
            const bool equal =
                a.col == b.col && a.width == b.width;
            const bool disjoint = a.col + a.width <= b.col ||
                                  b.col + b.width <= a.col;
            EXPECT_TRUE(equal || disjoint);
        }
    }
}

TEST(Packer, BalancedGroupsBeatsStackedOnManySmallThreads)
{
    std::vector<TileSet> sets;
    for (int t = 0; t < 8; ++t)
        sets.push_back(makeSet(t, {{1, 12}, {2, 7}, {4, 5}, {8, 4}},
                               8));
    PackResult grouped = packBalancedGroups(sets, 8);
    PackResult stacked = packStacked(sets, 8);
    valueOrFatal(validatePackingChecked(grouped, sets, 8));
    EXPECT_LT(grouped.totalHeight, stacked.totalHeight);
}

TEST(Packer, SingleThreadAllStrategiesAgree)
{
    std::vector<TileSet> sets = {
        makeSet(0, {{1, 9}, {2, 5}, {4, 3}}, 4)};
    for (auto pack : {packStacked, packFirstFit, packSkyline,
                      packExhaustive, packBalancedGroups}) {
        PackResult r = pack(sets, 4);
        valueOrFatal(validatePackingChecked(r, sets, 4));
        EXPECT_EQ(r.placements.size(), 1u);
        EXPECT_EQ(r.placements[0].row, 0u);
    }
}

TEST(Packer, ValidateCatchesOverlap)
{
    auto sets = sampleSets();
    PackResult r = packSkyline(sets, 8);
    // Corrupt: move a placement onto another.
    r.placements[1].col = r.placements[0].col;
    r.placements[1].row = r.placements[0].row;
    EXPECT_THROW(valueOrFatal(validatePackingChecked(r, sets, 8)), FatalError);
}

TEST(Packer, ValidateCatchesWrongHeight)
{
    auto sets = sampleSets();
    PackResult r = packStacked(sets, 8);
    r.totalHeight += 1;
    EXPECT_THROW(valueOrFatal(validatePackingChecked(r, sets, 8)), FatalError);
}

TEST(Packer, ValidateCatchesUnknownShape)
{
    auto sets = sampleSets();
    PackResult r = packStacked(sets, 8);
    r.placements[0].height += 1;
    EXPECT_THROW(valueOrFatal(validatePackingChecked(r, sets, 8)), FatalError);
}

TEST(Packer, RandomFamiliesAllStrategiesValid)
{
    Rng rng(2024);
    for (int trial = 0; trial < 10; ++trial) {
        const FuId width = rng.chance(0.5) ? 8 : 4;
        const int threads = static_cast<int>(rng.range(2, 5));
        std::vector<TileSet> sets;
        for (int t = 0; t < threads; ++t) {
            const unsigned h1 =
                static_cast<unsigned>(rng.range(6, 40));
            sets.push_back(makeSet(
                t,
                {{1, h1},
                 {2, (h1 + 1) / 2 + 1},
                 {4, (h1 + 3) / 4 + 2},
                 {8, (h1 + 7) / 8 + 3}},
                width));
        }
        for (auto pack : {packStacked, packFirstFit, packSkyline,
                          packExhaustive, packBalancedGroups}) {
            PackResult r = pack(sets, width);
            EXPECT_EQ(valueOrFatal(validatePackingChecked(r, sets, width)), r.totalHeight);
        }
    }
}

} // namespace
} // namespace ximd::sched
