/**
 * @file
 * Register-allocation tests (sched/regalloc.hh).
 *
 * Three layers:
 *
 *  - unit: liveness intervals and the pressure peak, the direct
 *    strategy's identity contract, linear-scan collapse, spill
 *    rewriting (counters, init migration, determinism) and every
 *    structured failure mode;
 *  - semantics: an allocated program must still mean the same thing,
 *    checked against sched::interpretIr on the pre-allocation IR;
 *  - machine parity: spilled and unspilled compiles of the same
 *    source must leave identical data memory, and one spilled
 *    program must hash identically (archStateHash) on the interp
 *    and threaded backends — over the workload grid and a 50-seed
 *    random-loop corpus squeezed into artificially small windows.
 */

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "sched/ir_print.hh"
#include "sched/pipeline.hh"
#include "sched/regalloc.hh"
#include "support/random.hh"
#include "workloads/ir_threads.hh"
#include "workloads/randprog.hh"

namespace {

using namespace ximd;
using namespace ximd::sched;

/** n values all live at once: computed up front, summed at the end.
 *  Peak pressure == n, so window capacities below n must spill. */
IrProgram
wideLive(int n)
{
    IrBuilder b;
    std::vector<VregId> vs;
    for (int i = 0; i < n; ++i)
        vs.push_back(b.newVreg());
    b.startBlock("entry");
    for (int i = 0; i < n; ++i)
        b.emitTo(vs[static_cast<std::size_t>(i)], Opcode::Iadd,
                 IrValue::immInt(i + 1), IrValue::immInt(i + 1));
    IrValue sum = IrValue::reg(vs[0]);
    for (int i = 1; i < n; ++i)
        sum = b.emit(Opcode::Iadd, sum,
                     IrValue::reg(vs[static_cast<std::size_t>(i)]));
    b.emitStore(sum, IrValue::immInt(100));
    b.halt();
    return b.finish();
}

/** Serial temps: each value dies before the next is born, so linear
 *  scan fits any number of them into a handful of registers. */
IrProgram
serialTemps(int n)
{
    IrBuilder b;
    b.startBlock("entry");
    IrValue acc = IrValue::immInt(0);
    for (int i = 0; i < n; ++i)
        acc = b.emit(Opcode::Iadd, acc, IrValue::immInt(i + 1));
    b.emitStore(acc, IrValue::immInt(100));
    b.halt();
    return b.finish();
}

/** The sum loop every IR test uses: two vregs, both loop-carried. */
IrProgram
sumLoop(SWord n)
{
    IrBuilder b;
    const VregId i = b.newVreg();
    const VregId sum = b.newVreg();
    b.setInit(i, 0);
    b.setInit(sum, 0);
    b.startBlock("loop");
    b.emitTo(i, Opcode::Iadd, IrValue::reg(i), IrValue::immInt(1));
    b.emitTo(sum, Opcode::Iadd, IrValue::reg(sum), IrValue::reg(i));
    const int cmp = b.emitCompare(Opcode::Eq, IrValue::reg(i),
                                  IrValue::immInt(n));
    b.branch(cmp, "end", "loop");
    b.startBlock("end");
    b.emitStore(IrValue::reg(sum), IrValue::immInt(100));
    b.halt();
    return b.finish();
}

// ---------------------------------------------------------------
// Liveness.
// ---------------------------------------------------------------

TEST(Liveness, StraightLineIntervals)
{
    // v0 born at op 0, last used at op 2; v1 born at 1, used at 2.
    IrBuilder b;
    b.startBlock("entry");
    const IrValue a = b.emit(Opcode::Iadd, IrValue::immInt(1),
                             IrValue::immInt(2));
    const IrValue c = b.emit(Opcode::Imult, a, IrValue::immInt(3));
    b.emitStore(b.emit(Opcode::Iadd, a, c), IrValue::immInt(9));
    b.halt();
    IrProgram p = b.finish();

    const Liveness lv = computeLiveness(p);
    ASSERT_EQ(lv.intervals.size(), 3u);
    EXPECT_EQ(lv.intervals[0].start, 0);
    EXPECT_EQ(lv.intervals[0].end, 2);
    EXPECT_EQ(lv.intervals[1].start, 1);
    EXPECT_EQ(lv.intervals[1].end, 2);
    EXPECT_TRUE(lv.intervals[2].live());
    EXPECT_EQ(lv.peak.block, "entry");
    EXPECT_GE(lv.peak.pressure, 2u);
}

TEST(Liveness, LoopCarriedVregsCoverTheLoop)
{
    IrProgram p = sumLoop(5);
    const Liveness lv = computeLiveness(p);
    // Both vregs are live around the backedge: their intervals span
    // the whole loop block.
    EXPECT_EQ(lv.intervals[0].start, 0);
    EXPECT_EQ(lv.intervals[1].start, 0);
    EXPECT_GE(lv.intervals[0].end, 2);
    EXPECT_EQ(lv.peak.pressure, 2u);
}

TEST(Liveness, PeakPointsAtTheWidestOp)
{
    IrProgram p = wideLive(5);
    const Liveness lv = computeLiveness(p);
    // The five preloaded values plus the first sum temp.
    EXPECT_EQ(lv.peak.pressure, 6u);
    EXPECT_EQ(lv.peak.block, "entry");
    EXPECT_GE(lv.peak.op, 0);
}

TEST(Liveness, UnusedVregIsDead)
{
    IrBuilder b;
    b.newVreg(); // v0: never touched.
    b.startBlock("entry");
    b.emitStore(IrValue::immInt(1), IrValue::immInt(0));
    b.halt();
    IrProgram p = b.finish();
    const Liveness lv = computeLiveness(p);
    EXPECT_FALSE(lv.intervals[0].live());
}

// ---------------------------------------------------------------
// Direct strategy.
// ---------------------------------------------------------------

TEST(RegallocDirect, IdentityMapLeavesProgramUntouched)
{
    IrProgram p = sumLoop(5);
    const std::string before = printIr(p);
    auto r = allocateRegisters(p, {.window = {10, 8}});
    ASSERT_TRUE(r.hasValue());
    EXPECT_EQ(printIr(p), before);
    const Allocation &a = r.value();
    EXPECT_EQ(a.regsUsed, 2u);
    EXPECT_EQ(a.spilledVregs, 0u);
    ASSERT_EQ(a.homes.size(), 2u);
    EXPECT_EQ(a.homes[0].kind, VregHome::Kind::Reg);
    EXPECT_EQ(a.homes[0].reg, 10);
    EXPECT_EQ(a.homes[1].reg, 11);
}

TEST(RegallocDirect, ExhaustionReportsPressurePoint)
{
    IrProgram p = wideLive(6);
    auto r = allocateRegisters(p, {.window = {0, 4}});
    ASSERT_FALSE(r.hasValue());
    const CompileError &e = r.error();
    EXPECT_EQ(e.pass, "regalloc");
    EXPECT_EQ(e.block, "entry");
    EXPECT_NE(e.message.find("peak live pressure"), std::string::npos)
        << e.message;
    EXPECT_NE(e.message.find("--spill"), std::string::npos);
}

TEST(RegallocDirect, WindowClipsAtRegisterFile)
{
    RegWindow w{static_cast<RegId>(kNumRegisters - 2), 100};
    EXPECT_EQ(w.capacity(), 2u);
    IrProgram p = sumLoop(3);
    EXPECT_TRUE(allocateRegisters(p, {.window = w}).hasValue());
    IrProgram q = wideLive(3);
    EXPECT_FALSE(allocateRegisters(q, {.window = w}).hasValue());
}

TEST(Regalloc, CheckWindowContract)
{
    EXPECT_TRUE(checkWindow("modulo", {0, 24}, 24).hasValue());
    auto r = checkWindow("modulo", {0, 24}, 25);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().pass, "modulo");
}

// ---------------------------------------------------------------
// Linear scan + spilling.
// ---------------------------------------------------------------

TEST(RegallocSpill, SerialTempsFitWithoutSpilling)
{
    IrProgram p = serialTemps(12);
    std::vector<Word> memBefore(256, 0);
    interpretIr(p, memBefore);

    auto r = allocateRegisters(
        p, {.window = {0, 4}, .spill = true, .spillBase = 128});
    ASSERT_TRUE(r.hasValue());
    EXPECT_EQ(r.value().spilledVregs, 0u);
    EXPECT_LE(r.value().regsUsed, 4u);
    // Collapse postcondition: vreg ids are window-relative indices.
    EXPECT_LE(p.numVregs, 4);

    std::vector<Word> memAfter(256, 0);
    interpretIr(p, memAfter);
    EXPECT_EQ(memAfter[100], memBefore[100]);
    EXPECT_EQ(memAfter[100], 78u); // 1 + ... + 12
}

TEST(RegallocSpill, HighPressureSpillsAndPreservesSemantics)
{
    IrProgram p = wideLive(8);
    std::vector<Word> memBefore(1024, 0);
    interpretIr(p, memBefore);

    auto r = allocateRegisters(
        p, {.window = {0, 4}, .spill = true, .spillBase = 512});
    ASSERT_TRUE(r.hasValue());
    const Allocation &a = r.value();
    EXPECT_TRUE(a.spilled());
    EXPECT_GT(a.spillStores, 0u);
    EXPECT_GT(a.spillReloads, 0u);
    EXPECT_EQ(a.slotsUsed, a.spilledVregs);
    EXPECT_LE(a.maxPressure, 4u);
    EXPECT_LE(p.numVregs, 4);
    // Spilled homes carry their slot addresses.
    unsigned slots = 0;
    for (const VregHome &h : a.homes)
        if (h.kind == VregHome::Kind::Slot) {
            ++slots;
            EXPECT_GE(h.addr, 512u);
            EXPECT_LT(h.addr, 512u + a.slotsUsed);
        }
    EXPECT_EQ(slots, a.spilledVregs);

    std::vector<Word> memAfter(1024, 0);
    interpretIr(p, memAfter);
    EXPECT_EQ(memAfter[100], memBefore[100]);
}

TEST(RegallocSpill, SpilledVregInitBecomesMemInit)
{
    // Make the *initialized* vregs the long-lived ones so the
    // furthest-end heuristic picks one of them.
    IrBuilder b;
    std::vector<VregId> vs;
    for (int i = 0; i < 6; ++i) {
        vs.push_back(b.newVreg());
        b.setInit(vs.back(), 10 * (i + 1));
    }
    b.startBlock("entry");
    IrValue sum = IrValue::reg(vs[0]);
    for (int i = 1; i < 6; ++i)
        sum = b.emit(Opcode::Iadd, sum,
                     IrValue::reg(vs[static_cast<std::size_t>(i)]));
    b.emitStore(sum, IrValue::immInt(100));
    b.halt();
    IrProgram p = b.finish();

    auto r = allocateRegisters(
        p, {.window = {0, 4}, .spill = true, .spillBase = 512});
    ASSERT_TRUE(r.hasValue());
    ASSERT_TRUE(r.value().spilled());

    // Every spilled vreg's init must have migrated to its slot.
    std::map<Addr, Word> memInit(p.memInit.begin(), p.memInit.end());
    for (std::size_t v = 0; v < r.value().homes.size(); ++v) {
        const VregHome &h = r.value().homes[v];
        if (h.kind != VregHome::Kind::Slot)
            continue;
        ASSERT_TRUE(memInit.count(h.addr)) << "slot " << h.addr;
        EXPECT_EQ(memInit[h.addr], 10u * (v + 1));
    }

    std::vector<Word> mem(1024, 0);
    interpretIr(p, mem);
    EXPECT_EQ(mem[100], 10u + 20 + 30 + 40 + 50 + 60);
}

TEST(RegallocSpill, DeadInitIsDropped)
{
    IrBuilder b;
    const VregId dead = b.newVreg();
    b.setInit(dead, 99);
    b.startBlock("entry");
    b.emitStore(IrValue::immInt(1), IrValue::immInt(0));
    b.halt();
    IrProgram p = b.finish();

    auto r = allocateRegisters(p, {.window = {0, 4}, .spill = true});
    ASSERT_TRUE(r.hasValue());
    EXPECT_EQ(r.value().deadInitsDropped, 1u);
    EXPECT_EQ(r.value().homes[0].kind, VregHome::Kind::Dead);
    EXPECT_TRUE(p.vregInit.empty());
}

TEST(RegallocSpill, AllocationIsDeterministic)
{
    IrProgram p1 = wideLive(10);
    IrProgram p2 = wideLive(10);
    const RegAllocOptions o{
        .window = {0, 5}, .spill = true, .spillBase = 512};
    auto r1 = allocateRegisters(p1, o);
    auto r2 = allocateRegisters(p2, o);
    ASSERT_TRUE(r1.hasValue());
    ASSERT_TRUE(r2.hasValue());
    EXPECT_EQ(printIr(p1), printIr(p2));
    EXPECT_EQ(r1.value().spilledVregs, r2.value().spilledVregs);
    EXPECT_EQ(r1.value().rounds, r2.value().rounds);
}

TEST(RegallocSpill, SpillRegionExhaustedIsStructured)
{
    IrProgram p = wideLive(10);
    auto r = allocateRegisters(
        p,
        {.window = {0, 4}, .spill = true, .spillBase = 512,
         .spillSlots = 1});
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().pass, "regalloc");
    EXPECT_NE(r.error().message.find("spill region exhausted"),
              std::string::npos)
        << r.error().message;
}

TEST(RegallocSpill, WindowTooSmallToStageReloads)
{
    IrProgram p = wideLive(8);
    auto r = allocateRegisters(p, {.window = {0, 2}, .spill = true});
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.error().pass, "regalloc");
    EXPECT_NE(r.error().message.find("need at least 4"),
              std::string::npos)
        << r.error().message;
}

// ---------------------------------------------------------------
// Machine parity: spilled vs unspilled, both backends.
// ---------------------------------------------------------------

Program
compileWindowed(IrProgram ir, unsigned regs, bool spill)
{
    PipelineOptions po;
    po.width = 4;
    po.verify = true;
    po.alloc.window = {0, regs};
    po.alloc.spill = spill;
    Compiler c(po);
    auto r = c.compile(std::move(ir));
    EXPECT_TRUE(r.hasValue())
        << (r.hasValue() ? "" : r.error().format());
    return r.value().program;
}

std::uint64_t
runAndHash(const Program &prog, Backend backend)
{
    Machine m(prog, MachineConfig{}.withBackend(backend));
    const RunResult r = m.run(1'000'000);
    EXPECT_EQ(r.reason, StopReason::Halted);
    return m.archStateHash();
}

/** Final data memory over [base, base+n) after a run to halt. */
std::vector<Word>
runAndPeek(const Program &prog, Backend backend, Addr base,
           unsigned n)
{
    Machine m(prog, MachineConfig{}.withBackend(backend));
    const RunResult r = m.run(1'000'000);
    EXPECT_EQ(r.reason, StopReason::Halted);
    std::vector<Word> out;
    for (unsigned i = 0; i < n; ++i)
        out.push_back(m.peekMem(base + i));
    return out;
}

TEST(RegallocParity, WorkloadGridSpilledVsUnspilled)
{
    struct Job
    {
        const char *name;
        IrProgram ir;
        Addr watchBase;
        unsigned watchWords;
    };
    Rng rng(7);
    Rng rng2(11);
    std::vector<Job> jobs;
    jobs.push_back({"reduction",
                    workloads::reductionThread(0, 8, 3, rng), 2048,
                    1});
    jobs.push_back({"mixed", workloads::mixedThread(0, rng2), 2048,
                    1});
    jobs.push_back({"wide", wideLive(10), 100, 1});
    jobs.push_back({"sum", sumLoop(10), 100, 1});

    unsigned spilledPrograms = 0;
    for (Job &job : jobs) {
        const Program full =
            compileWindowed(job.ir, kNumRegisters, false);
        const auto want = runAndPeek(full, Backend::Interp,
                                     job.watchBase, job.watchWords);
        for (unsigned regs : {4u, 5u, 6u}) {
            IrProgram copy = job.ir;
            {
                IrProgram probe = job.ir;
                auto a = allocateRegisters(
                    probe, {.window = {0, regs}, .spill = true});
                ASSERT_TRUE(a.hasValue()) << job.name;
                if (a.value().spilled())
                    ++spilledPrograms;
            }
            const Program tight =
                compileWindowed(std::move(copy), regs, true);
            // Same program, both backends: identical full arch state.
            EXPECT_EQ(runAndHash(tight, Backend::Interp),
                      runAndHash(tight, Backend::Threaded))
                << job.name << " regs=" << regs;
            // Spilled vs unspilled: identical data memory.
            EXPECT_EQ(runAndPeek(tight, Backend::Interp,
                                 job.watchBase, job.watchWords),
                      want)
                << job.name << " regs=" << regs;
            EXPECT_EQ(runAndPeek(tight, Backend::Threaded,
                                 job.watchBase, job.watchWords),
                      want)
                << job.name << " regs=" << regs;
        }
    }
    // The grid must actually exercise the spiller.
    EXPECT_GT(spilledPrograms, 0u);
}

TEST(RegallocParity, RandomLoopCorpusUnderTinyWindows)
{
    unsigned spilledPrograms = 0;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        const workloads::RandLoopOptions lo{
            .seed = seed,
            .bodyOps = static_cast<unsigned>(2 + seed % 10),
            .tripCount = static_cast<unsigned>(3 + seed % 4)};
        const IrProgram ir = workloads::randomLoopIr(lo);

        // Oracle: the IR interpreter on the virtual-register form.
        std::vector<Word> oracle(4096, 0);
        interpretIr(ir, oracle);

        // Did this seed spill at the tight window?
        {
            IrProgram probe = ir;
            auto a = allocateRegisters(
                probe, {.window = {0, 4}, .spill = true});
            ASSERT_TRUE(a.hasValue()) << "seed " << seed;
            if (a.value().spilled())
                ++spilledPrograms;
        }

        const Program full = compileWindowed(ir, kNumRegisters,
                                             false);
        const Program tight = compileWindowed(ir, 4, true);

        EXPECT_EQ(runAndHash(tight, Backend::Interp),
                  runAndHash(tight, Backend::Threaded))
            << "seed " << seed;

        // Output region: outBase..outBase+tripCount (the loop's
        // stores plus the final accumulator store).
        const unsigned watch = lo.tripCount + 1;
        const auto fullMem = runAndPeek(full, Backend::Interp,
                                        lo.outBase, watch);
        const auto tightMem = runAndPeek(tight, Backend::Interp,
                                         lo.outBase, watch);
        EXPECT_EQ(tightMem, fullMem) << "seed " << seed;
        EXPECT_EQ(runAndPeek(tight, Backend::Threaded, lo.outBase,
                             watch),
                  fullMem)
            << "seed " << seed;
        for (unsigned i = 0; i < watch; ++i)
            EXPECT_EQ(tightMem[i], oracle[lo.outBase + i])
                << "seed " << seed << " word " << i;
    }
    // Tiny windows must squeeze a healthy share of the corpus.
    EXPECT_GT(spilledPrograms, 10u);
}

} // namespace
