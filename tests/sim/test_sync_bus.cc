#include "sim/sync_bus.hh"

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace ximd {
namespace {

TEST(SyncBus, BeginCycleDefaultsToDone)
{
    SyncBus ss(4);
    ss.set(0, SyncVal::Busy);
    ss.beginCycle();
    for (FuId fu = 0; fu < 4; ++fu)
        EXPECT_EQ(ss.get(fu), SyncVal::Done);
}

TEST(SyncBus, AllDoneRequiresEveryMaskedFu)
{
    SyncBus ss(4);
    ss.beginCycle();
    ss.set(2, SyncVal::Busy);
    EXPECT_FALSE(ss.allDone());
    EXPECT_TRUE(ss.allDone(0b1011)); // mask excludes FU2
    ss.set(2, SyncVal::Done);
    EXPECT_TRUE(ss.allDone());
}

TEST(SyncBus, AnyDoneNeedsJustOne)
{
    SyncBus ss(4);
    ss.beginCycle();
    for (FuId fu = 0; fu < 4; ++fu)
        ss.set(fu, SyncVal::Busy);
    EXPECT_FALSE(ss.anyDone());
    ss.set(3, SyncVal::Done);
    EXPECT_TRUE(ss.anyDone());
    EXPECT_FALSE(ss.anyDone(0b0111)); // mask excludes FU3
}

TEST(SyncBus, MaskClippedToExistingFus)
{
    SyncBus ss(4);
    ss.beginCycle();
    // Bits above FU3 are ignored, not treated as missing-DONE.
    EXPECT_TRUE(ss.allDone(~0u));
}

TEST(SyncBus, EmptyEffectiveMaskPanics)
{
    SyncBus ss(4);
    EXPECT_THROW(ss.allDone(0xF0), PanicError); // only FUs >= 4
}

TEST(SyncBus, Formatting)
{
    SyncBus ss(4);
    ss.beginCycle();
    ss.set(1, SyncVal::Busy);
    EXPECT_EQ(ss.formatted(), "DBDD");
}

TEST(SyncBus, IndexChecks)
{
    SyncBus ss(2);
    EXPECT_THROW(ss.get(2), FatalError);
    EXPECT_THROW(ss.set(2, SyncVal::Done), FatalError);
}

} // namespace
} // namespace ximd
