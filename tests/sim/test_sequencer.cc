#include "sim/sequencer.hh"

#include <gtest/gtest.h>

namespace ximd {
namespace {

class SequencerTest : public ::testing::Test
{
  protected:
    SequencerTest() : ccs(4), ss(4) { ss.beginCycle(); }

    CondCodeFile ccs;
    SyncBus ss;
};

TEST_F(SequencerTest, UnconditionalTakesT1)
{
    const NextPc n = evaluateControlOp(ControlOp::jump(7), ccs, ss);
    EXPECT_FALSE(n.halt);
    EXPECT_TRUE(n.taken);
    EXPECT_EQ(n.pc, 7u);
}

TEST_F(SequencerTest, HaltStopsFu)
{
    const NextPc n = evaluateControlOp(ControlOp::halt(), ccs, ss);
    EXPECT_TRUE(n.halt);
}

TEST_F(SequencerTest, CcTrueSelectsTargets)
{
    ccs.poke(2, true);
    NextPc n = evaluateControlOp(ControlOp::onCc(2, 8, 2), ccs, ss);
    EXPECT_EQ(n.pc, 8u);
    EXPECT_TRUE(n.taken);

    ccs.poke(2, false);
    n = evaluateControlOp(ControlOp::onCc(2, 8, 2), ccs, ss);
    EXPECT_EQ(n.pc, 2u);
    EXPECT_FALSE(n.taken);
}

TEST_F(SequencerTest, AnyFuMayTestAnyCc)
{
    // The condition-code selection hardware sees every CC register.
    ccs.poke(3, true);
    EXPECT_EQ(evaluateControlOp(ControlOp::onCc(3, 1, 0), ccs, ss).pc,
              1u);
}

TEST_F(SequencerTest, SyncDoneCondition)
{
    ss.set(1, SyncVal::Busy);
    EXPECT_EQ(evaluateControlOp(ControlOp::onSync(1, 1, 0), ccs, ss).pc,
              0u);
    ss.set(1, SyncVal::Done);
    EXPECT_EQ(evaluateControlOp(ControlOp::onSync(1, 1, 0), ccs, ss).pc,
              1u);
}

TEST_F(SequencerTest, BarrierCondition)
{
    for (FuId fu = 0; fu < 4; ++fu)
        ss.set(fu, SyncVal::Busy);
    EXPECT_EQ(evaluateControlOp(ControlOp::onAllSync(1, 0), ccs, ss).pc,
              0u);
    for (FuId fu = 0; fu < 4; ++fu)
        ss.set(fu, SyncVal::Done);
    EXPECT_EQ(evaluateControlOp(ControlOp::onAllSync(1, 0), ccs, ss).pc,
              1u);
}

TEST_F(SequencerTest, MaskedBarrierIgnoresUnmasked)
{
    for (FuId fu = 0; fu < 4; ++fu)
        ss.set(fu, SyncVal::Busy);
    ss.set(0, SyncVal::Done);
    ss.set(2, SyncVal::Done);
    EXPECT_EQ(evaluateControlOp(ControlOp::onAllSync(1, 0, 0b0101),
                                ccs, ss)
                  .pc,
              1u);
    EXPECT_EQ(evaluateControlOp(ControlOp::onAllSync(1, 0, 0b0111),
                                ccs, ss)
                  .pc,
              0u);
}

TEST_F(SequencerTest, AnySyncCondition)
{
    for (FuId fu = 0; fu < 4; ++fu)
        ss.set(fu, SyncVal::Busy);
    EXPECT_EQ(evaluateControlOp(ControlOp::onAnySync(1, 0), ccs, ss).pc,
              0u);
    ss.set(3, SyncVal::Done);
    EXPECT_EQ(evaluateControlOp(ControlOp::onAnySync(1, 0), ccs, ss).pc,
              1u);
}

} // namespace
} // namespace ximd
