#include "sim/datapath.hh"

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <tuple>

#include "support/logging.hh"

namespace ximd {
namespace {

/** Mock context over small register/memory maps. */
class MockContext : public ExecContext
{
  public:
    std::map<RegId, Word> regs;
    std::map<Addr, Word> mem;

    // Captured effects.
    bool wroteReg = false;
    RegId regDst = 0;
    Word regVal = 0;
    bool wroteCc = false;
    bool ccVal = false;
    bool stored = false;
    Addr storeAddr = 0;
    Word storeVal = 0;

    Word
    readOperand(const Operand &op) override
    {
        if (op.isImm())
            return op.immValue();
        return regs[op.regId()];
    }

    Word loadMem(Addr addr) override { return mem[addr]; }

    void
    storeMem(Addr addr, Word value) override
    {
        stored = true;
        storeAddr = addr;
        storeVal = value;
    }

    void
    writeReg(RegId reg, Word value) override
    {
        wroteReg = true;
        regDst = reg;
        regVal = value;
    }

    void
    writeCc(bool value) override
    {
        wroteCc = true;
        ccVal = value;
    }
};

SWord
runIntBinary(Opcode op, SWord a, SWord b)
{
    MockContext ctx;
    executeDataOp(DataOp::make(op, Operand::immInt(a),
                               Operand::immInt(b), 0),
                  ctx);
    EXPECT_TRUE(ctx.wroteReg);
    EXPECT_FALSE(ctx.wroteCc);
    return wordToInt(ctx.regVal);
}

bool
runIntCompare(Opcode op, SWord a, SWord b)
{
    MockContext ctx;
    executeDataOp(DataOp::makeCompare(op, Operand::immInt(a),
                                      Operand::immInt(b)),
                  ctx);
    EXPECT_TRUE(ctx.wroteCc);
    EXPECT_FALSE(ctx.wroteReg);
    return ctx.ccVal;
}

float
runFloatBinary(Opcode op, float a, float b)
{
    MockContext ctx;
    executeDataOp(DataOp::make(op, Operand::immFloat(a),
                               Operand::immFloat(b), 0),
                  ctx);
    EXPECT_TRUE(ctx.wroteReg);
    return wordToFloat(ctx.regVal);
}

TEST(Datapath, NopHasNoEffects)
{
    MockContext ctx;
    executeDataOp(DataOp::nop(), ctx);
    EXPECT_FALSE(ctx.wroteReg);
    EXPECT_FALSE(ctx.wroteCc);
    EXPECT_FALSE(ctx.stored);
}

TEST(Datapath, IntegerArithmetic)
{
    EXPECT_EQ(runIntBinary(Opcode::Iadd, 2, 3), 5);
    EXPECT_EQ(runIntBinary(Opcode::Isub, 2, 3), -1);
    EXPECT_EQ(runIntBinary(Opcode::Imult, -4, 6), -24);
    EXPECT_EQ(runIntBinary(Opcode::Idiv, 7, 2), 3);
    EXPECT_EQ(runIntBinary(Opcode::Idiv, -7, 2), -3); // truncating
    EXPECT_EQ(runIntBinary(Opcode::Imod, 7, 3), 1);
    EXPECT_EQ(runIntBinary(Opcode::Imod, -7, 3), -1);
}

TEST(Datapath, IntegerWraparound)
{
    const SWord maxv = std::numeric_limits<SWord>::max();
    EXPECT_EQ(runIntBinary(Opcode::Iadd, maxv, 1),
              std::numeric_limits<SWord>::min());
    EXPECT_EQ(runIntBinary(Opcode::Imult, 1 << 20, 1 << 20), 0);
}

TEST(Datapath, DivideByZeroFaults)
{
    EXPECT_THROW(runIntBinary(Opcode::Idiv, 1, 0), FatalError);
    EXPECT_THROW(runIntBinary(Opcode::Imod, 1, 0), FatalError);
}

TEST(Datapath, DivideOverflowWraps)
{
    const SWord minv = std::numeric_limits<SWord>::min();
    EXPECT_EQ(runIntBinary(Opcode::Idiv, minv, -1), minv);
    EXPECT_EQ(runIntBinary(Opcode::Imod, minv, -1), 0);
}

TEST(Datapath, Logic)
{
    EXPECT_EQ(runIntBinary(Opcode::And, 0b1100, 0b1010), 0b1000);
    EXPECT_EQ(runIntBinary(Opcode::Or, 0b1100, 0b1010), 0b1110);
    EXPECT_EQ(runIntBinary(Opcode::Xor, 0b1100, 0b1010), 0b0110);
}

TEST(Datapath, Shifts)
{
    EXPECT_EQ(runIntBinary(Opcode::Shl, 1, 4), 16);
    EXPECT_EQ(runIntBinary(Opcode::Shr, -1, 28), 15); // logical
    EXPECT_EQ(runIntBinary(Opcode::Sar, -16, 2), -4); // arithmetic
    EXPECT_EQ(runIntBinary(Opcode::Shl, 1, 33), 2);   // amount masked
}

TEST(Datapath, UnaryOps)
{
    MockContext ctx;
    executeDataOp(DataOp::makeUnary(Opcode::Ineg, Operand::immInt(5), 1),
                  ctx);
    EXPECT_EQ(wordToInt(ctx.regVal), -5);

    executeDataOp(DataOp::makeUnary(Opcode::Not, Operand::imm(0), 1),
                  ctx);
    EXPECT_EQ(ctx.regVal, ~0u);

    ctx.regs[4] = 77;
    executeDataOp(DataOp::makeUnary(Opcode::Mov, Operand::reg(4), 1),
                  ctx);
    EXPECT_EQ(ctx.regVal, 77u);
}

TEST(Datapath, IntCompares)
{
    EXPECT_TRUE(runIntCompare(Opcode::Eq, 3, 3));
    EXPECT_FALSE(runIntCompare(Opcode::Eq, 3, 4));
    EXPECT_TRUE(runIntCompare(Opcode::Ne, 3, 4));
    EXPECT_TRUE(runIntCompare(Opcode::Lt, -1, 0)); // signed
    EXPECT_FALSE(runIntCompare(Opcode::Lt, 0, -1));
    EXPECT_TRUE(runIntCompare(Opcode::Le, 3, 3));
    EXPECT_TRUE(runIntCompare(Opcode::Gt, 7, 5));
    EXPECT_TRUE(runIntCompare(Opcode::Ge, 5, 5));
}

TEST(Datapath, FloatArithmetic)
{
    EXPECT_FLOAT_EQ(runFloatBinary(Opcode::Fadd, 1.5f, 2.25f), 3.75f);
    EXPECT_FLOAT_EQ(runFloatBinary(Opcode::Fsub, 1.0f, 0.5f), 0.5f);
    EXPECT_FLOAT_EQ(runFloatBinary(Opcode::Fmult, 3.0f, -2.0f), -6.0f);
    EXPECT_FLOAT_EQ(runFloatBinary(Opcode::Fdiv, 1.0f, 4.0f), 0.25f);
}

TEST(Datapath, FloatCompares)
{
    MockContext ctx;
    executeDataOp(DataOp::makeCompare(Opcode::Flt,
                                      Operand::immFloat(1.0f),
                                      Operand::immFloat(2.0f)),
                  ctx);
    EXPECT_TRUE(ctx.ccVal);
    executeDataOp(DataOp::makeCompare(Opcode::Fge,
                                      Operand::immFloat(1.0f),
                                      Operand::immFloat(2.0f)),
                  ctx);
    EXPECT_FALSE(ctx.ccVal);
}

TEST(Datapath, Conversions)
{
    MockContext ctx;
    executeDataOp(DataOp::makeUnary(Opcode::Itof, Operand::immInt(-3),
                                    0),
                  ctx);
    EXPECT_FLOAT_EQ(wordToFloat(ctx.regVal), -3.0f);
    executeDataOp(DataOp::makeUnary(Opcode::Ftoi,
                                    Operand::immFloat(2.9f), 0),
                  ctx);
    EXPECT_EQ(wordToInt(ctx.regVal), 2); // truncation
}

TEST(Datapath, LoadComputesAplusB)
{
    MockContext ctx;
    ctx.regs[1] = 3;
    ctx.mem[67] = 1234;
    executeDataOp(DataOp::makeLoad(Operand::immInt(64), Operand::reg(1),
                                   9),
                  ctx);
    EXPECT_TRUE(ctx.wroteReg);
    EXPECT_EQ(ctx.regDst, 9);
    EXPECT_EQ(ctx.regVal, 1234u);
}

TEST(Datapath, StoreRoutesValueToAddress)
{
    MockContext ctx;
    ctx.regs[2] = 55;
    executeDataOp(DataOp::makeStore(Operand::reg(2),
                                    Operand::immInt(101)),
                  ctx);
    EXPECT_TRUE(ctx.stored);
    EXPECT_EQ(ctx.storeAddr, 101u);
    EXPECT_EQ(ctx.storeVal, 55u);
    EXPECT_FALSE(ctx.wroteReg);
}

/** Property sweep: opcode semantics against a C++ oracle. */
using IntCase = std::tuple<Opcode, SWord, SWord>;

class IntBinaryProperty : public ::testing::TestWithParam<IntCase>
{
};

TEST_P(IntBinaryProperty, MatchesOracle)
{
    const auto [op, a, b] = GetParam();
    std::int64_t expect64 = 0;
    switch (op) {
      case Opcode::Iadd: expect64 = std::int64_t(a) + b; break;
      case Opcode::Isub: expect64 = std::int64_t(a) - b; break;
      case Opcode::Imult: expect64 = std::int64_t(a) * b; break;
      case Opcode::And: expect64 = wordToInt(intToWord(a) &
                                             intToWord(b)); break;
      case Opcode::Or: expect64 = wordToInt(intToWord(a) |
                                            intToWord(b)); break;
      case Opcode::Xor: expect64 = wordToInt(intToWord(a) ^
                                             intToWord(b)); break;
      default: FAIL();
    }
    const SWord expect =
        wordToInt(static_cast<Word>(static_cast<std::uint64_t>(expect64)));
    EXPECT_EQ(runIntBinary(op, a, b), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntBinaryProperty,
    ::testing::Combine(
        ::testing::Values(Opcode::Iadd, Opcode::Isub, Opcode::Imult,
                          Opcode::And, Opcode::Or, Opcode::Xor),
        ::testing::Values(SWord(0), SWord(1), SWord(-1), SWord(12345),
                          std::numeric_limits<SWord>::max(),
                          std::numeric_limits<SWord>::min()),
        ::testing::Values(SWord(0), SWord(1), SWord(-1), SWord(-987),
                          std::numeric_limits<SWord>::max())));

} // namespace
} // namespace ximd
