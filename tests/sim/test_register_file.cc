#include "sim/register_file.hh"

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace ximd {
namespace {

TEST(RegisterFile, StartsZeroed)
{
    RegisterFile rf;
    for (RegId r = 0; r < kNumRegisters; r += 17)
        EXPECT_EQ(rf.read(r), 0u);
}

TEST(RegisterFile, WritesInvisibleUntilCommit)
{
    RegisterFile rf;
    rf.queueWrite(3, 42, 0);
    EXPECT_EQ(rf.read(3), 0u);
    rf.commit();
    EXPECT_EQ(rf.read(3), 42u);
}

TEST(RegisterFile, ManyWritesOneCycle)
{
    RegisterFile rf;
    for (FuId fu = 0; fu < 8; ++fu)
        rf.queueWrite(static_cast<RegId>(fu), fu + 100, fu);
    rf.commit();
    for (FuId fu = 0; fu < 8; ++fu)
        EXPECT_EQ(rf.read(static_cast<RegId>(fu)), fu + 100);
}

TEST(RegisterFile, ConflictFaultsByDefault)
{
    RegisterFile rf;
    rf.queueWrite(5, 1, 0);
    rf.queueWrite(5, 2, 1);
    EXPECT_THROW(rf.commit(), FatalError);
    // Queue cleared after the fault; next cycle works.
    rf.queueWrite(5, 3, 0);
    EXPECT_NO_THROW(rf.commit());
    EXPECT_EQ(rf.read(5), 3u);
}

TEST(RegisterFile, ConflictLowestFuWinsPolicy)
{
    RegisterFile rf(kNumRegisters, ConflictPolicy::LowestFuWins);
    rf.queueWrite(5, 77, 3);
    rf.queueWrite(5, 88, 1);
    rf.commit();
    EXPECT_EQ(rf.read(5), 88u); // FU1 < FU3
}

TEST(RegisterFile, SquashDropsPendingWrites)
{
    RegisterFile rf;
    rf.queueWrite(2, 9, 0);
    rf.squash();
    rf.commit();
    EXPECT_EQ(rf.read(2), 0u);
}

TEST(RegisterFile, OutOfRangeIndexThrows)
{
    RegisterFile rf(16);
    EXPECT_THROW(rf.read(16), FatalError);
    EXPECT_THROW(rf.queueWrite(16, 0, 0), FatalError);
    EXPECT_THROW(rf.poke(16, 0), FatalError);
}

TEST(RegisterFile, PokeIsImmediate)
{
    RegisterFile rf;
    rf.poke(9, 1234);
    EXPECT_EQ(rf.read(9), 1234u);
}

TEST(RegisterFile, CountsReadsAndCommittedWrites)
{
    RegisterFile rf;
    rf.read(0);
    rf.read(1);
    rf.queueWrite(0, 1, 0);
    rf.commit();
    EXPECT_EQ(rf.readCount(), 2u);
    EXPECT_EQ(rf.writeCount(), 1u);
}

TEST(RegisterFile, SameFuRewriteIsNotAConflict)
{
    // One FU writes one register at most once per cycle in practice,
    // but the conflict rule is about *distinct* FUs racing.
    RegisterFile rf;
    rf.queueWrite(4, 1, 2);
    rf.queueWrite(4, 2, 2);
    EXPECT_NO_THROW(rf.commit());
    EXPECT_EQ(rf.read(4), 1u); // first queued wins
}

} // namespace
} // namespace ximd
