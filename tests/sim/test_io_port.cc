#include "sim/io_port.hh"

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace ximd {
namespace {

TEST(ScriptedInputPort, ZeroBeforeArrival)
{
    ScriptedInputPort p("in");
    p.schedule(10, 42);
    EXPECT_EQ(p.read(0, 0), 0u);
    EXPECT_EQ(p.read(0, 9), 0u);
    EXPECT_EQ(p.emptyPolls(), 2u);
}

TEST(ScriptedInputPort, ConsumesAtArrival)
{
    ScriptedInputPort p("in");
    p.schedule(10, 42);
    EXPECT_EQ(p.read(0, 10), 42u);
    EXPECT_EQ(p.consumed(), 1u);
    EXPECT_TRUE(p.drained());
    EXPECT_EQ(p.read(0, 11), 0u); // nothing left
}

TEST(ScriptedInputPort, DeliversInOrder)
{
    ScriptedInputPort p("in");
    p.schedule(1, 10);
    p.schedule(2, 20);
    p.schedule(2, 30);
    EXPECT_EQ(p.read(0, 5), 10u);
    EXPECT_EQ(p.read(0, 5), 20u);
    EXPECT_EQ(p.read(0, 5), 30u);
    EXPECT_TRUE(p.drained());
}

TEST(ScriptedInputPort, LateValueBlocksEarlierRead)
{
    ScriptedInputPort p("in");
    p.schedule(5, 10);
    p.schedule(100, 20);
    EXPECT_EQ(p.read(0, 6), 10u);
    EXPECT_EQ(p.read(0, 6), 0u); // 20 not yet available
    EXPECT_EQ(p.read(0, 100), 20u);
}

TEST(ScriptedInputPort, RejectsZeroValue)
{
    ScriptedInputPort p("in");
    EXPECT_THROW(p.schedule(1, 0), FatalError);
}

TEST(ScriptedInputPort, RejectsOutOfOrderSchedule)
{
    ScriptedInputPort p("in");
    p.schedule(10, 1);
    EXPECT_THROW(p.schedule(5, 2), FatalError);
}

TEST(ScriptedInputPort, WritesIgnored)
{
    ScriptedInputPort p("in");
    p.schedule(0, 7);
    p.write(0, 99, 0);
    EXPECT_EQ(p.read(0, 0), 7u);
}

TEST(OutputPort, RecordsWritesWithCycles)
{
    OutputPort p("out");
    p.write(0, 5, 3);
    p.write(0, 6, 8);
    ASSERT_EQ(p.records().size(), 2u);
    EXPECT_EQ(p.records()[0].value, 5u);
    EXPECT_EQ(p.records()[0].cycle, 3u);
    EXPECT_EQ(p.records()[1].value, 6u);
    EXPECT_EQ(p.records()[1].cycle, 8u);
}

TEST(OutputPort, ReadReturnsLastWritten)
{
    OutputPort p("out");
    EXPECT_EQ(p.read(0, 0), 0u);
    p.write(0, 5, 0);
    EXPECT_EQ(p.read(0, 1), 5u);
}

} // namespace
} // namespace ximd
