#include "sim/memory.hh"

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace ximd {
namespace {

TEST(Memory, StartsZeroed)
{
    Memory m(64);
    EXPECT_EQ(m.load(0, 0), 0u);
    EXPECT_EQ(m.load(63, 0), 0u);
}

TEST(Memory, StoreCommitsAtEndOfCycle)
{
    Memory m(64);
    m.queueStore(7, 99, 0);
    EXPECT_EQ(m.load(7, 0), 0u);
    m.commit(0);
    EXPECT_EQ(m.load(7, 1), 99u);
}

TEST(Memory, SameAddressConflictFaults)
{
    Memory m(64);
    m.queueStore(7, 1, 0);
    m.queueStore(7, 2, 3);
    EXPECT_THROW(m.commit(0), FatalError);
}

TEST(Memory, DistinctAddressesNoConflict)
{
    Memory m(64);
    for (FuId fu = 0; fu < 8; ++fu)
        m.queueStore(fu, fu, fu);
    EXPECT_NO_THROW(m.commit(0));
    EXPECT_EQ(m.load(5, 1), 5u);
}

TEST(Memory, OutOfRangeFaults)
{
    Memory m(16);
    EXPECT_THROW(m.load(16, 0), FatalError);
    EXPECT_THROW(m.queueStore(99, 0, 0), FatalError);
}

TEST(Memory, PokePeek)
{
    Memory m(16);
    m.poke(3, 77);
    EXPECT_EQ(m.peek(3), 77u);
}

TEST(Memory, DeviceWindowRoutesReads)
{
    Memory m(64);
    ScriptedInputPort port("in");
    port.schedule(5, 123);
    m.attachDevice(10, 10, &port);
    EXPECT_EQ(m.load(10, 0), 0u);   // before arrival
    EXPECT_EQ(m.load(10, 5), 123u); // consumed
    EXPECT_EQ(m.load(10, 6), 0u);   // queue empty again
}

TEST(Memory, DeviceWindowRoutesWritesAtCommit)
{
    Memory m(64);
    OutputPort port("out");
    m.attachDevice(20, 20, &port);
    m.queueStore(20, 55, 0);
    EXPECT_TRUE(port.records().empty());
    m.commit(9);
    ASSERT_EQ(port.records().size(), 1u);
    EXPECT_EQ(port.records()[0].value, 55u);
    EXPECT_EQ(port.records()[0].cycle, 9u);
}

TEST(Memory, OverlappingWindowsRejected)
{
    Memory m(64);
    OutputPort a("a"), b("b");
    m.attachDevice(10, 15, &a);
    EXPECT_THROW(m.attachDevice(15, 20, &b), FatalError);
    EXPECT_NO_THROW(m.attachDevice(16, 20, &b));
}

TEST(Memory, PokeIntoDeviceWindowRejected)
{
    Memory m(64);
    OutputPort a("a");
    m.attachDevice(10, 10, &a);
    EXPECT_THROW(m.poke(10, 1), FatalError);
    EXPECT_THROW(m.peek(10), FatalError);
}

TEST(Memory, WindowOffsetsPassedToDevice)
{
    // The device sees addresses relative to its window base.
    class Probe : public IoDevice
    {
      public:
        Word read(Addr offset, Cycle) override { return offset + 1; }
        void write(Addr, Word, Cycle) override {}
        std::string name() const override { return "probe"; }
    } probe;
    Memory m(64);
    m.attachDevice(30, 33, &probe);
    EXPECT_EQ(m.load(30, 0), 1u);
    EXPECT_EQ(m.load(33, 0), 4u);
}

TEST(Memory, CountsTraffic)
{
    Memory m(16);
    m.load(0, 0);
    m.queueStore(1, 1, 0);
    m.commit(0);
    EXPECT_EQ(m.loadCount(), 1u);
    EXPECT_EQ(m.storeCount(), 1u);
}

} // namespace
} // namespace ximd
