#include "sim/cond_codes.hh"

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace ximd {
namespace {

TEST(CondCodes, StartUnwrittenFormattedAsX)
{
    CondCodeFile cc(4);
    EXPECT_EQ(cc.formatted(), "XXXX");
    EXPECT_FALSE(cc.read(0));
}

TEST(CondCodes, WriteVisibleAfterCommit)
{
    CondCodeFile cc(4);
    cc.queueWrite(2, true);
    EXPECT_FALSE(cc.read(2));
    EXPECT_EQ(cc.formatted(), "XXXX");
    cc.commit();
    EXPECT_TRUE(cc.read(2));
    EXPECT_EQ(cc.formatted(), "XXTX");
}

TEST(CondCodes, Figure10StyleFormatting)
{
    CondCodeFile cc(4);
    cc.poke(0, true);
    cc.poke(1, true);
    cc.poke(2, false);
    EXPECT_EQ(cc.formatted(), "TTFX");
}

TEST(CondCodes, SquashDropsPending)
{
    CondCodeFile cc(2);
    cc.queueWrite(0, true);
    cc.squash();
    cc.commit();
    EXPECT_FALSE(cc.read(0));
    EXPECT_EQ(cc.formatted(), "XX");
}

TEST(CondCodes, LastQueuedWriteWins)
{
    // Only one compare per FU per cycle exists architecturally, but the
    // file itself applies queued writes in order.
    CondCodeFile cc(2);
    cc.queueWrite(1, true);
    cc.queueWrite(1, false);
    cc.commit();
    EXPECT_FALSE(cc.read(1));
}

TEST(CondCodes, IndexChecks)
{
    CondCodeFile cc(4);
    EXPECT_THROW(cc.read(4), FatalError);
    EXPECT_THROW(cc.queueWrite(4, true), FatalError);
    EXPECT_THROW(CondCodeFile(0), FatalError);
    EXPECT_THROW(CondCodeFile(kMaxFus + 1), FatalError);
}

} // namespace
} // namespace ximd
