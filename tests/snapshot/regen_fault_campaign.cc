/**
 * @file
 * Regenerates tests/snapshot/golden/fault_campaign.golden in place.
 * Run after an *intentional* change to the fault model, campaign
 * classification, or report format, then review the diff like any
 * other golden update. Must mirror corpusSpecs()/corpusPlan() in
 * test_fault_campaign.cc exactly.
 */

#include <fstream>
#include <iostream>

#include "farm/campaign.hh"
#include "farm/suite.hh"

#ifndef XIMD_SOURCE_DIR
#error "XIMD_SOURCE_DIR must point at the repo root"
#endif

int
main()
{
    using namespace ximd;
    using namespace ximd::farm;

    SuiteOptions opts;
    opts.n = 32;
    std::vector<RunSpec> specs;
    for (RunSpec &s : builtinSuite(opts)) {
        const std::string &n = s.name;
        if (n.rfind("minmax/", 0) == 0 ||
            n.rfind("bitcount/", 0) == 0 || n.rfind("tproc/", 0) == 0)
            specs.push_back(std::move(s));
    }

    snapshot::FaultPlan plan;
    plan.seed = 1991;
    plan.trials = 5;
    plan.faultsPerTrial = 2;
    plan.windowLo = 1;
    plan.windowHi = 200;
    plan.watchdogCycles = 20'000;

    const CampaignResult result = runCampaign(specs, plan, 4);

    const std::string path = std::string(XIMD_SOURCE_DIR) +
                             "/tests/snapshot/golden/"
                             "fault_campaign.golden";
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << "\n";
        return 1;
    }
    out << result.json() << "\n";
    std::cout << "wrote " << path << "\n";
    return 0;
}
