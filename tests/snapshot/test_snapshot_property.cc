/**
 * @file
 * The snapshot property over the whole section 4.1 grid:
 *
 *   for every suite workload, both modes, several seeds:
 *     run A to completion;
 *     run B to a randomized cycle, snapshot, restore into a fresh
 *     machine C (devices re-attached by the spec's fixture), finish;
 *     A and C must agree byte-for-byte — statsJson, trace, final
 *     architectural hash, cycle count.
 *
 * This is the strongest statement of "a snapshot boundary is
 * invisible": not just for toy programs but for every workload the
 * paper's evaluation runs, including the nonblocking family whose
 * scripted I/O ports carry pending-input state across the boundary.
 */

#include <memory>

#include <gtest/gtest.h>

#include "farm/suite.hh"
#include "snapshot/snapshot.hh"
#include "support/random.hh"

namespace ximd::farm {
namespace {

struct Uninterrupted
{
    std::string statsJson;
    std::string trace;
    std::uint64_t archHash = 0;
    Cycle cycles = 0;
};

std::unique_ptr<Machine>
makeMachine(const RunSpec &spec,
            std::unique_ptr<JobFixture> &fixture)
{
    auto m = std::make_unique<Machine>(spec.program, spec.config);
    if (spec.fixture) {
        fixture = spec.fixture(spec);
        if (fixture)
            fixture->setUp(*m);
    }
    return m;
}

Uninterrupted
runStraight(const RunSpec &spec)
{
    std::unique_ptr<JobFixture> fixture;
    auto m = makeMachine(spec, fixture);
    const RunResult run = m->run(spec.maxCycles);
    EXPECT_EQ(run.reason, StopReason::Halted) << spec.name;
    Uninterrupted u;
    u.statsJson = m->stats().json(0.0);
    u.trace = m->trace().formatted();
    u.archHash = m->archStateHash();
    u.cycles = m->cycle();
    return u;
}

/** Snapshot at @p snapCycle, restore into a fresh machine, finish. */
Uninterrupted
runInterrupted(const RunSpec &spec, Cycle snapCycle)
{
    std::vector<std::uint8_t> bytes;
    {
        std::unique_ptr<JobFixture> fixture;
        auto m = makeMachine(spec, fixture);
        m->run(snapCycle);
        bytes = snapshot::save(*m, spec.name);
    }
    std::unique_ptr<JobFixture> fixture;
    auto m = makeMachine(spec, fixture);
    auto restored = snapshot::restore(*m, bytes);
    EXPECT_TRUE(restored.hasValue())
        << spec.name << ": " << restored.error().formatted();
    const RunResult run = m->run(spec.maxCycles);
    EXPECT_EQ(run.reason, StopReason::Halted) << spec.name;
    Uninterrupted u;
    u.statsJson = m->stats().json(0.0);
    u.trace = m->trace().formatted();
    u.archHash = m->archStateHash();
    u.cycles = m->cycle();
    return u;
}

class SnapshotProperty : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SnapshotProperty, SuiteRoundTripsAtRandomCycles)
{
    SuiteOptions opts;
    opts.n = 64;
    opts.seed = GetParam();
    std::vector<RunSpec> specs = builtinSuite(opts);
    // Trace recording makes the comparison total: every cycle's PCs,
    // CCs and partitions must match, not just the final counters.
    for (RunSpec &s : specs)
        s.config.withTrace();

    Rng rng(0xC0FFEE ^ GetParam());
    for (const RunSpec &spec : specs) {
        const Uninterrupted ref = runStraight(spec);
        ASSERT_GE(ref.cycles, 2u) << spec.name;
        // Two randomized cut points plus the edges of the run.
        const Cycle cuts[] = {
            1,
            static_cast<Cycle>(
                rng.range(1, static_cast<std::int64_t>(ref.cycles) -
                                 1)),
            static_cast<Cycle>(
                rng.range(1, static_cast<std::int64_t>(ref.cycles) -
                                 1)),
            ref.cycles - 1,
        };
        for (const Cycle cut : cuts) {
            const Uninterrupted got = runInterrupted(spec, cut);
            EXPECT_EQ(got.cycles, ref.cycles)
                << spec.name << " cut=" << cut;
            EXPECT_EQ(got.statsJson, ref.statsJson)
                << spec.name << " cut=" << cut;
            EXPECT_EQ(got.trace, ref.trace)
                << spec.name << " cut=" << cut;
            EXPECT_EQ(got.archHash, ref.archHash)
                << spec.name << " cut=" << cut;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotProperty,
                         testing::Values(1, 7, 1991));

} // namespace
} // namespace ximd::farm
