/**
 * @file
 * Snapshot container round-trips and structured rejection.
 *
 * The contract under test (snapshot/snapshot.hh): restore(save(M))
 * into a compatible machine resumes execution cycle-for-cycle
 * identically, and every way a snapshot can be incompatible —
 * wrong magic, wrong format version, wrong program, wrong config,
 * corrupted payload — is refused with the matching Error::Kind
 * before any state is trusted.
 */

#include "snapshot/snapshot.hh"

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "support/state_io.hh"
#include "workloads/minmax.hh"

namespace ximd::snapshot {
namespace {

const std::vector<SWord> kData = {5, -3, 9, 0, 7, -8, 2, 6};

Machine
makeMachine(const std::vector<SWord> &data = kData)
{
    return Machine(workloads::minmaxXimd(data),
                   MachineConfig::ximd().withTrace());
}

TEST(Snapshot, RoundTripResumesIdentically)
{
    Machine a = makeMachine();
    a.run(10);
    const auto bytes = save(a, "round-trip");

    Machine b = makeMachine();
    auto restored = restore(b, bytes);
    ASSERT_TRUE(restored.hasValue()) << restored.error().formatted();

    EXPECT_EQ(b.cycle(), a.cycle());
    EXPECT_EQ(b.stateHash(), a.stateHash());

    // Lockstep from here: every cycle's full state hash must agree
    // until both halt.
    while (!a.allHalted() && !b.allHalted()) {
        a.step();
        b.step();
        ASSERT_EQ(b.stateHash(), a.stateHash())
            << "diverged at cycle " << a.cycle();
    }
    EXPECT_TRUE(a.allHalted());
    EXPECT_TRUE(b.allHalted());
    EXPECT_EQ(b.stats().json(0.0), a.stats().json(0.0));
    EXPECT_EQ(b.trace().formatted(), a.trace().formatted());
    EXPECT_EQ(b.archStateHash(), a.archStateHash());
}

TEST(Snapshot, SnapshotOfHaltedMachineRestores)
{
    Machine a = makeMachine();
    a.run();
    ASSERT_TRUE(a.allHalted());
    const auto bytes = save(a);

    Machine b = makeMachine();
    auto restored = restore(b, bytes);
    ASSERT_TRUE(restored.hasValue()) << restored.error().formatted();
    EXPECT_TRUE(b.allHalted());
    EXPECT_EQ(b.stateHash(), a.stateHash());
}

TEST(Snapshot, PeekReadsHeaderOnly)
{
    Machine a = makeMachine();
    a.run(7);
    const auto bytes = save(a, "peek-label");

    auto info = peek(bytes);
    ASSERT_TRUE(info.hasValue()) << info.error().formatted();
    EXPECT_EQ(info.value().version, kFormatVersion);
    EXPECT_EQ(info.value().label, "peek-label");
    EXPECT_EQ(info.value().mode, Mode::Ximd);
    EXPECT_EQ(info.value().cycle, a.cycle());
    EXPECT_EQ(info.value().programDigest,
              programDigest(a.program()));
}

TEST(Snapshot, BadMagicIsRejected)
{
    std::vector<std::uint8_t> bytes = {'N', 'O', 'T', 'A',
                                       'S', 'N', 'A', 'P'};
    bytes.resize(64, 0);
    Machine m = makeMachine();
    auto res = restore(m, bytes);
    ASSERT_FALSE(res.hasValue());
    EXPECT_EQ(res.error().kind, Error::Kind::BadMagic);
}

TEST(Snapshot, EmptyBufferIsRejected)
{
    Machine m = makeMachine();
    auto res = restore(m, {});
    ASSERT_FALSE(res.hasValue());
    EXPECT_EQ(res.error().kind, Error::Kind::BadMagic);
}

TEST(Snapshot, BadVersionIsRejected)
{
    Machine a = makeMachine();
    auto bytes = save(a);
    // The u32 format version sits right after the 8-byte magic.
    bytes[8] = 0xFF;
    Machine b = makeMachine();
    auto res = restore(b, bytes);
    ASSERT_FALSE(res.hasValue());
    EXPECT_EQ(res.error().kind, Error::Kind::BadVersion);
}

TEST(Snapshot, ProgramMismatchIsRejected)
{
    Machine a = makeMachine();
    a.run(5);
    const auto bytes = save(a);

    // Same workload, different data — different program digest.
    Machine b = makeMachine({1, 2, 3, 4});
    auto res = restore(b, bytes);
    ASSERT_FALSE(res.hasValue());
    EXPECT_EQ(res.error().kind, Error::Kind::ProgramMismatch);
}

TEST(Snapshot, ConfigMismatchIsRejected)
{
    Machine a = makeMachine();
    a.run(5);
    const auto bytes = save(a);

    Machine b(workloads::minmaxXimd(kData),
              MachineConfig::ximd().withTrace().withResultLatency(2));
    auto res = restore(b, bytes);
    ASSERT_FALSE(res.hasValue());
    EXPECT_EQ(res.error().kind, Error::Kind::ConfigMismatch);
}

TEST(Snapshot, ModeMismatchIsConfigMismatch)
{
    Machine a = makeMachine();
    a.run(5);
    const auto bytes = save(a);

    Machine b(workloads::minmaxXimd(kData),
              MachineConfig::vliw().withTrace());
    auto res = restore(b, bytes);
    ASSERT_FALSE(res.hasValue());
    EXPECT_EQ(res.error().kind, Error::Kind::ConfigMismatch);
}

TEST(Snapshot, CorruptPayloadIsRejected)
{
    Machine a = makeMachine();
    a.run(5);
    auto bytes = save(a);
    // Flip a bit deep inside the payload: the trailing FNV hash
    // catches it.
    bytes[bytes.size() / 2] ^= 0x40;
    Machine b = makeMachine();
    auto res = restore(b, bytes);
    ASSERT_FALSE(res.hasValue());
    EXPECT_EQ(res.error().kind, Error::Kind::Corrupt);
}

TEST(Snapshot, TruncatedPayloadIsRejected)
{
    Machine a = makeMachine();
    a.run(5);
    auto bytes = save(a);
    bytes.resize(bytes.size() - 9);
    Machine b = makeMachine();
    auto res = restore(b, bytes);
    ASSERT_FALSE(res.hasValue());
    EXPECT_EQ(res.error().kind, Error::Kind::Corrupt);
}

TEST(Snapshot, FileRoundTrip)
{
    const std::string path =
        testing::TempDir() + "ximd_snapshot_roundtrip.snap";
    Machine a = makeMachine();
    a.run(12);
    auto saved = saveFile(a, path, "file-label");
    ASSERT_TRUE(saved.hasValue()) << saved.error().formatted();

    auto info = peekFile(path);
    ASSERT_TRUE(info.hasValue());
    EXPECT_EQ(info.value().label, "file-label");

    Machine b = makeMachine();
    auto res = restoreFile(b, path);
    ASSERT_TRUE(res.hasValue()) << res.error().formatted();
    EXPECT_EQ(b.stateHash(), a.stateHash());
}

TEST(Snapshot, MissingFileIsIoError)
{
    Machine m = makeMachine();
    auto res = restoreFile(m, "/nonexistent/path.snap");
    ASSERT_FALSE(res.hasValue());
    EXPECT_EQ(res.error().kind, Error::Kind::Io);
}

TEST(Snapshot, ProgramDigestIgnoresLabels)
{
    // Two programs differing only in data must differ; the same
    // program must digest identically across calls.
    const Program p1 = workloads::minmaxXimd(kData);
    const Program p2 = workloads::minmaxXimd(kData);
    const Program p3 = workloads::minmaxXimd({1, 2, 3});
    EXPECT_EQ(programDigest(p1), programDigest(p2));
    EXPECT_NE(programDigest(p1), programDigest(p3));
}

/**
 * Satellite regression: observer state recorded *before* a restore
 * must not leak into the restored run. Machine B runs further than
 * the snapshot point (accumulating extra trace entries and stats),
 * then restores A's earlier snapshot — its continuation must be
 * byte-identical to A's, not a merge of both histories.
 */
TEST(Snapshot, ObserverStateDoesNotLeakAcrossRestore)
{
    Machine a = makeMachine();
    a.run(6);
    const auto bytes = save(a);

    Machine b = makeMachine();
    b.run(20); // B is now *ahead*, with 20 cycles of observer state.
    ASSERT_GT(b.trace().size(), a.trace().size());

    auto res = restore(b, bytes);
    ASSERT_TRUE(res.hasValue()) << res.error().formatted();
    EXPECT_EQ(b.cycle(), a.cycle());
    EXPECT_EQ(b.trace().size(), a.trace().size());
    EXPECT_EQ(b.stats().json(0.0), a.stats().json(0.0));

    a.run();
    b.run();
    EXPECT_EQ(b.stats().json(0.0), a.stats().json(0.0));
    EXPECT_EQ(b.trace().formatted(), a.trace().formatted());
    EXPECT_EQ(b.stateHash(), a.stateHash());
}

} // namespace
} // namespace ximd::snapshot
