#include "support/state_io.hh"

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace ximd {
namespace {

TEST(StateIo, PrimitivesRoundTrip)
{
    StateWriter w;
    w.u8(0xAB);
    w.u16(0xBEEF);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFULL);
    w.boolean(true);
    w.boolean(false);
    w.str("hello");
    w.str("");

    StateReader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u16(), 0xBEEF);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.atEnd());
}

TEST(StateIo, LittleEndianLayoutIsStable)
{
    // The format is defined as little-endian fixed-width, so the raw
    // bytes — not just the round trip — are pinned.
    StateWriter w;
    w.u32(0x04030201u);
    const auto &b = w.bytes();
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(b[0], 0x01);
    EXPECT_EQ(b[1], 0x02);
    EXPECT_EQ(b[2], 0x03);
    EXPECT_EQ(b[3], 0x04);
}

TEST(StateIo, TagMismatchIsFatal)
{
    StateWriter w;
    w.tag("REGS");
    StateReader r(w.bytes());
    EXPECT_THROW(r.checkTag("MEMY"), FatalError);
}

TEST(StateIo, TagMatchPasses)
{
    StateWriter w;
    w.tag("REGS");
    w.u32(7);
    StateReader r(w.bytes());
    r.checkTag("REGS");
    EXPECT_EQ(r.u32(), 7u);
}

TEST(StateIo, TruncatedStreamIsFatalNotUb)
{
    StateWriter w;
    w.u64(42);
    std::vector<std::uint8_t> cut(w.bytes().begin(),
                                  w.bytes().begin() + 3);
    StateReader r(cut);
    EXPECT_THROW(r.u64(), FatalError);
}

TEST(StateIo, TruncatedStringIsFatal)
{
    StateWriter w;
    w.str("truncate me");
    auto bytes = w.bytes();
    bytes.resize(bytes.size() - 4);
    StateReader r(bytes);
    EXPECT_THROW(r.str(), FatalError);
}

TEST(StateIo, CountIsBounded)
{
    StateWriter w;
    w.count(1000);
    {
        StateReader r(w.bytes());
        EXPECT_EQ(r.count(1000), 1000u);
    }
    {
        StateReader r(w.bytes());
        EXPECT_THROW(r.count(999), FatalError);
    }
}

TEST(StateIo, HashCoversEveryByte)
{
    StateWriter a;
    a.u32(1);
    a.u32(2);
    StateWriter b;
    b.u32(1);
    b.u32(3);
    EXPECT_NE(a.hash(), b.hash());

    StateWriter c;
    c.u32(1);
    c.u32(2);
    EXPECT_EQ(a.hash(), c.hash());
}

TEST(StateIo, Hash64MatchesWriterHash)
{
    // Hash64 over a value sequence must equal hashing the serialized
    // bytes — stateHashOf relies on the two staying in lockstep.
    StateWriter w;
    w.u8(9);
    w.u64(77);
    w.str("xyz");
    Hash64 h;
    h.u8(9);
    h.u64(77);
    h.str("xyz");
    EXPECT_EQ(h.digest(), w.hash());
}

TEST(StateIo, OffsetTracksPosition)
{
    StateWriter w;
    w.u32(5);
    w.u32(6);
    StateReader r(w.bytes());
    EXPECT_EQ(r.offset(), 0u);
    r.u32();
    EXPECT_EQ(r.offset(), 4u);
    EXPECT_EQ(r.remaining(), 4u);
    r.u32();
    EXPECT_TRUE(r.atEnd());
}

} // namespace
} // namespace ximd
