/**
 * @file
 * Fault-injection regression corpus (satellite of the snapshot PR).
 *
 * A seeded campaign over MINMAX / BITCOUNT / TPROC has one committed
 * golden report: the full classified JSON. Any change to the fault
 * expansion, the injection mechanics, the classification rules, or
 * the machine's execution order shows up as a golden diff — which is
 * exactly what we want from a fault model whose value is
 * reproducibility. The campaign must also be byte-identical at any
 * worker count.
 *
 * Regenerate after an intentional format/semantics change with:
 *   tests/snapshot/golden/regen_fault_campaign
 * (built as part of the test target; writes the golden in place).
 */

#include "farm/campaign.hh"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "farm/suite.hh"

#ifndef XIMD_SOURCE_DIR
#error "XIMD_SOURCE_DIR must point at the repo root"
#endif

namespace ximd::farm {
namespace {

std::vector<RunSpec>
corpusSpecs()
{
    SuiteOptions opts;
    opts.n = 32;
    std::vector<RunSpec> specs;
    for (RunSpec &s : builtinSuite(opts)) {
        const std::string &n = s.name;
        if (n.rfind("minmax/", 0) == 0 ||
            n.rfind("bitcount/", 0) == 0 || n.rfind("tproc/", 0) == 0)
            specs.push_back(std::move(s));
    }
    return specs;
}

snapshot::FaultPlan
corpusPlan()
{
    snapshot::FaultPlan plan;
    plan.seed = 1991;
    plan.trials = 5;
    plan.faultsPerTrial = 2;
    plan.windowLo = 1;
    plan.windowHi = 200;
    plan.watchdogCycles = 20'000;
    return plan;
}

TEST(FaultCampaign, MatchesGoldenClassification)
{
    const CampaignResult got =
        runCampaign(corpusSpecs(), corpusPlan(), 4);

    const std::string path = std::string(XIMD_SOURCE_DIR) +
                             "/tests/snapshot/golden/"
                             "fault_campaign.golden";
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(got.json() + "\n", ss.str())
        << "campaign classification diverged from the committed "
           "golden; regenerate only if the change is intentional";
}

TEST(FaultCampaign, ByteIdenticalAcrossThreadCounts)
{
    const auto specs = corpusSpecs();
    const auto plan = corpusPlan();
    const CampaignResult serial = runCampaign(specs, plan, 1);
    const CampaignResult parallel = runCampaign(specs, plan, 8);
    EXPECT_EQ(serial.json(), parallel.json());
}

TEST(FaultCampaign, BaselinesAreHealthy)
{
    const CampaignResult got =
        runCampaign(corpusSpecs(), corpusPlan(), 4);
    for (const CampaignJob &j : got.jobs)
        EXPECT_TRUE(j.baselineOk) << j.name;
}

TEST(FaultCampaign, TrialExpansionIsAPureFunctionOfSeed)
{
    const auto plan = corpusPlan();
    for (unsigned t = 0; t < plan.trials; ++t) {
        const auto a = plan.expandTrial(t, 4);
        const auto b = plan.expandTrial(t, 4);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_EQ(a[i].describe(), b[i].describe());
    }
    // Different trials draw different faults.
    ASSERT_GE(plan.trials, 2u);
    const auto t0 = plan.expandTrial(0, 4);
    const auto t1 = plan.expandTrial(1, 4);
    bool differ = t0.size() != t1.size();
    for (std::size_t i = 0; !differ && i < t0.size(); ++i)
        differ = t0[i].describe() != t1[i].describe();
    EXPECT_TRUE(differ);
}

} // namespace
} // namespace ximd::farm
