#!/bin/sh
# Build the tree with AddressSanitizer + UBSan and run the tier-1 test
# suite instrumented. Any finding (leak, overflow, UB) fails the run.
#
#   scripts/run_sanitizers.sh [build-dir]
#
# The build directory defaults to build-asan/ next to build/.
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build-asan}"

cmake -B "$BUILD" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DXIMD_SANITIZE=address,undefined
cmake --build "$BUILD" -j

# halt_on_error makes UBSan findings fatal instead of log-and-continue.
ASAN_OPTIONS=detect_leaks=1:abort_on_error=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --test-dir "$BUILD" --output-on-failure -j

echo "sanitizer run clean"
