#!/bin/sh
# Line-coverage report for the simulator's execution layers.
#
#   scripts/coverage_report.sh [jobs]
#
# Configures and builds the `coverage` preset (gcov instrumentation,
# see CMakePresets.json), runs the full test suite, then aggregates
# plain `gcov` output into per-file and total line coverage for
# src/sim and src/core. gcovr/lcov are deliberately not used — the CI
# image only ships gcov.
#
# Exit status is non-zero when the build or tests fail; the coverage
# numbers themselves are a report, not a gate.
set -eu

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

echo "==> configure (coverage)"
cmake --preset coverage
echo "==> build (coverage)"
cmake --build --preset coverage -j "$JOBS"
echo "==> test (coverage)"
ctest --preset coverage -j "$JOBS"

echo "==> gcov (src/sim + src/core)"
cd build-coverage
GCDA=$(find src/sim src/core -name '*.gcda' 2>/dev/null)
if [ -z "$GCDA" ]; then
    echo "coverage_report: no .gcda files found" >&2
    exit 1
fi

# gcov prints, per source file compiled into each object:
#   File '<path>'
#   Lines executed:<pct>% of <n>
# A header included from several translation units appears once per
# unit; keep the highest observed percentage for each file so inline
# code is not double-counted in the totals.
gcov -n $GCDA 2>/dev/null | awk '
    /^File /{
        f = $2
        gsub(/\x27/, "", f)
        keep = (f ~ /src\/(sim|core)\//)
        next
    }
    /^Lines executed:/ && keep {
        split($0, a, ":")
        split(a[2], b, "% of ")
        pct = b[1] + 0
        n = b[2] + 0
        if (!(f in lines) || pct > best[f]) {
            best[f] = pct
            lines[f] = n
        }
        keep = 0
    }
    END {
        total = 0
        covered = 0
        m = 0
        for (f in lines)
            order[m++] = f
        # insertion sort for stable, tool-independent output
        for (i = 1; i < m; i++) {
            k = order[i]
            for (j = i - 1; j >= 0 && order[j] > k; j--)
                order[j + 1] = order[j]
            order[j + 1] = k
        }
        for (i = 0; i < m; i++) {
            f = order[i]
            short = f
            sub(/^.*src\//, "src/", short)
            printf "  %6.2f%%  %5d  %s\n", best[f], lines[f], short
            total += lines[f]
            covered += best[f] / 100.0 * lines[f]
        }
        if (total > 0)
            printf "coverage: %.2f%% of %d lines (src/sim + src/core)\n",
                   100.0 * covered / total, total
    }'
