#!/bin/sh
# Continuous-integration entry point: build and test the gating
# configurations — optimized (release), sanitizer-instrumented
# (ASan + UBSan), and a ThreadSanitizer pass over the farm's
# determinism tests — using the presets from CMakePresets.json.
#
#   scripts/ci.sh [jobs]
#
# Exits non-zero on the first failing build or test.
set -eu

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

for preset in release sanitize; do
    echo "==> configure ($preset)"
    cmake --preset "$preset"
    echo "==> build ($preset)"
    cmake --build --preset "$preset" -j "$JOBS"
    echo "==> test ($preset)"
    ctest --preset "$preset" -j "$JOBS"
done

# Snapshot / fuzz / fault stage: the serialization substrate and the
# fault injector poke at raw state buffers, so run those suites again
# under ASan+UBSan explicitly (they are also part of the full runs
# above; this stage keeps them visible and gating on their own).
echo "==> test (sanitize: snapshot + fuzz + fault suites)"
ctest --test-dir build-sanitize -j "$JOBS" --output-on-failure \
    -R 'StateIo|Snapshot|FaultCampaign|DifferentialFuzz|cli_xfarm_checkpoint|cli_xfarm_resume|cli_xfarm_faults'

# Coverage stage: gcov line coverage of the execution layers.
echo "==> coverage (gcov: src/sim + src/core)"
scripts/coverage_report.sh "$JOBS"

# TSAN stage: only the batch engine runs threads, so build just the
# farm test binary and the xfarm CLI and run the Farm/Sweep tests
# (which include the 1-vs-8-thread determinism checks) instrumented.
echo "==> configure (tsan)"
cmake --preset tsan
echo "==> build (tsan: farm targets)"
cmake --build --preset tsan -j "$JOBS" --target test_farm xfarm
echo "==> test (tsan: farm determinism)"
ctest --preset tsan -j "$JOBS"

echo "ci: all configurations clean"
