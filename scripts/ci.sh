#!/bin/sh
# Continuous-integration entry point: build and test the gating
# configurations — optimized (release), sanitizer-instrumented
# (ASan + UBSan), and a ThreadSanitizer pass over the farm's
# determinism tests — using the presets from CMakePresets.json.
#
#   scripts/ci.sh [jobs]
#
# Exits non-zero on the first failing build or test.
set -eu

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

for preset in release sanitize; do
    echo "==> configure ($preset)"
    cmake --preset "$preset"
    echo "==> build ($preset)"
    cmake --build --preset "$preset" -j "$JOBS"
    echo "==> test ($preset)"
    ctest --preset "$preset" -j "$JOBS"
done

# Compiler stage: every example kernel must compile through xcc,
# lint clean, and match its committed golden byte for byte. Catches
# sched-output drift that no unit test asserts on.
echo "==> xcc (compile examples/ir, lint, golden diff)"
XCC=build-release/tools/xcc
LINT=build-release/tools/ximd-lint
XCC_OUT="$(mktemp -d)"
trap 'rm -rf "$XCC_OUT"' EXIT
"$XCC" --width 4 --verify examples/ir/reduce.ir \
    -o "$XCC_OUT/reduce_w4.ximd"
"$XCC" --width 2 --verify examples/ir/chain.ir \
    -o "$XCC_OUT/chain_w2.ximd"
"$XCC" --verify examples/ir/scale.ir -o "$XCC_OUT/scale_w8.ximd"
"$XCC" --width 4 --verify --schedule=exact examples/ir/loop12.ir \
    -o "$XCC_OUT/loop12_w4.ximd"
"$XCC" --compose balanced-groups --width 8 --verify \
    examples/ir/reduce.ir examples/ir/chain.ir examples/ir/scale.ir \
    -o "$XCC_OUT/composed_bg.ximd"
"$LINT" "$XCC_OUT"/*.ximd
for golden in examples/ir/golden/*.ximd; do
    diff -u "$golden" "$XCC_OUT/$(basename "$golden")"
done
echo "xcc: examples compile, lint clean, goldens match"

# Frontend stage: the Livermore kernels must compile from C source
# through regalloc and the scheduler, lint clean (static and race),
# and match their committed goldens byte for byte — including the
# forced-spill configuration (5 registers; livermore3's peak live
# pressure is 6, so the allocator really spills).
echo "==> frontend (xcc --input=c: compile, lint, golden diff)"
for kernel in livermore1 livermore2 livermore3 livermore12; do
    "$XCC" --input=c --verify "examples/c/$kernel.c" \
        -o "$XCC_OUT/$kernel.ximd"
done
"$XCC" --input=c --num-regs=5 --spill --verify \
    examples/c/livermore3.c -o "$XCC_OUT/livermore3_spill.ximd"
"$LINT" "$XCC_OUT"/livermore*.ximd
"$LINT" --race "$XCC_OUT"/livermore*.ximd > /dev/null
for golden in examples/c/golden/*.ximd; do
    diff -u "$golden" "$XCC_OUT/$(basename "$golden")"
done
echo "frontend: Livermore kernels compile, lint clean, goldens match"

# Race-lint stage: the cross-stream race engine over the shipped
# corpus. The good examples and every xcc-compiled golden must come
# back clean (exit 0); each bad-corpus program must be rejected
# (exit 1) with its expected diagnostic kind.
echo "==> race-lint (ximd-lint --race over goldens and examples)"
"$LINT" --race --json \
    examples/programs/minmax.ximd \
    examples/programs/barrier.ximd \
    examples/ir/golden/*.ximd > /dev/null
for bad in race_mem:mem-race race_cc_sync:cc-race \
           lost_signal:lost-signal unbounded_wait:unbounded-wait; do
    prog="examples/programs/${bad%%:*}.ximd"
    check="${bad##*:}"
    if "$LINT" --race --json "$prog" > "$XCC_OUT/race.json"; then
        echo "race-lint: $prog unexpectedly clean" >&2
        exit 1
    fi
    grep -q "\"check\": \"$check\"" "$XCC_OUT/race.json" || {
        echo "race-lint: $prog missing expected $check" >&2
        exit 1
    }
done
echo "race-lint: good corpus clean, bad corpus rejected"

# Execution-backend stage: the threaded-code backend must be
# observationally identical to the interpreter. Run the golden and
# differential suites that pin that, then drive the batch engine
# under both backends and require the reports to agree on everything
# except the self-describing backend/predecode labels.
echo "==> backend (interp vs threaded: goldens, fuzz, xfarm parity)"
ctest --test-dir build-release -j "$JOBS" --output-on-failure \
    -R 'Backend\.|BackendDifferential|GoldenEquivalence|DifferentialFuzz|cli_xsim_backend|cli_xfarm_backend'
XFARM=build-release/tools/xfarm
"$XFARM" --quiet --n 64 --no-timing --backend=interp \
    --out "$XCC_OUT/farm_interp.json"
"$XFARM" --quiet --n 64 --no-timing --backend=threaded \
    --out "$XCC_OUT/farm_threaded.json"
for f in farm_interp farm_threaded; do
    sed -e 's/"backend": "[a-z]*"/"backend": "-"/' \
        -e 's/"predecode": "[a-z]*"/"predecode": "-"/' \
        "$XCC_OUT/$f.json" > "$XCC_OUT/$f.norm.json"
done
diff -u "$XCC_OUT/farm_interp.norm.json" \
        "$XCC_OUT/farm_threaded.norm.json"
echo "backend: threaded matches the interpreter across the suite"

# Batch-parity stage: the SoA lockstep engine must be architecturally
# indistinguishable from the scalar farm. Run the batch/service unit
# suites, then diff whole-suite reports scalar-vs-batched with only
# the self-describing backend labels normalized — cycles, stats,
# arch hashes and failure strings must match byte for byte.
echo "==> batch-parity (scalar vs batched xfarm reports)"
ctest --test-dir build-release -j "$JOBS" --output-on-failure \
    -R 'BatchEngine|BatchRunner|BatchParity|Service\.|Schema|cli_xfarm_batch'
"$XFARM" --quiet --n 64 --no-timing \
    --out "$XCC_OUT/farm_scalar.json"
"$XFARM" --quiet --n 64 --no-timing --batch --width 256 \
    --out "$XCC_OUT/farm_batched.json"
for f in farm_scalar farm_batched; do
    sed -e 's/"backend": "[a-z]*"/"backend": "-"/' \
        -e 's/"predecode": "[a-z]*"/"predecode": "-"/' \
        "$XCC_OUT/$f.json" > "$XCC_OUT/$f.norm.json"
done
diff -u "$XCC_OUT/farm_scalar.norm.json" \
        "$XCC_OUT/farm_batched.norm.json"
echo "batch-parity: batched matches the scalar farm across the suite"

# Exact-scheduler stage: the exact tier must prove every paper kernel
# minimal within the default budget (no timeout fallback in CI), and
# the optimality-gap report must match its pinned golden apart from
# wall-clock solve times. Search-node counts stay in the diff: the
# branch-and-bound order is deterministic, so a node-count change
# means the search itself changed.
echo "==> exact-parity (exact vs heuristic scheduler tiers)"
ctest --test-dir build-release -j "$JOBS" --output-on-failure \
    -R 'ExactSched|ExactParity|cli_xcc_schedule'
: > "$XCC_OUT/exact_gap.txt"
for kernel in reduce:4 chain:2 scale:8 loop12:4; do
    name="${kernel%%:*}"
    width="${kernel##*:}"
    "$XCC" --width "$width" --verify --schedule=exact --stats-json \
        "examples/ir/$name.ir" -o "$XCC_OUT/exact_$name.ximd" \
        2> "$XCC_OUT/exact_stats.json"
    if grep -q '"timeout": true' "$XCC_OUT/exact_stats.json"; then
        echo "exact-parity: $name fell back on timeout" >&2
        exit 1
    fi
    grep '"block"' "$XCC_OUT/exact_stats.json" \
        | sed -e "s|^ *|$name w$width |" \
              -e 's/"solve_ms": [0-9.e+-]*/"solve_ms": -/' \
        >> "$XCC_OUT/exact_gap.txt"
done
"$LINT" "$XCC_OUT"/exact_*.ximd
diff -u tests/sched/golden/exact_gap.golden "$XCC_OUT/exact_gap.txt"
echo "exact-parity: kernels proven minimal, gap report matches golden"

# clang-tidy stage: bugprone/concurrency/performance profiles from
# .clang-tidy over the analysis and core sources, using the release
# build's compile_commands.json. Gated on the tool being installed so
# minimal containers still pass CI.
if command -v clang-tidy > /dev/null 2>&1; then
    echo "==> clang-tidy (src/analysis + src/core)"
    clang-tidy -p build-release --quiet \
        src/analysis/*.cc src/core/*.cc
    echo "clang-tidy: clean"
else
    echo "==> clang-tidy not installed; skipping stage"
fi

# Snapshot / fuzz / fault stage: the serialization substrate and the
# fault injector poke at raw state buffers, so run those suites again
# under ASan+UBSan explicitly (they are also part of the full runs
# above; this stage keeps them visible and gating on their own).
echo "==> test (sanitize: snapshot + fuzz + fault suites)"
ctest --test-dir build-sanitize -j "$JOBS" --output-on-failure \
    -R 'StateIo|Snapshot|FaultCampaign|DifferentialFuzz|cli_xfarm_checkpoint|cli_xfarm_resume|cli_xfarm_faults'

# Coverage stage: gcov line coverage of the execution layers.
echo "==> coverage (gcov: src/sim + src/core)"
scripts/coverage_report.sh "$JOBS"

# TSAN stage: only the batch engine runs threads, so build just the
# farm test binary and the xfarm CLI and run the Farm/Sweep tests
# (which include the 1-vs-8-thread determinism checks) instrumented.
echo "==> configure (tsan)"
cmake --preset tsan
echo "==> build (tsan: farm targets)"
cmake --build --preset tsan -j "$JOBS" --target test_farm xfarm
echo "==> test (tsan: farm determinism)"
ctest --preset tsan -j "$JOBS"

# The threaded backend shares flattened token tables between worker
# threads via PreparedProgram; drive a forced-threaded batch under
# TSAN to prove the sharing is race-free.
echo "==> tsan (xfarm batch, threaded backend forced)"
build-tsan/tools/xfarm --quiet -j8 --n 64 --backend=threaded \
    --filter minmax --filter bitcount

# The service runs one worker thread against connection threads; drive
# a real daemon through accept, submit, blocking results, drain, and
# the SIGTERM drain path under TSAN.
echo "==> tsan (xfarm service: accept, submit, drain)"
SOCK="$XCC_OUT/tsan_xfarm.sock"
build-tsan/tools/xfarm --serve "$SOCK" --quiet &
SRV=$!
for _ in $(seq 1 50); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
printf '%s\n' \
    '{"cmd":"ping"}' \
    '{"cmd":"submit","suite":{"n":64,"filter":["minmax"]}}' \
    '{"cmd":"results","batch":0,"wait":true}' \
    '{"cmd":"drain"}' \
    | build-tsan/tools/xfarm --connect "$SOCK" > /dev/null
kill -TERM "$SRV"
wait "$SRV"
echo "tsan: service accept/drain clean"

echo "ci: all configurations clean"
