#!/bin/sh
# Continuous-integration entry point: build and test the two gating
# configurations — optimized (release) and sanitizer-instrumented
# (ASan + UBSan) — using the presets from CMakePresets.json.
#
#   scripts/ci.sh [jobs]
#
# Exits non-zero on the first failing build or test.
set -eu

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

for preset in release sanitize; do
    echo "==> configure ($preset)"
    cmake --preset "$preset"
    echo "==> build ($preset)"
    cmake --build --preset "$preset" -j "$JOBS"
    echo "==> test ($preset)"
    ctest --preset "$preset" -j "$JOBS"
done

echo "ci: all configurations clean"
