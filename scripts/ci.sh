#!/bin/sh
# Continuous-integration entry point: build and test the gating
# configurations — optimized (release), sanitizer-instrumented
# (ASan + UBSan), and a ThreadSanitizer pass over the farm's
# determinism tests — using the presets from CMakePresets.json.
#
#   scripts/ci.sh [jobs]
#
# Exits non-zero on the first failing build or test.
set -eu

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

for preset in release sanitize; do
    echo "==> configure ($preset)"
    cmake --preset "$preset"
    echo "==> build ($preset)"
    cmake --build --preset "$preset" -j "$JOBS"
    echo "==> test ($preset)"
    ctest --preset "$preset" -j "$JOBS"
done

# Compiler stage: every example kernel must compile through xcc,
# lint clean, and match its committed golden byte for byte. Catches
# sched-output drift that no unit test asserts on.
echo "==> xcc (compile examples/ir, lint, golden diff)"
XCC=build-release/tools/xcc
LINT=build-release/tools/ximd-lint
XCC_OUT="$(mktemp -d)"
trap 'rm -rf "$XCC_OUT"' EXIT
"$XCC" --width 4 --verify examples/ir/reduce.ir \
    -o "$XCC_OUT/reduce_w4.ximd"
"$XCC" --width 2 --verify examples/ir/chain.ir \
    -o "$XCC_OUT/chain_w2.ximd"
"$XCC" --verify examples/ir/scale.ir -o "$XCC_OUT/scale_w8.ximd"
"$XCC" --compose balanced-groups --width 8 --verify \
    examples/ir/reduce.ir examples/ir/chain.ir examples/ir/scale.ir \
    -o "$XCC_OUT/composed_bg.ximd"
"$LINT" "$XCC_OUT"/*.ximd
for golden in examples/ir/golden/*.ximd; do
    diff -u "$golden" "$XCC_OUT/$(basename "$golden")"
done
echo "xcc: examples compile, lint clean, goldens match"

# Snapshot / fuzz / fault stage: the serialization substrate and the
# fault injector poke at raw state buffers, so run those suites again
# under ASan+UBSan explicitly (they are also part of the full runs
# above; this stage keeps them visible and gating on their own).
echo "==> test (sanitize: snapshot + fuzz + fault suites)"
ctest --test-dir build-sanitize -j "$JOBS" --output-on-failure \
    -R 'StateIo|Snapshot|FaultCampaign|DifferentialFuzz|cli_xfarm_checkpoint|cli_xfarm_resume|cli_xfarm_faults'

# Coverage stage: gcov line coverage of the execution layers.
echo "==> coverage (gcov: src/sim + src/core)"
scripts/coverage_report.sh "$JOBS"

# TSAN stage: only the batch engine runs threads, so build just the
# farm test binary and the xfarm CLI and run the Farm/Sweep tests
# (which include the 1-vs-8-thread determinism checks) instrumented.
echo "==> configure (tsan)"
cmake --preset tsan
echo "==> build (tsan: farm targets)"
cmake --build --preset tsan -j "$JOBS" --target test_farm xfarm
echo "==> test (tsan: farm determinism)"
ctest --preset tsan -j "$JOBS"

echo "ci: all configurations clean"
