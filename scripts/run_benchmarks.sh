#!/bin/sh
# Run every google-benchmark binary and merge the results into one
# machine-readable file, BENCH_<YYYYMMDD>.json, in the repo root:
#
#   {
#     "date": "...", "build_dir": "...",
#     "benchmarks": [
#       { "binary": "...", "name": "...", "wall_time_ms": ...,
#         "cpu_time_ms": ..., "machine_cycles_per_s": ... }, ...
#     ]
#   }
#
# wall-time per benchmark plus simulated machine-cycles-per-second
# (for the benchmarks that export that counter) is the regression
# currency for the simulator's host performance. The xfarm scaling
# sweep (bench_farm_scaling, 1/2/4/8 workers) is additionally
# summarized as a top-level "xfarm_scaling" section with speedups
# relative to the 1-worker run, the compiler-pipeline timings
# (bench_sched_compile) as a top-level "sched_compile" section, and
# the simulate*/interp-vs-threaded pairs as a top-level
# "execution_backends" section with per-row cycles/s and speedup.
#
#   scripts/run_benchmarks.sh [build-dir] [min-time]
#
# The build directory defaults to build/; min-time is the
# --benchmark_min_time seed-time per measurement (default 0.2).
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
MIN_TIME="${2:-0.2}"
OUT="BENCH_$(date +%Y%m%d).json"

if [ ! -d "$BUILD/bench" ]; then
    echo "run_benchmarks: no $BUILD/bench — build the tree first" >&2
    exit 1
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for bin in "$BUILD"/bench/bench_*; do
    [ -x "$bin" ] || continue
    name="$(basename "$bin")"
    echo "==> $name"
    # The reproduction tables go to stdout; JSON timing to a file.
    "$bin" --benchmark_min_time="$MIN_TIME" \
           --benchmark_out_format=json \
           --benchmark_out="$TMP/$name.json" > /dev/null
done

python3 - "$TMP" "$OUT" <<'EOF'
import json, os, sys, datetime

tmp, out = sys.argv[1], sys.argv[2]
merged = {
    "date": datetime.datetime.now().isoformat(timespec="seconds"),
    "build_dir": os.environ.get("BUILD", "build"),
    "benchmarks": [],
}
for fname in sorted(os.listdir(tmp)):
    with open(os.path.join(tmp, fname)) as f:
        doc = json.load(f)
    binary = fname[: -len(".json")]
    for b in doc.get("benchmarks", []):
        # google-benchmark reports real_time/cpu_time in `time_unit`s.
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[
            b.get("time_unit", "ns")]
        entry = {
            "binary": binary,
            "name": b["name"],
            "wall_time_ms": b["real_time"] * scale,
            "cpu_time_ms": b["cpu_time"] * scale,
            "iterations": b.get("iterations"),
        }
        if "machine_cycles_per_s" in b:
            entry["machine_cycles_per_s"] = b["machine_cycles_per_s"]
        if "jobs_per_s" in b:
            entry["jobs_per_s"] = b["jobs_per_s"]
        merged["benchmarks"].append(entry)

# xfarm thread-scaling summary: farmSuite/<jobs> wall times and the
# speedup curve against the serial run.
scaling = {
    int(b["name"].rsplit("/", 1)[1]): b["wall_time_ms"]
    for b in merged["benchmarks"]
    if b["binary"] == "bench_farm_scaling"
    and b["name"].startswith("farmSuite/")
}
if scaling:
    base = scaling.get(1)
    merged["xfarm_scaling"] = [
        {
            "jobs": jobs,
            "wall_time_ms": ms,
            "speedup": round(base / ms, 3) if base and ms else None,
        }
        for jobs, ms in sorted(scaling.items())
    ]

# Compiler timing summary: the sched pipeline's stage costs
# (bench_sched_compile) as their own section, so compile-time
# regressions are visible without grepping the flat list.
sched = [
    {"name": b["name"], "wall_time_ms": round(b["wall_time_ms"], 4)}
    for b in merged["benchmarks"]
    if b["binary"] == "bench_sched_compile"
]
if sched:
    merged["sched_compile"] = sched

# Frontend/Livermore summary (bench_frontend_compile): per-kernel
# lex+parse+lower, direct and spilling allocation, and the full
# C-to-assembly compile, so frontend and allocator regressions are
# visible without grepping the flat list.
LIVERMORE = ["livermore1", "livermore2", "livermore3", "livermore12"]
front = {
    b["name"]: round(b["wall_time_ms"], 5)
    for b in merged["benchmarks"]
    if b["binary"] == "bench_frontend_compile"
}
if front:
    kernels = []
    for i, kernel in enumerate(LIVERMORE):
        arg = "/kernel:%d" % i
        kernels.append({
            "kernel": kernel,
            "lower_ms": front.get("frontendLower" + arg),
            "alloc_direct_ms": front.get("allocateDirect" + arg),
            "alloc_spill_ms": front.get("allocateSpill" + arg),
            "full_compile_ms": front.get("fullCompile" + arg),
        })
    merged["livermore_frontend"] = kernels

# Exact-scheduler summary (bench_exact_sched): per-width solve time
# for the exact tier next to the heuristic baseline plus the
# budget-exhausted fallback cost, so search-cost regressions are
# visible without grepping the flat list. The gap histogram itself is
# deterministic (printed by the binary's reproduction tables and
# pinned by the ci exact-parity stage), so only timings live here.
exact_rows = {
    b["name"]: round(b["wall_time_ms"], 5)
    for b in merged["benchmarks"]
    if b["binary"] == "bench_exact_sched"
}
if exact_rows:
    solves = []
    for name, ms in sorted(exact_rows.items()):
        if not name.startswith("exactSolve/"):
            continue
        width = name.rsplit(":", 1)[1]
        heur = exact_rows.get("heuristicSolve/width:" + width)
        solves.append({
            "width": int(width),
            "exact_ms": ms,
            "heuristic_ms": heur,
            "slowdown": round(ms / heur, 3) if heur else None,
        })
    merged["exact_sched"] = {
        "solves": solves,
        "fallback_ms": exact_rows.get("exactFallback"),
    }

# Batch-throughput summary: batchThroughput/<width> rows (width 1 is
# the scalar farm) with jobs/s, aggregate simulated cycles/s and the
# speedup over the scalar baseline. The width-256 row is the gating
# number (>= 3x scalar, DESIGN.md section 13).
widths = {
    int(b["name"].rsplit("/", 1)[1]): b
    for b in merged["benchmarks"]
    if b["binary"] == "bench_batch_throughput"
    and b["name"].startswith("batchThroughput/")
}
if widths:
    base = widths.get(1, {}).get("jobs_per_s")
    merged["batch_throughput"] = [
        {
            "width": w,
            "jobs_per_s": b.get("jobs_per_s"),
            "machine_cycles_per_s": b.get("machine_cycles_per_s"),
            "speedup": round(b["jobs_per_s"] / base, 3)
            if base and b.get("jobs_per_s") else None,
        }
        for w, b in sorted(widths.items())
    ]

# Execution-backend summary: every simulate*/<backend>/... row pairs
# an interpreter run with its threaded-code twin; report simulated
# cycles/s for both and the speedup, keyed by the backend-free name.
pairs = {}
for b in merged["benchmarks"]:
    name = b["name"]
    if not name.startswith("simulate") or "/" not in name:
        continue
    parts = name.split("/")
    if len(parts) < 2 or parts[1] not in ("interp", "threaded"):
        continue
    key = parts[0] + "/" + "/".join(parts[2:])
    pairs.setdefault(key, {})[parts[1]] = b.get(
        "machine_cycles_per_s")
backends = []
for key, row in sorted(pairs.items()):
    interp, threaded = row.get("interp"), row.get("threaded")
    backends.append({
        "name": key,
        "interp_cycles_per_s": interp,
        "threaded_cycles_per_s": threaded,
        "speedup": round(threaded / interp, 3)
        if interp and threaded else None,
    })
if backends:
    merged["execution_backends"] = backends

with open(out, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out} ({len(merged['benchmarks'])} benchmark entries)")
EOF
