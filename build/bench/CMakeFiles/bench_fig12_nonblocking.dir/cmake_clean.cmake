file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_nonblocking.dir/bench_fig12_nonblocking.cpp.o"
  "CMakeFiles/bench_fig12_nonblocking.dir/bench_fig12_nonblocking.cpp.o.d"
  "bench_fig12_nonblocking"
  "bench_fig12_nonblocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
