# Empty compiler generated dependencies file for bench_ex2_minmax.
# This may be replaced when dependencies are built.
