file(REMOVE_RECURSE
  "CMakeFiles/bench_ex2_minmax.dir/bench_ex2_minmax.cpp.o"
  "CMakeFiles/bench_ex2_minmax.dir/bench_ex2_minmax.cpp.o.d"
  "bench_ex2_minmax"
  "bench_ex2_minmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex2_minmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
