file(REMOVE_RECURSE
  "CMakeFiles/bench_ex1_tproc.dir/bench_ex1_tproc.cpp.o"
  "CMakeFiles/bench_ex1_tproc.dir/bench_ex1_tproc.cpp.o.d"
  "bench_ex1_tproc"
  "bench_ex1_tproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex1_tproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
