# Empty compiler generated dependencies file for bench_ex1_tproc.
# This may be replaced when dependencies are built.
