file(REMOVE_RECURSE
  "CMakeFiles/bench_ex3_bitcount.dir/bench_ex3_bitcount.cpp.o"
  "CMakeFiles/bench_ex3_bitcount.dir/bench_ex3_bitcount.cpp.o.d"
  "bench_ex3_bitcount"
  "bench_ex3_bitcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex3_bitcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
