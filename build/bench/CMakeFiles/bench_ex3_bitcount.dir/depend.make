# Empty dependencies file for bench_ex3_bitcount.
# This may be replaced when dependencies are built.
