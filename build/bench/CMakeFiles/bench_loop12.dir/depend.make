# Empty dependencies file for bench_loop12.
# This may be replaced when dependencies are built.
