file(REMOVE_RECURSE
  "CMakeFiles/bench_loop12.dir/bench_loop12.cpp.o"
  "CMakeFiles/bench_loop12.dir/bench_loop12.cpp.o.d"
  "bench_loop12"
  "bench_loop12.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loop12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
