# Empty compiler generated dependencies file for bench_fig13_packing.
# This may be replaced when dependencies are built.
