file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_packing.dir/bench_fig13_packing.cpp.o"
  "CMakeFiles/bench_fig13_packing.dir/bench_fig13_packing.cpp.o.d"
  "bench_fig13_packing"
  "bench_fig13_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
