file(REMOVE_RECURSE
  "CMakeFiles/test_isa.dir/isa/test_control_op.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_control_op.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_data_op.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_data_op.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_disasm.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_disasm.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_opcode.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_opcode.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_operand.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_operand.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_program.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_program.cc.o.d"
  "test_isa"
  "test_isa.pdb"
  "test_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
