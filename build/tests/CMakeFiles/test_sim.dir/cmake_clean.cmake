file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_cond_codes.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_cond_codes.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_datapath.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_datapath.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_io_port.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_io_port.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_memory.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_memory.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_register_file.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_register_file.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_sequencer.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_sequencer.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_sync_bus.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_sync_bus.cc.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
