
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/test_codegen.cc" "tests/CMakeFiles/test_sched.dir/sched/test_codegen.cc.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_codegen.cc.o.d"
  "/root/repo/tests/sched/test_compose.cc" "tests/CMakeFiles/test_sched.dir/sched/test_compose.cc.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_compose.cc.o.d"
  "/root/repo/tests/sched/test_ddg.cc" "tests/CMakeFiles/test_sched.dir/sched/test_ddg.cc.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_ddg.cc.o.d"
  "/root/repo/tests/sched/test_ir.cc" "tests/CMakeFiles/test_sched.dir/sched/test_ir.cc.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_ir.cc.o.d"
  "/root/repo/tests/sched/test_modulo.cc" "tests/CMakeFiles/test_sched.dir/sched/test_modulo.cc.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_modulo.cc.o.d"
  "/root/repo/tests/sched/test_packer.cc" "tests/CMakeFiles/test_sched.dir/sched/test_packer.cc.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_packer.cc.o.d"
  "/root/repo/tests/sched/test_scheduler.cc" "tests/CMakeFiles/test_sched.dir/sched/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ximd_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ximd_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ximd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/ximd_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ximd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ximd_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ximd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
