file(REMOVE_RECURSE
  "CMakeFiles/test_sched.dir/sched/test_codegen.cc.o"
  "CMakeFiles/test_sched.dir/sched/test_codegen.cc.o.d"
  "CMakeFiles/test_sched.dir/sched/test_compose.cc.o"
  "CMakeFiles/test_sched.dir/sched/test_compose.cc.o.d"
  "CMakeFiles/test_sched.dir/sched/test_ddg.cc.o"
  "CMakeFiles/test_sched.dir/sched/test_ddg.cc.o.d"
  "CMakeFiles/test_sched.dir/sched/test_ir.cc.o"
  "CMakeFiles/test_sched.dir/sched/test_ir.cc.o.d"
  "CMakeFiles/test_sched.dir/sched/test_modulo.cc.o"
  "CMakeFiles/test_sched.dir/sched/test_modulo.cc.o.d"
  "CMakeFiles/test_sched.dir/sched/test_packer.cc.o"
  "CMakeFiles/test_sched.dir/sched/test_packer.cc.o.d"
  "CMakeFiles/test_sched.dir/sched/test_scheduler.cc.o"
  "CMakeFiles/test_sched.dir/sched/test_scheduler.cc.o.d"
  "test_sched"
  "test_sched.pdb"
  "test_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
