
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_machine_edges.cc" "tests/CMakeFiles/test_core.dir/core/test_machine_edges.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_machine_edges.cc.o.d"
  "/root/repo/tests/core/test_partition.cc" "tests/CMakeFiles/test_core.dir/core/test_partition.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_partition.cc.o.d"
  "/root/repo/tests/core/test_pipeline.cc" "tests/CMakeFiles/test_core.dir/core/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_pipeline.cc.o.d"
  "/root/repo/tests/core/test_stats.cc" "tests/CMakeFiles/test_core.dir/core/test_stats.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_stats.cc.o.d"
  "/root/repo/tests/core/test_trace.cc" "tests/CMakeFiles/test_core.dir/core/test_trace.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_trace.cc.o.d"
  "/root/repo/tests/core/test_vliw_machine.cc" "tests/CMakeFiles/test_core.dir/core/test_vliw_machine.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_vliw_machine.cc.o.d"
  "/root/repo/tests/core/test_ximd_machine.cc" "tests/CMakeFiles/test_core.dir/core/test_ximd_machine.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_ximd_machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ximd_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ximd_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ximd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/ximd_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ximd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ximd_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ximd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
