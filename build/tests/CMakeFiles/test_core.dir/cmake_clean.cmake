file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_machine_edges.cc.o"
  "CMakeFiles/test_core.dir/core/test_machine_edges.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_partition.cc.o"
  "CMakeFiles/test_core.dir/core/test_partition.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_pipeline.cc.o"
  "CMakeFiles/test_core.dir/core/test_pipeline.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_stats.cc.o"
  "CMakeFiles/test_core.dir/core/test_stats.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_trace.cc.o"
  "CMakeFiles/test_core.dir/core/test_trace.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_vliw_machine.cc.o"
  "CMakeFiles/test_core.dir/core/test_vliw_machine.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_ximd_machine.cc.o"
  "CMakeFiles/test_core.dir/core/test_ximd_machine.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
