file(REMOVE_RECURSE
  "CMakeFiles/test_workloads.dir/workloads/test_bitcount.cc.o"
  "CMakeFiles/test_workloads.dir/workloads/test_bitcount.cc.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_kernels.cc.o"
  "CMakeFiles/test_workloads.dir/workloads/test_kernels.cc.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_loop12.cc.o"
  "CMakeFiles/test_workloads.dir/workloads/test_loop12.cc.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_minmax.cc.o"
  "CMakeFiles/test_workloads.dir/workloads/test_minmax.cc.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_nonblocking.cc.o"
  "CMakeFiles/test_workloads.dir/workloads/test_nonblocking.cc.o.d"
  "test_workloads"
  "test_workloads.pdb"
  "test_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
