# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_asm[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
add_test(cli_xsim_minmax "/root/repo/build/tools/xsim" "/root/repo/examples/programs/minmax.ximd" "--reg" "min" "--reg" "max")
set_tests_properties(cli_xsim_minmax PROPERTIES  PASS_REGULAR_EXPRESSION "min = 3.*max = 7" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;70;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_xsim_barrier_trace "/root/repo/build/tools/xsim" "/root/repo/examples/programs/barrier.ximd" "--trace" "--stats")
set_tests_properties(cli_xsim_barrier_trace PROPERTIES  PASS_REGULAR_EXPRESSION "halted after 23 cycles" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;76;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_vsim_rejects_sync "/root/repo/build/tools/vsim" "/root/repo/examples/programs/barrier.ximd")
set_tests_properties(cli_vsim_rejects_sync PROPERTIES  PASS_REGULAR_EXPRESSION "sync-signal branch conditions" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;82;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_xsim_list "/root/repo/build/tools/xsim" "/root/repo/examples/programs/minmax.ximd" "--list")
set_tests_properties(cli_xsim_list PROPERTIES  PASS_REGULAR_EXPRESSION "lt tz,#2147483647" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;87;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_xsim_usage "/root/repo/build/tools/xsim")
set_tests_properties(cli_xsim_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;93;add_test;/root/repo/tests/CMakeLists.txt;0;")
