# Empty dependencies file for compile_and_pack.
# This may be replaced when dependencies are built.
