file(REMOVE_RECURSE
  "CMakeFiles/compile_and_pack.dir/compile_and_pack.cpp.o"
  "CMakeFiles/compile_and_pack.dir/compile_and_pack.cpp.o.d"
  "compile_and_pack"
  "compile_and_pack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_and_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
