# Empty dependencies file for dual_process_io.
# This may be replaced when dependencies are built.
