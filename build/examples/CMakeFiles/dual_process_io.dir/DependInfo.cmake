
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dual_process_io.cpp" "examples/CMakeFiles/dual_process_io.dir/dual_process_io.cpp.o" "gcc" "examples/CMakeFiles/dual_process_io.dir/dual_process_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ximd_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ximd_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ximd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/ximd_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ximd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ximd_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ximd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
