file(REMOVE_RECURSE
  "CMakeFiles/dual_process_io.dir/dual_process_io.cpp.o"
  "CMakeFiles/dual_process_io.dir/dual_process_io.cpp.o.d"
  "dual_process_io"
  "dual_process_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_process_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
