file(REMOVE_RECURSE
  "CMakeFiles/minmax_trace.dir/minmax_trace.cpp.o"
  "CMakeFiles/minmax_trace.dir/minmax_trace.cpp.o.d"
  "minmax_trace"
  "minmax_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minmax_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
