# Empty dependencies file for minmax_trace.
# This may be replaced when dependencies are built.
