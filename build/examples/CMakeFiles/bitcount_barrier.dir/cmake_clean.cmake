file(REMOVE_RECURSE
  "CMakeFiles/bitcount_barrier.dir/bitcount_barrier.cpp.o"
  "CMakeFiles/bitcount_barrier.dir/bitcount_barrier.cpp.o.d"
  "bitcount_barrier"
  "bitcount_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitcount_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
