# Empty dependencies file for bitcount_barrier.
# This may be replaced when dependencies are built.
