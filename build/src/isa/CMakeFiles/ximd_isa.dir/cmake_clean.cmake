file(REMOVE_RECURSE
  "CMakeFiles/ximd_isa.dir/control_op.cc.o"
  "CMakeFiles/ximd_isa.dir/control_op.cc.o.d"
  "CMakeFiles/ximd_isa.dir/data_op.cc.o"
  "CMakeFiles/ximd_isa.dir/data_op.cc.o.d"
  "CMakeFiles/ximd_isa.dir/disasm.cc.o"
  "CMakeFiles/ximd_isa.dir/disasm.cc.o.d"
  "CMakeFiles/ximd_isa.dir/opcode.cc.o"
  "CMakeFiles/ximd_isa.dir/opcode.cc.o.d"
  "CMakeFiles/ximd_isa.dir/operand.cc.o"
  "CMakeFiles/ximd_isa.dir/operand.cc.o.d"
  "CMakeFiles/ximd_isa.dir/program.cc.o"
  "CMakeFiles/ximd_isa.dir/program.cc.o.d"
  "libximd_isa.a"
  "libximd_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ximd_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
