file(REMOVE_RECURSE
  "libximd_isa.a"
)
