# Empty compiler generated dependencies file for ximd_isa.
# This may be replaced when dependencies are built.
