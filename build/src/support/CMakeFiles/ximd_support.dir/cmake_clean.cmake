file(REMOVE_RECURSE
  "CMakeFiles/ximd_support.dir/logging.cc.o"
  "CMakeFiles/ximd_support.dir/logging.cc.o.d"
  "CMakeFiles/ximd_support.dir/random.cc.o"
  "CMakeFiles/ximd_support.dir/random.cc.o.d"
  "CMakeFiles/ximd_support.dir/str.cc.o"
  "CMakeFiles/ximd_support.dir/str.cc.o.d"
  "libximd_support.a"
  "libximd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ximd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
