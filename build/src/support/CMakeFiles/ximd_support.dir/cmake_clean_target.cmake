file(REMOVE_RECURSE
  "libximd_support.a"
)
