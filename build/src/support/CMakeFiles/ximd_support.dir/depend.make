# Empty dependencies file for ximd_support.
# This may be replaced when dependencies are built.
