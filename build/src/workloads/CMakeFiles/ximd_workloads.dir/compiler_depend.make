# Empty compiler generated dependencies file for ximd_workloads.
# This may be replaced when dependencies are built.
