file(REMOVE_RECURSE
  "CMakeFiles/ximd_workloads.dir/bitcount.cc.o"
  "CMakeFiles/ximd_workloads.dir/bitcount.cc.o.d"
  "CMakeFiles/ximd_workloads.dir/kernels.cc.o"
  "CMakeFiles/ximd_workloads.dir/kernels.cc.o.d"
  "CMakeFiles/ximd_workloads.dir/loop12.cc.o"
  "CMakeFiles/ximd_workloads.dir/loop12.cc.o.d"
  "CMakeFiles/ximd_workloads.dir/minmax.cc.o"
  "CMakeFiles/ximd_workloads.dir/minmax.cc.o.d"
  "CMakeFiles/ximd_workloads.dir/nonblocking.cc.o"
  "CMakeFiles/ximd_workloads.dir/nonblocking.cc.o.d"
  "CMakeFiles/ximd_workloads.dir/reference.cc.o"
  "CMakeFiles/ximd_workloads.dir/reference.cc.o.d"
  "libximd_workloads.a"
  "libximd_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ximd_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
