file(REMOVE_RECURSE
  "libximd_workloads.a"
)
