
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cond_codes.cc" "src/sim/CMakeFiles/ximd_sim.dir/cond_codes.cc.o" "gcc" "src/sim/CMakeFiles/ximd_sim.dir/cond_codes.cc.o.d"
  "/root/repo/src/sim/datapath.cc" "src/sim/CMakeFiles/ximd_sim.dir/datapath.cc.o" "gcc" "src/sim/CMakeFiles/ximd_sim.dir/datapath.cc.o.d"
  "/root/repo/src/sim/io_port.cc" "src/sim/CMakeFiles/ximd_sim.dir/io_port.cc.o" "gcc" "src/sim/CMakeFiles/ximd_sim.dir/io_port.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/ximd_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/ximd_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/register_file.cc" "src/sim/CMakeFiles/ximd_sim.dir/register_file.cc.o" "gcc" "src/sim/CMakeFiles/ximd_sim.dir/register_file.cc.o.d"
  "/root/repo/src/sim/sequencer.cc" "src/sim/CMakeFiles/ximd_sim.dir/sequencer.cc.o" "gcc" "src/sim/CMakeFiles/ximd_sim.dir/sequencer.cc.o.d"
  "/root/repo/src/sim/sync_bus.cc" "src/sim/CMakeFiles/ximd_sim.dir/sync_bus.cc.o" "gcc" "src/sim/CMakeFiles/ximd_sim.dir/sync_bus.cc.o.d"
  "/root/repo/src/sim/write_pipeline.cc" "src/sim/CMakeFiles/ximd_sim.dir/write_pipeline.cc.o" "gcc" "src/sim/CMakeFiles/ximd_sim.dir/write_pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ximd_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ximd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
