file(REMOVE_RECURSE
  "libximd_sim.a"
)
