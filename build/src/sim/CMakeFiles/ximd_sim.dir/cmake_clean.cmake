file(REMOVE_RECURSE
  "CMakeFiles/ximd_sim.dir/cond_codes.cc.o"
  "CMakeFiles/ximd_sim.dir/cond_codes.cc.o.d"
  "CMakeFiles/ximd_sim.dir/datapath.cc.o"
  "CMakeFiles/ximd_sim.dir/datapath.cc.o.d"
  "CMakeFiles/ximd_sim.dir/io_port.cc.o"
  "CMakeFiles/ximd_sim.dir/io_port.cc.o.d"
  "CMakeFiles/ximd_sim.dir/memory.cc.o"
  "CMakeFiles/ximd_sim.dir/memory.cc.o.d"
  "CMakeFiles/ximd_sim.dir/register_file.cc.o"
  "CMakeFiles/ximd_sim.dir/register_file.cc.o.d"
  "CMakeFiles/ximd_sim.dir/sequencer.cc.o"
  "CMakeFiles/ximd_sim.dir/sequencer.cc.o.d"
  "CMakeFiles/ximd_sim.dir/sync_bus.cc.o"
  "CMakeFiles/ximd_sim.dir/sync_bus.cc.o.d"
  "CMakeFiles/ximd_sim.dir/write_pipeline.cc.o"
  "CMakeFiles/ximd_sim.dir/write_pipeline.cc.o.d"
  "libximd_sim.a"
  "libximd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ximd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
