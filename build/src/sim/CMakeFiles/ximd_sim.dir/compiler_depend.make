# Empty compiler generated dependencies file for ximd_sim.
# This may be replaced when dependencies are built.
