
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/partition.cc" "src/core/CMakeFiles/ximd_core.dir/partition.cc.o" "gcc" "src/core/CMakeFiles/ximd_core.dir/partition.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/ximd_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/ximd_core.dir/stats.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/core/CMakeFiles/ximd_core.dir/trace.cc.o" "gcc" "src/core/CMakeFiles/ximd_core.dir/trace.cc.o.d"
  "/root/repo/src/core/vliw_machine.cc" "src/core/CMakeFiles/ximd_core.dir/vliw_machine.cc.o" "gcc" "src/core/CMakeFiles/ximd_core.dir/vliw_machine.cc.o.d"
  "/root/repo/src/core/ximd_machine.cc" "src/core/CMakeFiles/ximd_core.dir/ximd_machine.cc.o" "gcc" "src/core/CMakeFiles/ximd_core.dir/ximd_machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ximd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ximd_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ximd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
