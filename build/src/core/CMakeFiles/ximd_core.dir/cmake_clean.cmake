file(REMOVE_RECURSE
  "CMakeFiles/ximd_core.dir/partition.cc.o"
  "CMakeFiles/ximd_core.dir/partition.cc.o.d"
  "CMakeFiles/ximd_core.dir/stats.cc.o"
  "CMakeFiles/ximd_core.dir/stats.cc.o.d"
  "CMakeFiles/ximd_core.dir/trace.cc.o"
  "CMakeFiles/ximd_core.dir/trace.cc.o.d"
  "CMakeFiles/ximd_core.dir/vliw_machine.cc.o"
  "CMakeFiles/ximd_core.dir/vliw_machine.cc.o.d"
  "CMakeFiles/ximd_core.dir/ximd_machine.cc.o"
  "CMakeFiles/ximd_core.dir/ximd_machine.cc.o.d"
  "libximd_core.a"
  "libximd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ximd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
