file(REMOVE_RECURSE
  "libximd_core.a"
)
