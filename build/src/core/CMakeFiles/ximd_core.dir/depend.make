# Empty dependencies file for ximd_core.
# This may be replaced when dependencies are built.
