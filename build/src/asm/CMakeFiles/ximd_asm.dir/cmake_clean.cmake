file(REMOVE_RECURSE
  "CMakeFiles/ximd_asm.dir/assembler.cc.o"
  "CMakeFiles/ximd_asm.dir/assembler.cc.o.d"
  "libximd_asm.a"
  "libximd_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ximd_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
