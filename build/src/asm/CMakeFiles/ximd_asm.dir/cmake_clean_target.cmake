file(REMOVE_RECURSE
  "libximd_asm.a"
)
