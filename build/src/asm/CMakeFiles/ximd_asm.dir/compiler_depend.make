# Empty compiler generated dependencies file for ximd_asm.
# This may be replaced when dependencies are built.
