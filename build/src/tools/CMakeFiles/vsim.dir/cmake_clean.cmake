file(REMOVE_RECURSE
  "../../tools/vsim"
  "../../tools/vsim.pdb"
  "CMakeFiles/vsim.dir/xsim_main.cc.o"
  "CMakeFiles/vsim.dir/xsim_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
