
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/xsim_main.cc" "src/tools/CMakeFiles/xsim.dir/xsim_main.cc.o" "gcc" "src/tools/CMakeFiles/xsim.dir/xsim_main.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ximd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/ximd_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ximd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ximd_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ximd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
