file(REMOVE_RECURSE
  "../../tools/xsim"
  "../../tools/xsim.pdb"
  "CMakeFiles/xsim.dir/xsim_main.cc.o"
  "CMakeFiles/xsim.dir/xsim_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
