
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/codegen.cc" "src/sched/CMakeFiles/ximd_sched.dir/codegen.cc.o" "gcc" "src/sched/CMakeFiles/ximd_sched.dir/codegen.cc.o.d"
  "/root/repo/src/sched/compose.cc" "src/sched/CMakeFiles/ximd_sched.dir/compose.cc.o" "gcc" "src/sched/CMakeFiles/ximd_sched.dir/compose.cc.o.d"
  "/root/repo/src/sched/ddg.cc" "src/sched/CMakeFiles/ximd_sched.dir/ddg.cc.o" "gcc" "src/sched/CMakeFiles/ximd_sched.dir/ddg.cc.o.d"
  "/root/repo/src/sched/ir.cc" "src/sched/CMakeFiles/ximd_sched.dir/ir.cc.o" "gcc" "src/sched/CMakeFiles/ximd_sched.dir/ir.cc.o.d"
  "/root/repo/src/sched/list_scheduler.cc" "src/sched/CMakeFiles/ximd_sched.dir/list_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/ximd_sched.dir/list_scheduler.cc.o.d"
  "/root/repo/src/sched/modulo.cc" "src/sched/CMakeFiles/ximd_sched.dir/modulo.cc.o" "gcc" "src/sched/CMakeFiles/ximd_sched.dir/modulo.cc.o.d"
  "/root/repo/src/sched/packer.cc" "src/sched/CMakeFiles/ximd_sched.dir/packer.cc.o" "gcc" "src/sched/CMakeFiles/ximd_sched.dir/packer.cc.o.d"
  "/root/repo/src/sched/tile.cc" "src/sched/CMakeFiles/ximd_sched.dir/tile.cc.o" "gcc" "src/sched/CMakeFiles/ximd_sched.dir/tile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ximd_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ximd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ximd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ximd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
