# Empty compiler generated dependencies file for ximd_sched.
# This may be replaced when dependencies are built.
