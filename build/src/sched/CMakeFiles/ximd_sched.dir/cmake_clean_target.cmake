file(REMOVE_RECURSE
  "libximd_sched.a"
)
