file(REMOVE_RECURSE
  "CMakeFiles/ximd_sched.dir/codegen.cc.o"
  "CMakeFiles/ximd_sched.dir/codegen.cc.o.d"
  "CMakeFiles/ximd_sched.dir/compose.cc.o"
  "CMakeFiles/ximd_sched.dir/compose.cc.o.d"
  "CMakeFiles/ximd_sched.dir/ddg.cc.o"
  "CMakeFiles/ximd_sched.dir/ddg.cc.o.d"
  "CMakeFiles/ximd_sched.dir/ir.cc.o"
  "CMakeFiles/ximd_sched.dir/ir.cc.o.d"
  "CMakeFiles/ximd_sched.dir/list_scheduler.cc.o"
  "CMakeFiles/ximd_sched.dir/list_scheduler.cc.o.d"
  "CMakeFiles/ximd_sched.dir/modulo.cc.o"
  "CMakeFiles/ximd_sched.dir/modulo.cc.o.d"
  "CMakeFiles/ximd_sched.dir/packer.cc.o"
  "CMakeFiles/ximd_sched.dir/packer.cc.o.d"
  "CMakeFiles/ximd_sched.dir/tile.cc.o"
  "CMakeFiles/ximd_sched.dir/tile.cc.o.d"
  "libximd_sched.a"
  "libximd_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ximd_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
